"""Tests for the embedded-FPGA model: contexts, device, controller, mapper."""

import pytest

from repro.fpga import (
    BitstreamModel,
    Configuration,
    ContextError,
    ContextMapper,
    FpgaDevice,
    ReconfigController,
    count_switches,
)
from repro.kernel import NS, Simulator, wait


GATES = {"DISTANCE": 12_000, "ROOT": 5_000, "EDGE": 9_000}
BSM = BitstreamModel()


def make_device(sim, capacity=20_000, contexts=("config1", "config2")):
    device = FpgaDevice("efpga", sim, capacity_gates=capacity,
                        fallback_ps_per_word=1_000)
    if "config1" in contexts:
        device.define_context(
            Configuration.build("config1", {"DISTANCE"}, GATES, BSM))
    if "config2" in contexts:
        device.define_context(
            Configuration.build("config2", {"ROOT"}, GATES, BSM))
    return device


class TestBitstreamModel:
    def test_words_scale_with_gates(self):
        assert BSM.words_for_gates(10_000) > BSM.words_for_gates(1_000)

    def test_overhead_floor(self):
        assert BSM.words_for_gates(0) == BSM.overhead_bits // BSM.word_bits

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            BSM.words_for_gates(-1)

    def test_download_cycles(self):
        assert BSM.download_cycles(100) == 100
        assert BSM.download_cycles(100, words_per_cycle=2) == 50
        with pytest.raises(ValueError):
            BSM.download_cycles(10, words_per_cycle=0)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            BitstreamModel(bits_per_gate=0)


class TestConfiguration:
    def test_build_from_gate_counts(self):
        ctx = Configuration.build("c", {"DISTANCE", "ROOT"}, GATES, BSM)
        assert ctx.gate_count == 17_000
        assert ctx.provides("ROOT")
        assert not ctx.provides("EDGE")

    def test_empty_context_rejected(self):
        with pytest.raises(ContextError):
            Configuration("c", frozenset(), 100, 100)

    def test_str_mentions_functions(self):
        ctx = Configuration.build("c1", {"ROOT"}, GATES, BSM)
        assert "ROOT" in str(ctx)


class TestDevice:
    def test_capacity_enforced(self):
        sim = Simulator()
        device = FpgaDevice("f", sim, capacity_gates=1_000)
        with pytest.raises(ContextError):
            device.define_context(
                Configuration.build("big", {"DISTANCE"}, GATES, BSM))

    def test_duplicate_context_rejected(self):
        sim = Simulator()
        device = make_device(sim)
        with pytest.raises(ContextError):
            device.define_context(
                Configuration.build("config1", {"ROOT"}, GATES, BSM))

    def test_reconfigure_loads_and_takes_time(self):
        sim = Simulator()
        device = make_device(sim)
        times = []

        def driver():
            yield from device.reconfigure("config1")
            times.append(sim.now_ps)
            assert device.provides("DISTANCE")
            assert not device.provides("ROOT")

        sim.spawn("d", driver())
        sim.run()
        ctx = device.contexts["config1"]
        assert times == [ctx.bitstream_words * 1_000]
        assert device.stats.reconfigurations == 1
        assert device.stats.bitstream_words == ctx.bitstream_words

    def test_reload_same_context_is_free(self):
        sim = Simulator()
        device = make_device(sim)

        def driver():
            yield from device.reconfigure("config1")
            t1 = sim.now_ps
            yield from device.reconfigure("config1")
            assert sim.now_ps == t1

        sim.spawn("d", driver())
        sim.run()
        assert device.stats.reconfigurations == 1

    def test_unknown_context(self):
        sim = Simulator()
        device = make_device(sim)

        def driver():
            yield from device.reconfigure("nope")

        sim.spawn("d", driver())
        with pytest.raises(Exception):
            sim.run()

    def test_reconfigure_waits_for_compute(self):
        sim = Simulator()
        device = make_device(sim)
        order = []

        def computer():
            yield from device.reconfigure("config1")
            device.begin_compute()
            yield wait(500, NS)
            device.end_compute()
            order.append(("compute-done", sim.now_ps))

        def switcher():
            yield wait(1, NS)  # let computer win the race
            yield from device.reconfigure("config2")
            order.append(("switched", sim.now_ps))

        sim.spawn("c", computer())
        sim.spawn("s", switcher())
        sim.run()
        assert order[0][0] == "compute-done"
        assert order[1][0] == "switched"
        assert order[1][1] > order[0][1]

    def test_context_of(self):
        sim = Simulator()
        device = make_device(sim)
        assert device.context_of("ROOT").name == "config2"
        assert device.context_of("EDGE") is None

    def test_report(self):
        sim = Simulator()
        device = make_device(sim)
        report = device.report()
        assert report["contexts"] == ["config1", "config2"]
        assert report["loaded"] is None


class TestController:
    def test_demand_driven_switching(self):
        sim = Simulator()
        device = make_device(sim)
        controller = ReconfigController(device)

        def driver():
            yield from controller.ensure_loaded("DISTANCE")
            yield from controller.ensure_loaded("DISTANCE")  # no switch
            yield from controller.ensure_loaded("ROOT")      # switch
            yield from controller.ensure_loaded("DISTANCE")  # switch back

        sim.spawn("d", driver())
        sim.run()
        assert controller.switch_count == 3
        assert controller.call_sequence() == [
            "DISTANCE", "DISTANCE", "ROOT", "DISTANCE"]
        assert controller.consistency_violations == []

    def test_faulty_instrumentation_detected(self):
        sim = Simulator()
        device = make_device(sim)
        controller = ReconfigController(device, skip_functions={"ROOT"})

        def driver():
            yield from controller.ensure_loaded("DISTANCE")
            yield from controller.ensure_loaded("ROOT")  # skipped: violation

        sim.spawn("d", driver())
        sim.run()
        assert controller.consistency_violations == ["ROOT"]

    def test_unmapped_function_rejected(self):
        sim = Simulator()
        device = make_device(sim)
        controller = ReconfigController(device)

        def driver():
            yield from controller.ensure_loaded("EDGE")

        sim.spawn("d", driver())
        with pytest.raises(Exception):
            sim.run()


class TestMapper:
    def test_count_switches(self):
        owner = {"A": "c1", "B": "c2"}
        assert count_switches(["A", "B", "A", "B"], owner) == 4
        assert count_switches(["A", "A", "B", "B"], owner) == 2
        assert count_switches([], owner) == 0

    def test_single_context_minimises_switches(self):
        mapper = ContextMapper(GATES, capacity_gates=30_000)
        schedule = ["DISTANCE", "ROOT"] * 5
        best = mapper.best(["DISTANCE", "ROOT"], schedule)
        # Everything fits one context: one download total.
        assert best.context_count == 1
        assert best.switches == 1

    def test_capacity_forces_split(self):
        mapper = ContextMapper(GATES, capacity_gates=13_000)
        schedule = ["DISTANCE", "ROOT"] * 3
        best = mapper.best(["DISTANCE", "ROOT"], schedule)
        assert best.context_count == 2
        assert best.switches == 6

    def test_infeasible_rejected(self):
        mapper = ContextMapper(GATES, capacity_gates=1_000)
        with pytest.raises(ContextError):
            mapper.best(["DISTANCE"], ["DISTANCE"])

    def test_explore_sorted_by_download(self):
        mapper = ContextMapper(GATES, capacity_gates=30_000)
        choices = mapper.explore(["DISTANCE", "ROOT"],
                                 ["DISTANCE", "ROOT"] * 4)
        downloads = [c.downloaded_words for c in choices]
        assert downloads == sorted(downloads)

    def test_unknown_task(self):
        mapper = ContextMapper(GATES, capacity_gates=30_000)
        with pytest.raises(ContextError):
            mapper.explore(["NOPE"], [])

    def test_evaluate_infeasible(self):
        mapper = ContextMapper(GATES, capacity_gates=13_000)
        with pytest.raises(ContextError):
            mapper.evaluate([["DISTANCE", "ROOT"]], ["DISTANCE"])
