"""Tests for the four flow levels and cross-level consistency."""

import pytest

from repro.facerec import (
    CameraConfig,
    FaceSampler,
    FacerecConfig,
    ReferenceModel,
    Trace,
    build_graph,
    case_study_partition,
    enroll_database,
)
from repro.facerec.swmodels import root_function
from repro.flow import (
    UntimedModel,
    build_sw_program,
    run_level1,
    run_level2,
    run_level3,
    run_level4,
)
from repro.flow.methodology import REFERENCE_CHANNELS
from repro.platform.profiler import profile_graph
from repro.swir.ast import FpgaCall, Reconfigure

CFG = FacerecConfig(identities=3, poses=2, size=32)


@pytest.fixture(scope="module")
def setup():
    db = enroll_database(CFG.identities, CFG.poses, CFG.size)
    graph = build_graph(CFG, db)
    sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=1.0))
    shots = [(0, 0), (1, 1), (2, 0)]
    frames = sampler.frames(shots)
    reference = ReferenceModel(db)
    events = []
    for frame in frames:
        reference.recognize(frame, trace=events)
    reference_trace = Trace.from_reference_events("ref", events)
    profile = profile_graph(graph, {"CAMERA": frames})
    return graph, frames, shots, reference_trace, profile


class TestLevel1:
    def test_untimed_model_matches_functional(self, setup):
        graph, frames, __, __, __ = setup
        result = UntimedModel(graph).run({"CAMERA": frames})
        functional = graph.run_functional({"CAMERA": frames})
        assert result.results["WINNER"] == functional["WINNER"]

    def test_reference_trace_comparison(self, setup):
        graph, frames, __, reference_trace, __ = setup
        result = run_level1(graph, {"CAMERA": frames},
                            reference_trace=reference_trace,
                            compare_channels=REFERENCE_CHANNELS)
        assert result.matches_reference
        assert "MATCH" in result.describe()

    def test_missing_stimuli_rejected(self, setup):
        graph, __, __, __, __ = setup
        with pytest.raises(ValueError):
            UntimedModel(graph).run({})

    def test_fifo_stats_collected(self, setup):
        graph, frames, __, __, __ = setup
        result = UntimedModel(graph).run({"CAMERA": frames})
        assert set(result.fifo_stats) == set(graph.channels)
        assert result.fifo_stats["c_frame"]["puts"] == len(frames)


class TestLevel2:
    def test_full_level2(self, setup):
        graph, frames, __, __, profile = setup
        partition = case_study_partition(graph)
        level1 = run_level1(graph, {"CAMERA": frames})
        result = run_level2(
            graph, partition, {"CAMERA": frames}, profile=profile,
            level1_trace=level1.trace, deadline_ps=10**12,
        )
        assert result.consistent_with_level1
        assert result.deadline.holds
        assert result.fifo_sizing is not None
        assert result.sim_speed_hz() > 0
        assert "200 kHz" in result.describe()

    def test_deadline_violation_reported(self, setup):
        graph, frames, __, __, profile = setup
        partition = case_study_partition(graph)
        result = run_level2(graph, partition, {"CAMERA": frames},
                            profile=profile, deadline_ps=1)
        assert not result.deadline.holds


class TestLevel3:
    def test_full_level3(self, setup):
        graph, frames, __, __, profile = setup
        partition = case_study_partition(graph, with_fpga=True)
        level1 = run_level1(graph, {"CAMERA": frames})
        result = run_level3(
            graph, partition, {"CAMERA": frames}, profile=profile,
            reference_trace=level1.trace,
        )
        assert result.symbc.consistent
        assert result.consistent_with_level2
        assert result.metrics.fpga_report["reconfigurations"] > 0
        bitstream = result.metrics.bus_report["words_by_kind"].get("bitstream", 0)
        assert bitstream > 0
        assert "30 kHz" in result.describe()

    def test_faulty_instrumentation_caught_by_symbc(self, setup):
        graph, frames, __, __, profile = setup
        partition = case_study_partition(graph, with_fpga=True)
        result = run_level3(
            graph, partition, {"CAMERA": frames}, profile=profile,
            skip_instrumentation={"ROOT"},
        )
        assert not result.symbc.consistent
        ces = result.symbc.counter_examples
        assert any(ce.function == "ROOT" for ce in ces)
        # The dynamic run confirms the violation SymbC predicted.
        assert "ROOT" in result.metrics.consistency_violations

    def test_level3_requires_fpga_tasks(self, setup):
        graph, frames, __, __, profile = setup
        with pytest.raises(ValueError):
            run_level3(graph, case_study_partition(graph), {"CAMERA": frames},
                       profile=profile)

    def test_level3_slower_than_level2(self, setup):
        """Adding reconfiguration modelling costs simulated time."""
        graph, frames, __, __, profile = setup
        p2 = case_study_partition(graph)
        p3 = case_study_partition(graph, with_fpga=True)
        m2 = run_level2(graph, p2, {"CAMERA": frames}, profile=profile)
        m3 = run_level3(graph, p3, {"CAMERA": frames}, profile=profile)
        assert m3.metrics.elapsed_ps > m2.metrics.elapsed_ps

    def test_build_sw_program_structure(self, setup):
        graph, __, __, __, __ = setup
        partition = case_study_partition(graph, with_fpga=True)
        program, context_map = build_sw_program(graph, partition)
        fpga_calls = [s for s in program.walk() if isinstance(s, FpgaCall)]
        reconfigs = [s for s in program.walk() if isinstance(s, Reconfigure)]
        assert {c.func for c in fpga_calls} == {"DISTANCE", "ROOT"}
        assert len(reconfigs) == 2
        assert set(context_map.values()) == {"config1", "config2"}


class TestLevel4:
    def test_root_module_verified(self):
        from repro.facerec.stages import isqrt
        result = run_level4(
            functions={"ROOT": root_function(16)},
            reference_impls={"ROOT": lambda n: isqrt(n)},
            test_inputs={"ROOT": [{"n": v} for v in (0, 9, 100, 3000)]},
            bmc_bound=4,
            run_pcc=False,
        )
        module = result.modules["ROOT"]
        assert module.all_properties_hold
        assert module.wrapper_checked
        assert result.verified
        assert "PROVED" in result.describe()

    def test_wrapper_mismatch_detected(self):
        result = run_level4(
            functions={"ROOT": root_function(16)},
            reference_impls={"ROOT": lambda n: n + 1},  # wrong reference
            test_inputs={"ROOT": [{"n": 9}]},
            bmc_bound=2,
            run_pcc=False,
        )
        assert not result.modules["ROOT"].wrapper_checked
        assert not result.verified

    def test_no_test_inputs_means_unchecked(self):
        result = run_level4(
            functions={"ROOT": root_function(16)},
            reference_impls={"ROOT": lambda n: n},
            test_inputs={},
            bmc_bound=2,
            run_pcc=False,
        )
        assert not result.modules["ROOT"].wrapper_checked
