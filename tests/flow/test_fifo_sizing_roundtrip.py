"""Round-trip validation of the LPV FIFO dimensioning.

The paper uses LPV to *dimension* FIFO channels; the implied contract is
that a system rebuilt with the computed capacities still runs to
completion (no artificial deadlock from under-sized buffers) and never
needs more depth than computed.  This test closes that loop on the real
case study.
"""

import pytest

from repro.facerec import FacerecConfig, build_graph, enroll_database
from repro.facerec.camera import CameraConfig, FaceSampler
from repro.flow import UntimedModel
from repro.platform import ARM7TDMI, TimingAnnotator, profile_graph
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.verify.lpv import size_fifos

CFG = FacerecConfig(identities=2, poses=1, size=32)


def rebuild_with_capacities(graph: AppGraph, capacities: dict[str, int]) -> AppGraph:
    """Clone the graph replacing every channel capacity."""
    clone = AppGraph(graph.name + ".sized")
    for task in graph.tasks.values():
        clone.add_task(TaskSpec(
            name=task.name, fn=task.fn, reads=task.reads, writes=task.writes,
            ops_fn=task.ops_fn, gate_count=task.gate_count,
            out_words=task.out_words,
        ))
    for chan in graph.channels.values():
        clone.add_channel(ChannelSpec(
            chan.name, chan.src, chan.dst, chan.words_per_token,
            capacity=capacities[chan.name],
        ))
    clone.validate()
    return clone


@pytest.fixture(scope="module")
def sized_setup():
    database = enroll_database(CFG.identities, CFG.poses, CFG.size)
    graph = build_graph(CFG, database)
    frames = FaceSampler(CameraConfig(size=CFG.size)).frames(
        [(0, 0), (1, 0), (0, 0)])
    profile = profile_graph(graph, {"CAMERA": frames})
    annotations = TimingAnnotator(ARM7TDMI).annotate(
        graph, profile, set(graph.tasks), set())
    sizing = size_fifos(graph, annotations, transfer_ps_per_word=20_000)
    return graph, frames, sizing


def test_sized_system_completes(sized_setup):
    """The LP capacities are sufficient: the system runs to completion."""
    graph, frames, sizing = sized_setup
    sized = rebuild_with_capacities(graph, sizing.capacities)
    result = UntimedModel(sized).run({"CAMERA": frames})
    assert len(result.results["WINNER"]) == len(frames)
    # Results identical to the generously-buffered original.
    original = UntimedModel(graph).run({"CAMERA": frames})
    assert result.results["WINNER"] == original.results["WINNER"]


def test_sized_system_never_exceeds_bounds(sized_setup):
    """Observed occupancy stays within the computed capacity everywhere."""
    graph, frames, sizing = sized_setup
    sized = rebuild_with_capacities(graph, sizing.capacities)
    result = UntimedModel(sized).run({"CAMERA": frames})
    for name, stats in result.fifo_stats.items():
        assert stats["max_occupancy"] <= sizing.capacities[name]


def test_undersizing_detected_by_occupancy(sized_setup):
    """Sanity: capacity-1 everywhere still completes for a pure chain but
    the stats expose where more depth was actually used originally."""
    graph, frames, __ = sized_setup
    ones = {name: 1 for name in graph.channels}
    sized = rebuild_with_capacities(graph, ones)
    result = UntimedModel(sized).run({"CAMERA": frames})
    # Single-rate DAG with blocking writes: still completes...
    assert len(result.results["WINNER"]) == len(frames)
    # ...but every FIFO is pinned at its 1-token ceiling.
    assert all(s["max_occupancy"] <= 1 for s in result.fifo_stats.values())
