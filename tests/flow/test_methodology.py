"""Tests for the end-to-end methodology driver and report generation."""

import pytest

from repro.facerec import FacerecConfig, build_graph
from repro.flow import SymbadFlow, flow_figure, topology_figure


@pytest.fixture(scope="module")
def report():
    flow = SymbadFlow(config=FacerecConfig(identities=3, poses=2, size=32),
                      frames=2)
    return flow.run(run_pcc=False)


class TestSymbadFlow:
    def test_level1_matches_reference(self, report):
        assert report.level1.matches_reference

    def test_level2_consistent_and_timed(self, report):
        assert report.level2.consistent_with_level1
        assert report.level2.metrics.elapsed_ps > 0
        assert report.level2.deadline.holds

    def test_level3_consistent_and_reconfigures(self, report):
        assert report.level3.consistent_with_level2
        assert report.level3.symbc.consistent
        assert report.level3.metrics.fpga_report["reconfigurations"] >= 2

    def test_level4_verified(self, report):
        assert report.level4.verified
        assert set(report.level4.modules) == {"ROOT", "DISTANCE_STEP"}

    def test_recognition_accuracy(self, report):
        assert report.recognition_accuracy >= 0.5

    def test_speed_ratio_shape(self, report):
        """Level 3 must be slower to simulate than level 2 (paper: 6.7x)."""
        assert report.sim_speed_ratio > 1.0

    def test_describe_contains_all_levels(self, report):
        text = report.describe()
        for marker in ("Level 1", "level 2", "level 3", "level 4",
                       "recognition accuracy", "simulation speed ratio"):
            assert marker in text

    def test_topology_figure(self):
        flow = SymbadFlow(config=FacerecConfig(identities=2, poses=1, size=32),
                          frames=1)
        text = flow.topology()
        assert "CAMERA" in text and "WINNER" in text
        assert "13 modules" in text


class TestReportGen:
    def test_flow_figure_lists_levels(self):
        text = flow_figure()
        for marker in ("Level 1", "Level 2", "Level 3", "Level 4",
                       "SymbC", "LPV", "PCC", "Laerte"):
            assert marker in text

    def test_topology_counts(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        text = topology_figure(graph)
        assert "13 modules, 13 point-to-point channels" in text
        assert "c_dbfeat" in text
