"""The distributed runner fleet: leases, fencing, runners, backpressure.

The lease lifecycle's edge cases are the point of this file — expiry
mid-run, heartbeat-after-expiry, the double-claim race, a zombie's
stale-generation upload — plus the end-to-end contract: a sweep executed
by remote runners must produce a payload byte-identical
(``documents_equal``) to the same sweep run directly on one host.
"""

import time

import pytest

from repro.api import Campaign, CampaignSpec
from repro.api.campaign import run_recorded
from repro.fleet import FleetCoordinator, RunnerAgent, UploadError
from repro.serialize import documents_equal
from repro.service import (
    CampaignService,
    ServiceClient,
    ServiceError,
    StaleLease,
)
from repro.service.queue import JobQueue, active_store_keys
from repro.store import CampaignStore

SPEC = CampaignSpec(name="fleet-unit", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})
GRID = {"frames": [1, 2]}


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


@pytest.fixture
def coordinator(queue, store):
    return FleetCoordinator(queue, store)


@pytest.fixture
def service(tmp_path):
    """A pure coordinator: no local workers, fleet protocol only."""
    svc = CampaignService(tmp_path / "svc", workers=0,
                          lease_sweep_interval=0.1).start()
    yield svc
    svc.stop()


def make_runner(service, tmp_path, name):
    return RunnerAgent(service.url, tmp_path / f"{name}-store", name=name,
                       ttl=30.0, poll_interval=0.05)


class TestLeaseLifecycle:
    def test_claim_with_ttl_leases_and_bumps_generation(self, queue):
        job, _ = queue.submit(SPEC)
        claimed = queue.claim("r1", ttl=30.0)
        lease = claimed["lease"]
        assert claimed["generation"] == 1
        assert lease["runner"] == "r1" and lease["ttl"] == 30.0
        assert lease["expires_at"] > time.time()

    def test_heartbeat_extends_a_live_lease(self, queue):
        queue.submit(SPEC)
        claimed = queue.claim("r1", ttl=30.0)
        before = claimed["lease"]["expires_at"]
        time.sleep(0.01)
        after = queue.heartbeat(claimed["id"], claimed["lease"]["id"],
                                generation=1)
        assert after["lease"]["expires_at"] > before

    def test_heartbeat_after_expiry_is_rejected_and_requeues(self, queue):
        """Satellite case: the lease lapsed before the heartbeat — the
        runner is told (409-style) and the job goes straight back to
        queued instead of waiting for the next sweep."""
        job, _ = queue.submit(SPEC)
        claimed = queue.claim("r1", ttl=1.0)
        # Lapse the lease without waiting a wall-clock second.
        claimed["lease"]["expires_at"] = time.time() - 0.1
        queue._save(claimed)
        with pytest.raises(StaleLease):
            queue.heartbeat(claimed["id"], claimed["lease"]["id"])
        assert queue.get(job["id"])["status"] == "queued"

    def test_expiry_mid_run_requeues_and_fences_the_late_result(
            self, queue):
        """The zombie scenario end to end at the queue layer: runner 1's
        lease lapses mid-run, the job re-queues, runner 2 claims it, and
        runner 1's late completion changes nothing."""
        job, _ = queue.submit(SPEC)
        first = queue.claim("r1", ttl=1.0)
        first["lease"]["expires_at"] = time.time() - 0.1
        queue._save(first)
        assert queue.expire_leases() == [job["id"]]
        assert queue.get(job["id"])["status"] == "queued"

        second = queue.claim("r2", ttl=30.0)
        assert second["generation"] == 2
        with pytest.raises(StaleLease):
            queue.complete(job["id"], {"passed": True},
                           lease_id=first["lease"]["id"],
                           generation=first["generation"])
        record = queue.get(job["id"])
        assert record["status"] == "running"
        assert record["lease"]["runner"] == "r2"
        # The live claimant's upload lands fine.
        done = queue.complete(job["id"], {"passed": True},
                              lease_id=second["lease"]["id"],
                              generation=second["generation"])
        assert done["status"] == "done"

    def test_double_claim_race_is_settled_by_generation(self, queue):
        """Even if a zombie somehow learned the new lease id, its stale
        generation alone fences the upload."""
        job, _ = queue.submit(SPEC)
        first = queue.claim("r1", ttl=1.0)
        first["lease"]["expires_at"] = time.time() - 0.1
        queue._save(first)
        queue.expire_leases()
        second = queue.claim("r2", ttl=30.0)
        with pytest.raises(StaleLease):
            queue.complete(job["id"], {"passed": True},
                           lease_id=second["lease"]["id"],
                           generation=first["generation"])
        assert queue.get(job["id"])["status"] == "running"

    def test_recover_spares_running_jobs_with_live_leases(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        live, _ = queue.submit(SPEC)
        dead, _ = queue.submit(SPEC.replace(name="dead"))
        queue.claim("remote", ttl=300.0)   # live lease survives restart
        stale = queue.claim("remote", ttl=1.0)
        stale["lease"]["expires_at"] = time.time() - 0.1
        queue._save(stale)
        local = queue.submit(SPEC.replace(name="local"))[0]
        queue.claim("local-worker")        # no lease: a dead local claim

        restarted = JobQueue(tmp_path / "queue")
        requeued = set(restarted.recover())
        assert requeued == {stale["id"], local["id"]}
        assert restarted.get(live["id"])["status"] == "running"


class TestCoordinator:
    def test_claim_warm_completes_stored_jobs(self, coordinator, queue,
                                              store):
        run_recorded(SPEC, store)
        job, _ = queue.submit(SPEC)
        assert coordinator.claim("r1") is None  # nothing left to hand out
        record = queue.get(job["id"])
        assert record["status"] == "done"
        assert record["result"]["store_resume"]["hits"] == [SPEC.name]
        assert coordinator.stats()["warm_completed"] == 1

    def test_claim_hands_out_cold_jobs(self, coordinator, queue):
        queue.submit(SPEC)
        job = coordinator.claim("r1", ttl=5.0)
        assert job is not None and job["lease"]["runner"] == "r1"
        assert coordinator.stats()["runners_seen"] == 1

    def test_upload_merges_entries_and_finishes(self, coordinator, queue,
                                                store, tmp_path):
        queue.submit(SPEC)
        job = coordinator.claim("r1", ttl=30.0)
        remote = CampaignStore(tmp_path / "remote")
        _outcome, payload = run_recorded(SPEC, remote)
        entries = {key: remote.get(key) for key in remote.keys()}
        record = coordinator.upload(job["id"], {
            "lease_id": job["lease"]["id"],
            "generation": job["generation"],
            "verdict": "ok",
            "result": {"passed": True, "points": 1,
                       "store_resume": {"hits": [], "executed": [SPEC.name],
                                        "retried": []}},
            "entries": entries,
        })
        assert record["status"] == "done"
        assert store.get_campaign(SPEC)["payload"]["passed"] is True
        assert coordinator.stats()["entries_merged"] == len(entries)

    def test_upload_with_stale_generation_is_dropped(self, coordinator,
                                                     queue):
        job, _ = queue.submit(SPEC)
        first = coordinator.claim("r1", ttl=1.0)
        first["lease"]["expires_at"] = time.time() - 0.1
        queue._save(first)
        second = coordinator.claim("r2", ttl=30.0)
        assert second["generation"] == first["generation"] + 1
        with pytest.raises(StaleLease):
            coordinator.upload(job["id"], {
                "lease_id": first["lease"]["id"],
                "generation": first["generation"],
                "verdict": "ok", "result": {"passed": True},
            })
        stats = coordinator.stats()
        assert stats["zombie_drops"] == 1
        assert stats["expired_requeues"] == 1

    def test_upload_refuses_malformed_documents(self, coordinator, queue):
        queue.submit(SPEC)
        job = coordinator.claim("r1", ttl=30.0)
        base = {"lease_id": job["lease"]["id"],
                "generation": job["generation"]}
        with pytest.raises(UploadError):
            coordinator.upload(job["id"], {**base, "verdict": "maybe"})
        with pytest.raises(UploadError):
            coordinator.upload(job["id"], {
                **base, "verdict": "ok", "result": {},
                "entries": {"../../etc/passwd": {}}})
        with pytest.raises(ValueError):
            coordinator.upload(job["id"], {
                **base, "verdict": "ok", "result": {},
                "entries": {"f" * 64: {"schema": "bogus"}}})
        assert coordinator.queue.get(job["id"])["status"] == "running"


class TestRunnerEndToEnd:
    def test_runner_executes_sweep_identical_to_direct(self, service,
                                                       tmp_path):
        client = ServiceClient(service.url)
        job = client.submit(SPEC.to_dict(), sweep=GRID)
        runner = make_runner(service, tmp_path, "runner-a")
        assert runner.run_once() is True
        done = client.wait(job["id"], timeout=60)
        assert done["status"] == "done" and done["result"]["passed"]
        direct = Campaign.sweep(SPEC, GRID)
        assert documents_equal(done["payload"], direct.to_dict())
        assert runner.jobs_done == 1 and runner.entries_uploaded > 0

    def test_duplicate_job_warm_completes_without_a_runner(self, service,
                                                           tmp_path):
        client = ServiceClient(service.url)
        job = client.submit(SPEC.to_dict(), sweep=GRID)
        runner = make_runner(service, tmp_path, "runner-a")
        assert runner.run_once() is True
        client.wait(job["id"], timeout=60)

        again = client.submit(SPEC.to_dict(), sweep=GRID)
        assert again["id"] == job["id"] and not again["coalesced"]
        # The next claim answers the duplicate from the coordinator's
        # store and reports the queue dry: zero recomputation fleet-wide.
        assert runner.run_once() is False
        warm = client.wait(job["id"], timeout=60)
        resume = warm["result"]["store_resume"]
        assert resume["executed"] == [] and resume["retried"] == []
        assert client.stats()["fleet"]["warm_completed"] == 1

    def test_dead_runners_job_requeues_and_survivor_finishes(
            self, service, tmp_path):
        client = ServiceClient(service.url)
        job = client.submit(SPEC.to_dict())
        # "Runner 1" claims with the minimum TTL and then dies: no
        # heartbeat ever arrives, so the daemon's sweep re-queues it.
        claimed = client.claim("doomed", ttl=1.0)
        assert claimed["id"] == job["id"]
        deadline = time.monotonic() + 30
        while client.get(job["id"], payload=False)["status"] != "queued":
            assert time.monotonic() < deadline, "lease never expired"
            time.sleep(0.1)
        survivor = make_runner(service, tmp_path, "survivor")
        assert survivor.run_once() is True
        done = client.wait(job["id"], timeout=60)
        assert done["status"] == "done" and done["result"]["passed"]
        fleet = client.stats()["fleet"]
        assert fleet["expired_requeues"] >= 1
        assert done["generation"] == 2

    def test_heartbeats_keep_a_slow_job_leased(self, service, tmp_path):
        client = ServiceClient(service.url)
        job = client.submit(SPEC.to_dict())
        runner = RunnerAgent(service.url, tmp_path / "hb-store",
                             name="hb", ttl=1.0, poll_interval=0.05)
        # ttl=1.0 forces several heartbeat rounds even on a fast job;
        # the job must complete under the original claim (generation 1).
        assert runner.run_once() is True
        done = client.wait(job["id"], timeout=60)
        assert done["status"] == "done" and done["generation"] == 1

    def test_stats_document_and_cli_table_carry_the_fleet(self, service,
                                                          tmp_path):
        from repro.cli import _stats_table

        client = ServiceClient(service.url)
        job = client.submit(SPEC.to_dict())
        runner = make_runner(service, tmp_path, "tabled")
        assert runner.run_once() is True
        client.wait(job["id"], timeout=60)
        stats = client.stats()
        fleet = stats["fleet"]
        assert fleet["runners_seen"] == 1
        assert fleet["runners"]["tabled"]["uploads"] == 1
        text = _stats_table(stats)
        assert "runner tabled" in text and "fleet" in text


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path):
        svc = CampaignService(tmp_path / "svc", workers=0,
                              max_depth=1).start()
        try:
            client = ServiceClient(svc.url)
            client.submit(SPEC.to_dict())
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SPEC.replace(name="overflow").to_dict())
            assert excinfo.value.status == 429
            assert excinfo.value.kind == "Backpressure"
            # Coalescing onto the queued job sails through regardless.
            again = client.submit(SPEC.to_dict())
            assert again["coalesced"]
        finally:
            svc.stop()

    def test_tenant_quota_is_per_token(self, tmp_path):
        svc = CampaignService(tmp_path / "svc", workers=0,
                              tenant_quota=1).start()
        try:
            client = ServiceClient(svc.url)
            client.submit(SPEC.to_dict(), tenant="alice")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(SPEC.replace(name="more").to_dict(),
                              tenant="alice")
            assert excinfo.value.status == 429
            # Another tenant (or an anonymous submit) is unaffected.
            client.submit(SPEC.replace(name="more").to_dict(),
                          tenant="bob")
            client.submit(SPEC.replace(name="anon").to_dict())
        finally:
            svc.stop()


class TestGcProtectsActiveJobs:
    def test_active_store_keys_cover_every_sweep_point(self, queue):
        from repro.store import campaign_key

        queue.submit(SPEC, sweep=GRID)
        keys = active_store_keys(queue)
        assert keys == frozenset(
            campaign_key(point)
            for point in Campaign.sweep_specs(SPEC, GRID))

    def test_gc_spares_failure_entries_of_queued_jobs(self, queue, store):
        store.put_campaign_failure(SPEC, RuntimeError("flaky"))
        queue.submit(SPEC)
        stats = store.gc(failed=True, dry_run=False,
                         protect=active_store_keys(queue))
        assert stats["removed_failed"] == 0 and stats["protected"] == 1
        assert store.get_campaign(SPEC) is not None


class TestClientBackoff:
    def test_wait_backs_off_exponentially_with_cap(self, monkeypatch):
        import repro.service.client as client_mod

        clock = {"now": 0.0}
        sleeps = []
        monkeypatch.setattr(client_mod.time, "monotonic",
                            lambda: clock["now"])

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr(client_mod.time, "sleep", fake_sleep)
        monkeypatch.setattr(client_mod.random, "uniform",
                            lambda lo, hi: 1.0)  # strip jitter
        client = ServiceClient("http://unused.invalid")
        monkeypatch.setattr(
            client, "get",
            lambda job_id, payload=True: {"id": "a" * 64,
                                          "status": "queued"})
        with pytest.raises(TimeoutError):
            client.wait("a" * 64, timeout=10.0, interval=0.2,
                        max_interval=2.0)
        # Geometric ramp (×1.6) capped at max_interval.
        assert sleeps[0] == pytest.approx(0.2)
        assert sleeps[1] == pytest.approx(0.32)
        assert sleeps[2] == pytest.approx(0.512)
        assert max(sleeps) <= 2.0
        assert sleeps.count(2.0) >= 1

    def test_wait_jitter_stays_within_band(self, monkeypatch):
        import repro.service.client as client_mod

        clock = {"now": 0.0}
        sleeps = []
        monkeypatch.setattr(client_mod.time, "monotonic",
                            lambda: clock["now"])

        def fake_sleep(seconds):
            sleeps.append(seconds)
            clock["now"] += seconds

        monkeypatch.setattr(client_mod.time, "sleep", fake_sleep)
        client = ServiceClient("http://unused.invalid")
        monkeypatch.setattr(
            client, "get",
            lambda job_id, payload=True: {"id": "a" * 64,
                                          "status": "queued"})
        with pytest.raises(TimeoutError):
            client.wait("a" * 64, timeout=5.0, interval=0.4,
                        max_interval=1.0)
        assert 0.3 <= sleeps[0] <= 0.5  # 0.4 ± 25%
        assert all(pause <= 1.0 * 1.25 for pause in sleeps)
