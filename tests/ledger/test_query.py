"""The ledger query engine: builder, textual parser, joins, errors.

All tests run over a small synthetic ledger — the extraction path has
its own tests in ``test_facts.py``; here the contract is the *language*:
both entry points compile onto the same pipeline, comparisons never
crash on heterogeneous rows, and every malformed query raises
:class:`QueryError` (never a bare SyntaxError or KeyError).
"""

import pytest

from repro.ledger import Ledger, QueryError, parse_query

ENTRIES = [
    {"key": "k1", "name": "a[f=1]", "spec_hash": "s1", "engine_rev": 1,
     "status": "ok", "active_job": False},
    {"key": "k2", "name": "a[f=2]", "spec_hash": "s2", "engine_rev": 2,
     "status": "ok", "active_job": True},
    {"key": "k3", "name": "b", "spec_hash": None, "engine_rev": None,
     "status": "error", "active_job": False},
]

SPECS = [
    {"hash": "s1", "name": "a[f=1]", "workload": "facerec", "frames": 1},
    {"hash": "s2", "name": "a[f=2]", "workload": "facerec", "frames": 2},
]

JOURNAL = [
    {"key": "k1", "spec_hash": "s1", "fpga_ctx": "config1",
     "functions": ["DISTANCE"]},
    {"key": "k1", "spec_hash": "s1", "fpga_ctx": "config2",
     "functions": ["ROOT"]},
    {"key": "k2", "spec_hash": "s2", "fpga_ctx": "config2",
     "functions": ["ROOT"]},
]


@pytest.fixture
def ledger():
    return Ledger({"entry": ENTRIES, "spec": SPECS,
                   "journal_touched": JOURNAL})


class TestBuilder:
    def test_where_kwargs_default_to_equality(self, ledger):
        rows = ledger.query("entry").where(status="ok").rows()
        assert sorted(r["key"] for r in rows) == ["k1", "k2"]

    def test_suffix_operators(self, ledger):
        q = ledger.query("entry")
        assert [r["key"] for r in q.where(engine_rev__lt=2).rows()] == ["k1"]
        assert {r["key"] for r in q.where(engine_rev__ge=1).rows()} == \
            {"k1", "k2"}
        assert {r["key"] for r in q.where(status__ne="ok").rows()} == {"k3"}
        assert {r["key"] for r in
                q.where(status__in=["ok", "error"]).rows()} == \
            {"k1", "k2", "k3"}
        rows = ledger.query("journal_touched") \
                     .where(functions__contains="ROOT").rows()
        assert sorted(r["key"] for r in rows) == ["k1", "k2"]

    def test_unknown_suffix_is_a_query_error(self, ledger):
        with pytest.raises(QueryError, match="suffix"):
            ledger.query("entry").where(engine_rev__regex="x")

    def test_null_fields_never_crash_orderings(self, ledger):
        # k3 has engine_rev None: `< 2` is False for it, not a TypeError.
        rows = ledger.query("entry").where(engine_rev__lt=2).rows()
        assert [r["key"] for r in rows] == ["k1"]

    def test_chaining_is_immutable(self, ledger):
        base = ledger.query("entry")
        narrowed = base.where(status="ok")
        assert base.count() == 3 and narrowed.count() == 2

    def test_select_projects_missing_to_none(self, ledger):
        rows = ledger.query("entry").select("key", "nonesuch").rows()
        assert all(set(row) == {"key", "nonesuch"} for row in rows)
        assert all(row["nonesuch"] is None for row in rows)

    def test_keys_contract(self, ledger):
        assert ledger.query("entry").where(status="ok").keys() == \
            ["k1", "k2"]
        # Projected-away key or a key-less relation: refuse, loudly.
        with pytest.raises(QueryError, match="key"):
            ledger.query("entry").select("name").keys()
        with pytest.raises(QueryError, match="key"):
            ledger.query("spec").keys()

    def test_unknown_relation_is_a_query_error(self, ledger):
        with pytest.raises(QueryError, match="unknown relation"):
            ledger.query("entries")


class TestJoin:
    def test_explicit_pair(self, ledger):
        rows = ledger.query("journal_touched") \
                     .join("spec", on=("spec_hash", "hash")) \
                     .select("key", "frames").rows()
        assert {(r["key"], r["frames"]) for r in rows} == \
            {("k1", 1), ("k2", 2)}

    def test_default_inference_onto_spec(self, ledger):
        explicit = ledger.query("journal_touched") \
                         .join("spec", on=("spec_hash", "hash")).rows()
        inferred = ledger.query("journal_touched").join("spec").rows()
        assert inferred == explicit

    def test_collisions_are_prefixed_not_clobbered(self, ledger):
        # entry.name differs from spec.name only for k3 (no spec), so
        # join entry->spec: names agree and merge; forcing a collision
        # via journal rows joined twice exercises the prefix path.
        rows = ledger.query("entry").join("spec").rows()
        assert all("spec.hash" not in row for row in rows)
        # entry carries spec_hash; spec carries hash: merged rows hold
        # both, and colliding equal values stay unprefixed.
        assert all(row["spec_hash"] == row["hash"] for row in rows)

    def test_ambiguous_join_requires_on(self, ledger):
        # entry and journal_touched share key AND spec_hash.
        with pytest.raises(QueryError, match="explicit 'on'"):
            ledger.query("entry").join("journal_touched").rows()


class TestOrderBy:
    def test_builder_orders_ascending_by_default(self, ledger):
        rows = ledger.query("spec").order_by("frames").rows()
        assert [r["frames"] for r in rows] == [1, 2]

    def test_builder_desc(self, ledger):
        rows = ledger.query("spec").order_by("frames", desc=True).rows()
        assert [r["frames"] for r in rows] == [2, 1]

    def test_textual_order_by(self, ledger):
        rows = ledger.run("entry order by engine_rev desc")
        assert [r["key"] for r in rows][:2] == ["k2", "k1"]
        assert ledger.run("entry order by engine_rev asc") == \
            ledger.run("entry order by engine_rev")

    def test_order_by_composes_with_where(self, ledger):
        rows = ledger.run("entry where status == 'ok' "
                          "order by engine_rev desc")
        assert [r["key"] for r in rows] == ["k2", "k1"]

    def test_heterogeneous_values_never_crash_the_sort(self, ledger):
        # k3 has engine_rev None next to ints: a total order, no
        # TypeError.
        rows = ledger.run("entry order by engine_rev")
        assert len(rows) == 3 and rows[0]["key"] == "k3"

    def test_missing_field_sorts_stably(self, ledger):
        rows = ledger.run("entry order by nonesuch")
        assert len(rows) == 3

    @pytest.mark.parametrize("bad", [
        "entry order",
        "entry order by",
        "entry order by ==",
        "entry order by engine_rev sideways",
    ])
    def test_malformed_order_by_raises(self, ledger, bad):
        with pytest.raises(QueryError):
            parse_query(ledger, bad).rows()


class TestTextual:
    def test_roadmap_exemplar_engine_rev(self, ledger):
        rows = ledger.run("entry where engine_rev < 2 and status == 'ok'")
        assert [r["key"] for r in rows] == ["k1"]

    def test_roadmap_exemplar_journal_join(self, ledger):
        rows = ledger.run("journal_touched where fpga_ctx == 'config2' "
                          "join spec on spec_hash = hash "
                          "select name, key")
        assert {(r["name"], r["key"]) for r in rows} == \
            {("a[f=1]", "k1"), ("a[f=2]", "k2")}

    def test_gc_policy_exemplar(self, ledger):
        query = parse_query(
            ledger, "entry where engine_rev < 2 and active_job == false")
        assert query.keys() == ["k1"]

    def test_optional_from_and_case_insensitive_keywords(self, ledger):
        assert ledger.run("from entry WHERE status == 'ok'") == \
            ledger.run("entry where status == 'ok'")

    def test_boolean_composition_and_parens(self, ledger):
        rows = ledger.run("entry where (engine_rev == 1 or engine_rev == 2)"
                          " and not active_job")
        assert [r["key"] for r in rows] == ["k1"]

    def test_in_not_in_contains(self, ledger):
        assert len(ledger.run("entry where status in ['ok', 'error']")) == 3
        assert [r["key"] for r in
                ledger.run("entry where status not in ['ok']")] == ["k3"]
        assert {r["key"] for r in
                ledger.run("journal_touched where functions contains "
                           "'ROOT'")} == {"k1", "k2"}

    def test_bare_field_is_truthiness(self, ledger):
        assert [r["key"] for r in
                ledger.run("entry where active_job")] == ["k2"]
        assert [r["key"] for r in
                ledger.run("entry where not spec_hash")] == ["k3"]

    def test_literals(self, ledger):
        assert len(ledger.run("entry where engine_rev == null")) == 1
        assert len(ledger.run("entry where active_job == true")) == 1
        assert len(ledger.run("entry where engine_rev >= 1.5")) == 1
        # Escaped quote inside a string literal.
        assert ledger.run(r"entry where name == 'a\'s'") == []

    def test_field_to_field_comparison(self, ledger):
        rows = ledger.run("entry join spec where spec_hash == hash")
        assert len(rows) == 2

    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "entry where",
        "entry where status ==",
        "entry where (status == 'ok'",
        "entry wehre status",
        "entry where 'ok'",
        "entry where status not ok",
        "entry select",
        "entry where status in [name]",
        "nonesuch where x == 1",
        "entry where status @ 'ok'",
    ])
    def test_malformed_queries_raise_query_error(self, ledger, bad):
        with pytest.raises(QueryError):
            parse_query(ledger, bad).rows()

    def test_parse_rejects_non_string(self, ledger):
        with pytest.raises(QueryError):
            parse_query(ledger, None)
