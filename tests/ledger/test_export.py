"""Signed export bundles: produce, move, verify, tamper, key handling.

The acceptance contract: a bundle verifies after being moved to a fresh
directory; *any* byte flipped after signing — an entry body, the
manifest, the signature file — turns ``ok`` False with a human-readable
error line, and a re-hashed file cannot hide a modified spec behind a
fresh sha256 (the content address is recomputed from the envelope).
"""

import json
import shutil

import pytest

from repro.api import Campaign, CampaignSpec
from repro.ledger import (
    DEFAULT_KEY,
    ExportError,
    export_bundle,
    resolve_key,
    verify_bundle,
)
from repro.store import CampaignStore

SPEC = CampaignSpec(name="export-unit", identities=2, poses=1, size=32,
                    frames=1, levels=(1,))
SWEEP = {"frames": [1, 2]}

PAYLOAD = {"schema": "repro.campaign_outcome/v1", "passed": True,
           "stages": {}}


@pytest.fixture
def store(tmp_path):
    store = CampaignStore(tmp_path / "store")
    # Store the exact grid-point specs a sweep would persist (the
    # point name carries the grid coordinates).
    for point in Campaign.sweep_specs(SPEC, SWEEP):
        store.put_campaign(point, PAYLOAD)
    return store


@pytest.fixture
def bundle(store, tmp_path):
    export_bundle(store, SPEC.to_dict(), tmp_path / "bundle", sweep=SWEEP)
    return tmp_path / "bundle"


class TestExport:
    def test_report_and_bundle_layout(self, store, tmp_path):
        report = export_bundle(store, SPEC.to_dict(), tmp_path / "b",
                               sweep=SWEEP)
        assert report["schema"] == "repro.export_report/v1"
        assert report["name"] == "export-unit" and report["keys"] == 2
        assert report["signature"].startswith("hmac-sha256:")
        manifest = json.loads((tmp_path / "b" / "manifest.json")
                              .read_text())
        assert manifest["schema"] == "repro.export_manifest/v1"
        assert manifest["keys"] == sorted(manifest["keys"])
        assert set(manifest["files"]) == {
            f"entries/{key}.json" for key in manifest["keys"]}
        # Revision pins ride along: identity is the store's campaign
        # identity, engine/workload revisions included.
        assert "engine_revision" in manifest["identity"]

    def test_missing_point_refused_by_name(self, store, tmp_path):
        with pytest.raises(ExportError, match=r"frames=3.*missing"):
            export_bundle(store, SPEC.to_dict(), tmp_path / "b",
                          sweep={"frames": [1, 2, 3]})
        assert not (tmp_path / "b" / "manifest.json").exists()

    def test_failed_point_refused(self, store, tmp_path):
        (doomed,) = Campaign.sweep_specs(SPEC, {"frames": [3]})
        store.put_campaign_failure(doomed, RuntimeError("boom"))
        with pytest.raises(ExportError, match="status 'error'"):
            export_bundle(store, SPEC.to_dict(), tmp_path / "b",
                          sweep={"frames": [1, 2, 3]})

    def test_invalid_spec_document_refused(self, store, tmp_path):
        with pytest.raises(ExportError, match="invalid export spec"):
            export_bundle(store, {"schema": "repro.campaign_spec/v2",
                                  "workload": "holograms"},
                          tmp_path / "b")


class TestVerify:
    def test_moved_bundle_verifies(self, bundle, tmp_path):
        moved = tmp_path / "elsewhere" / "bundle"
        moved.parent.mkdir()
        shutil.move(str(bundle), str(moved))
        report = verify_bundle(moved)
        assert report["ok"] and report["errors"] == []
        assert report["schema"] == "repro.export_verify/v1"
        assert report["keys"] == 2 and report["files_checked"] == 2

    def test_tampered_entry_fails_twice(self, bundle):
        victim = sorted((bundle / "entries").glob("*.json"))[0]
        envelope = json.loads(victim.read_text())
        envelope["identity"]["engine_revision"] = 99
        victim.write_text(json.dumps(envelope, sort_keys=True))
        report = verify_bundle(bundle)
        assert not report["ok"]
        assert any("sha256 mismatch" in error for error in report["errors"])
        assert any("content address" in error
                   for error in report["errors"])

    def test_rehashed_tamper_still_caught_by_content_address(self, bundle):
        """Fix the manifest hash after tampering: the signature AND the
        recomputed content address still catch it."""
        victim = sorted((bundle / "entries").glob("*.json"))[0]
        envelope = json.loads(victim.read_text())
        envelope["spec"]["deadline_ms"] = 1.0
        victim.write_text(json.dumps(envelope, sort_keys=True))
        manifest_path = bundle / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        import hashlib
        manifest["files"][f"entries/{victim.stem}.json"] = \
            hashlib.sha256(victim.read_bytes()).hexdigest()
        manifest_path.write_text(json.dumps(manifest, sort_keys=True))
        report = verify_bundle(bundle)
        assert not report["ok"]
        assert any("signature mismatch" in error
                   for error in report["errors"])
        assert any("content address" in error
                   for error in report["errors"])

    def test_missing_file_and_key_mismatch_reported(self, bundle):
        removed = sorted((bundle / "entries").glob("*.json"))[0]
        removed.unlink()
        report = verify_bundle(bundle)
        assert not report["ok"]
        assert any("missing from the bundle" in error
                   for error in report["errors"])

    def test_wrong_key_fails_signature_only(self, bundle):
        report = verify_bundle(bundle, key=b"someone-else")
        assert not report["ok"]
        assert report["errors"] == [
            "manifest signature mismatch (wrong key, or the manifest "
            "was modified after signing)"]

    def test_custom_key_round_trips(self, store, tmp_path):
        export_bundle(store, SPEC.to_dict(), tmp_path / "b", sweep=SWEEP,
                      key=b"team-secret")
        assert verify_bundle(tmp_path / "b", key=b"team-secret")["ok"]
        assert not verify_bundle(tmp_path / "b")["ok"]

    def test_not_a_bundle_raises_not_reports(self, tmp_path):
        with pytest.raises(ExportError, match="no bundle"):
            verify_bundle(tmp_path / "nowhere")
        (tmp_path / "bad").mkdir()
        (tmp_path / "bad" / "manifest.json").write_text("{}")
        with pytest.raises(ExportError, match="export_manifest"):
            verify_bundle(tmp_path / "bad")

    def test_path_escape_in_manifest_is_an_error(self, bundle):
        manifest_path = bundle / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["../outside.json"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest, sort_keys=True))
        report = verify_bundle(bundle)
        assert any("escapes the bundle" in error
                   for error in report["errors"])


class TestResolveKey:
    def test_default(self):
        assert resolve_key() == DEFAULT_KEY

    def test_text_key(self):
        assert resolve_key("hunter2") == b"hunter2"

    def test_key_file_strips_whitespace(self, tmp_path):
        key_file = tmp_path / "key"
        key_file.write_bytes(b"  raw-bytes \n")
        assert resolve_key(None, str(key_file)) == b"raw-bytes"

    @pytest.mark.parametrize("text,file_text", [
        ("a", "b"),   # both given
        ("", None),   # empty --key
    ])
    def test_bad_combinations(self, tmp_path, text, file_text):
        key_file = None
        if file_text is not None:
            key_file = tmp_path / "key"
            key_file.write_text(file_text)
        with pytest.raises(ExportError):
            resolve_key(text, str(key_file) if key_file else None)

    def test_missing_or_empty_key_file(self, tmp_path):
        with pytest.raises(ExportError, match="cannot read"):
            resolve_key(None, str(tmp_path / "nope"))
        empty = tmp_path / "empty"
        empty.write_text(" \n")
        with pytest.raises(ExportError, match="empty"):
            resolve_key(None, str(empty))
