"""CLI acceptance: the ISSUE's ledger story end to end, over a *real*
store populated by a real sweep.

One module-scoped sweep (2 grid points, levels 1–3) feeds every test:
both ROADMAP exemplar questions must come back right through ``repro
query``, ``store gc --policy`` must delete exactly the query's result
set, and a signed export bundle written by ``repro export`` must verify
after being moved to a fresh directory.
"""

import json
import shutil

import pytest

from repro.cli import main

SUBMISSION = {
    "spec": {
        "schema": "repro.campaign_spec/v2",
        "name": "ledger-e2e",
        "workload": "facerec",
        "identities": 2, "poses": 1, "size": 16, "frames": 1,
        "params": {}, "engine": "ast",
        "levels": [1, 2, 3], "run_pcc": False, "deadline_ms": 500.0,
    },
    "sweep": {"frames": [1, 2]},
}


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """A store populated by one real 2-point sweep + its spec file."""
    root = tmp_path_factory.mktemp("ledger-cli")
    spec_file = root / "sweep.json"
    spec_file.write_text(json.dumps(SUBMISSION))
    store = root / "store"
    assert main(["campaign", str(spec_file), "--store", str(store)]) == 0
    return {"root": root, "spec_file": spec_file, "store": store}


def run_json(capsys, *argv):
    capsys.readouterr()  # drop anything pending
    code = main([*argv, "--json"])
    return code, json.loads(capsys.readouterr().out)


class TestExemplarQueries:
    def test_produced_by_engine_revision(self, swept, capsys):
        """ROADMAP: which stored results were produced by engine
        revision < N?"""
        code, document = run_json(
            capsys, "query",
            "entry where engine_rev < 2 and status == 'ok'",
            "--store", str(swept["store"]))
        assert code == 0
        assert document["schema"] == "repro.ledger_query/v1"
        assert document["count"] == 2
        assert {row["name"] for row in document["rows"]} == {
            "ledger-e2e[frames=1]", "ledger-e2e[frames=2]"}
        assert all(row["engine_rev"] < 2 for row in document["rows"])

    def test_journals_touching_fpga_context(self, swept, capsys):
        """ROADMAP: which specs' journals ever touched FPGA context X?"""
        code, document = run_json(
            capsys, "query",
            "journal_touched where fpga_ctx == 'config2' "
            "join spec on spec_hash = hash select name, key",
            "--store", str(swept["store"]))
        assert code == 0
        assert {row["name"] for row in document["rows"]} == {
            "ledger-e2e[frames=1]", "ledger-e2e[frames=2]"}
        assert all(set(row) == {"name", "key"}
                   for row in document["rows"])

    def test_filter_campaigns_by_engine(self, swept, capsys):
        """The spec relation carries the *resolved* engine name (and its
        options), so campaigns are filterable by engine."""
        code, document = run_json(
            capsys, "query", "spec where engine == 'ast' select name, engine",
            "--store", str(swept["store"]))
        assert code == 0
        assert document["count"] == 2
        assert all(row["engine"] == "ast" for row in document["rows"])
        # The other direction comes back empty, not erroring.
        code, none = run_json(
            capsys, "query", "spec where engine == 'batched'",
            "--store", str(swept["store"]))
        assert code == 0 and none["count"] == 0

    def test_noun_verb_and_alias_spellings_agree(self, swept, capsys):
        query = "entry select key, status"
        _, alias = run_json(capsys, "query", query,
                            "--store", str(swept["store"]))
        _, noun_verb = run_json(capsys, "ledger", "query", query,
                                "--store", str(swept["store"]))
        assert alias == noun_verb

    def test_prose_table(self, swept, capsys):
        assert main(["query", "entry select name, status",
                     "--store", str(swept["store"])]) == 0
        out = capsys.readouterr().out
        assert "name" in out and "status" in out
        assert "2 rows" in out

    def test_bad_query_is_one_clean_line(self, swept, capsys):
        with pytest.raises(SystemExit, match="bad query"):
            main(["query", "entry where status ==",
                  "--store", str(swept["store"])])


class TestGcPolicy:
    def test_policy_deletes_exactly_the_result_set(self, swept, capsys,
                                                   tmp_path):
        store = tmp_path / "store"
        shutil.copytree(swept["store"], store)
        policy = "entry where name == 'ledger-e2e[frames=1]'"
        # Dry-run reports the victim without deleting it.
        code, preview = run_json(capsys, "store", "gc",
                                 "--store", str(store),
                                 "--policy", policy, "--dry-run")
        assert code == 0 and preview["removed_policy"] == 1
        assert len(preview["candidates"]) == 1
        code, report = run_json(capsys, "store", "gc",
                                "--store", str(store), "--policy", policy)
        assert code == 0 and report["removed_policy"] == 1
        assert report["kept"] == 1
        # Exactly the queried entry is gone; the other still answers.
        code, after = run_json(capsys, "query", "entry select name",
                               "--store", str(store))
        assert [row["name"] for row in after["rows"]] == [
            "ledger-e2e[frames=2]"]

    def test_policy_respects_queue_protection(self, swept, capsys,
                                              tmp_path):
        from repro.api import CampaignSpec
        from repro.service.queue import JobQueue

        store = tmp_path / "store"
        shutil.copytree(swept["store"], store)
        # Queue a job over the same sweep: its points are protected.
        queue = JobQueue(tmp_path / "queue")
        queue.submit(CampaignSpec.from_dict(SUBMISSION["spec"]),
                     sweep=SUBMISSION["sweep"])
        code, report = run_json(capsys, "store", "gc",
                                "--store", str(store),
                                "--queue", str(tmp_path / "queue"),
                                "--policy", "entry where engine_rev < 2")
        assert code == 0
        assert report["removed_policy"] == 0 and report["protected"] == 2

    def test_bad_policy_is_refused_before_deleting(self, swept, tmp_path):
        store = tmp_path / "store"
        shutil.copytree(swept["store"], store)
        with pytest.raises(SystemExit, match="bad --policy"):
            main(["store", "gc", "--store", str(store),
                  "--policy", "spec"])  # key-less relation
        with pytest.raises(SystemExit, match="bad --policy"):
            main(["store", "gc", "--store", str(store),
                  "--policy", "entry where =="])  # syntax error


class TestExportRoundTrip:
    def test_export_move_verify(self, swept, capsys, tmp_path):
        bundle = tmp_path / "bundle"
        code, report = run_json(capsys, "export", str(swept["spec_file"]),
                                "--store", str(swept["store"]),
                                "--out", str(bundle))
        assert code == 0 and report["keys"] == 2
        moved = tmp_path / "fresh" / "bundle"
        moved.parent.mkdir()
        shutil.move(str(bundle), str(moved))
        code, verdict = run_json(capsys, "export", str(moved), "--verify")
        assert code == 0 and verdict["ok"] and verdict["errors"] == []

    def test_tampered_bundle_fails_verification(self, swept, capsys,
                                                tmp_path):
        bundle = tmp_path / "bundle"
        run_json(capsys, "ledger", "export", str(swept["spec_file"]),
                 "--store", str(swept["store"]), "--out", str(bundle))
        victim = sorted((bundle / "entries").glob("*.json"))[0]
        envelope = json.loads(victim.read_text())
        envelope["identity"]["engine_revision"] = 99
        victim.write_text(json.dumps(envelope, sort_keys=True))
        code, verdict = run_json(capsys, "export", str(bundle), "--verify")
        assert code == 1 and not verdict["ok"]
        assert any("sha256 mismatch" in error
                   for error in verdict["errors"])

    def test_custom_key_threads_through(self, swept, capsys, tmp_path):
        bundle = tmp_path / "bundle"
        code, _ = run_json(capsys, "export", str(swept["spec_file"]),
                           "--store", str(swept["store"]),
                           "--out", str(bundle), "--key", "team-secret")
        assert code == 0
        code, verdict = run_json(capsys, "export", str(bundle),
                                 "--verify", "--key", "team-secret")
        assert code == 0 and verdict["ok"]
        code, verdict = run_json(capsys, "export", str(bundle), "--verify")
        assert code == 1  # default key no longer verifies it

    def test_missing_args_are_clean_errors(self, swept, tmp_path):
        with pytest.raises(SystemExit, match="--store"):
            main(["query", "entry"])
        with pytest.raises(SystemExit, match="--out"):
            main(["export", str(swept["spec_file"]),
                  "--store", str(swept["store"])])
        with pytest.raises(SystemExit, match="not both"):
            main(["export", "b", "--verify", "--key", "a",
                  "--key-file", "f"])
