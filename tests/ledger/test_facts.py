"""Fact extraction: store + queue + fleet state become typed relations.

The load-bearing contract is the differential test: a packed store and
its unpacked twin must extract *identical* facts — extraction goes
through ``CampaignStore.get``, so the layout generation an entry lives
in can never leak into provenance answers.
"""

import shutil

import pytest

from repro.api import CampaignSpec
from repro.ledger import FACT_SCHEMAS, Ledger
from repro.store import CampaignStore

SPEC = CampaignSpec(name="facts-unit", identities=2, poses=1, size=32,
                    frames=1, levels=(1,))

#: A campaign payload with a serialized level-3 stage, as the flow
#: writes it: the journal's context configurations under
#: ``stages.level3.value.contexts``.
PAYLOAD = {
    "schema": "repro.campaign_outcome/v1",
    "passed": True,
    "stages": {
        "level3": {"value": {"contexts": [
            {"name": "config1", "functions": ["DISTANCE", "PCA"],
             "gate_count": 9000, "bitstream_words": 64},
            {"name": "config2", "functions": ["ROOT"],
             "gate_count": 4000, "bitstream_words": 32},
        ]}},
    },
}


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


def fill(store, count=2):
    keys = []
    for frames in range(1, count + 1):
        keys.append(store.put_campaign(SPEC.replace(frames=frames),
                                       PAYLOAD))
    return keys


class TestExtraction:
    def test_every_relation_always_present(self, store):
        ledger = Ledger.from_store(store)
        assert set(ledger.relations) == set(FACT_SCHEMAS)
        assert ledger.counts() == {name: 0 for name in FACT_SCHEMAS}

    def test_entry_and_spec_and_produced_by(self, store):
        keys = fill(store)
        ledger = Ledger.from_store(store)
        entries = ledger.query("entry").rows()
        assert sorted(r["key"] for r in entries) == sorted(keys)
        for row in entries:
            assert row["status"] == "ok" and row["kind"] == "campaign"
            assert row["workload"] == "facerec"
            assert isinstance(row["engine_rev"], int)
            assert row["active_job"] is False  # no queue given
        # Specs dedup by content hash; every entry links to one.
        specs = {r["hash"] for r in ledger.query("spec").rows()}
        assert {r["spec_hash"] for r in entries} == specs
        produced = ledger.query("produced_by").rows()
        assert sorted(r["key"] for r in produced) == sorted(keys)

    def test_journal_touched_from_level3_payload(self, store):
        keys = fill(store, count=1)
        rows = Ledger.from_store(store).query("journal_touched").rows()
        assert {(r["fpga_ctx"], tuple(r["functions"])) for r in rows} == {
            ("config1", ("DISTANCE", "PCA")), ("config2", ("ROOT",))}
        assert all(r["key"] == keys[0] for r in rows)

    def test_failed_and_level3_less_entries_have_no_journal_facts(
            self, store):
        store.put_campaign(SPEC, {"schema": "repro.campaign_outcome/v1",
                                  "passed": True, "stages": {}})
        store.put_campaign_failure(SPEC.replace(frames=9),
                                   RuntimeError("boom"))
        ledger = Ledger.from_store(store)
        assert ledger.query("journal_touched").count() == 0
        assert ledger.query("entry").where(status="error").count() == 1

    def test_queue_contributes_jobs_leases_and_active_flags(
            self, store, tmp_path):
        from repro.service.queue import JobQueue

        fill(store)
        queue = JobQueue(tmp_path / "queue")
        queue.submit(SPEC.replace(frames=1))          # stays queued
        record, _ = queue.submit(SPEC.replace(frames=2), tenant="ops")
        queue.claim("runner-a", ttl=60.0)
        ledger = Ledger.from_store(store, queue=queue)
        jobs = ledger.query("job").rows()
        assert sorted(r["state"] for r in jobs) == ["queued", "running"]
        assert {r["tenant"] for r in jobs} == {None, "ops"}
        # Job spec hashes land in the shared spec relation.
        spec_hashes = {r["hash"] for r in ledger.query("spec").rows()}
        assert all(r["spec_hash"] in spec_hashes for r in jobs)
        leases = ledger.query("lease").rows()
        assert len(leases) == 1 and leases[0]["runner"] == "runner-a"
        # Both store entries are referenced by active jobs.
        active = ledger.query("entry").where(active_job=True).rows()
        assert len(active) == 2

    def test_fleet_snapshot_contributes_runner_rows(self, store):
        snapshot = {"runners": {
            "runner-b": {"first_seen": 10.0, "claims": 3, "heartbeats": 7,
                         "uploads": 2, "last_seen": 99.0},
        }}
        rows = Ledger.from_store(store, fleet=snapshot) \
                     .query("runner").rows()
        assert rows == [{"name": "runner-b", "claims": 3, "heartbeats": 7,
                         "uploads": 2, "first_seen": 10.0,
                         "last_seen": 99.0}]

    def test_corrupt_entry_degrades_to_a_missing_fact(self, store):
        keys = fill(store)
        victim = next(store.entries_dir.glob("*/*.json"))
        victim.write_text("{ not json")
        ledger = Ledger.from_store(store)
        assert ledger.query("entry").count() == len(keys) - 1


class TestDeterminismAndRoundTrip:
    def test_row_order_is_canonical(self, store):
        fill(store, count=3)
        first = Ledger.from_store(store).to_dict()
        second = Ledger.from_store(store).to_dict()
        assert first == second
        # Reconstructing from rows handed over in reverse converges to
        # the same canonical order.
        relations = {name: list(reversed(rows))
                     for name, rows in first["relations"].items()}
        assert Ledger(relations).to_dict() == first

    def test_to_dict_from_dict_round_trip(self, store):
        fill(store)
        document = Ledger.from_store(store).to_dict()
        assert document["schema"] == "repro.ledger/v2"
        assert document["fact_schemas"] == FACT_SCHEMAS
        assert Ledger.from_dict(document).to_dict() == document
        with pytest.raises(ValueError, match="repro.ledger/v2"):
            Ledger.from_dict({"schema": "repro.nope/v1"})

    def test_packed_store_extracts_identical_facts(self, store, tmp_path):
        """The differential acceptance test: pack ≡ loose, fact-wise."""
        fill(store, count=3)
        twin_root = tmp_path / "twin"
        shutil.copytree(store.root, twin_root)
        twin = CampaignStore(twin_root)
        report = twin.pack()
        assert report["packed"] == 3  # the twin really is packed now
        loose_facts = Ledger.from_store(CampaignStore(store.root)).to_dict()
        packed_facts = Ledger.from_store(twin).to_dict()
        assert packed_facts == loose_facts
