"""The typed record layer: byte-compatibility pins for every wire shape.

These tests freeze the *historical* dict shapes the dataclasses in
:mod:`repro.records` replaced — exact key sets and embedded sub-shapes.
Everything persisted or served is dumped with ``sort_keys=True``, so a
matching key set and values IS byte compatibility; a key added, dropped
or renamed here is a schema change and must bump the record's
``repro.<kind>/vN`` id.
"""

import pytest

from repro.api import CampaignSpec
from repro.records import (
    ENTRY_SCHEMA,
    JOB_SCHEMA,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    Lease,
    LeaseRow,
    RunnerStats,
    StoreEntry,
)
from repro.store import CampaignStore

SPEC = CampaignSpec(name="records-unit", identities=2, poses=1, size=32,
                    frames=1, levels=(1,))
PAYLOAD = {"schema": "repro.campaign_outcome/v1", "passed": True,
           "stages": {}}

#: The envelope key set as journalled since the store's first release.
ENTRY_KEYS = ["schema", "key", "kind", "status", "identity", "spec",
              "payload", "error", "attempts", "created_at"]

#: The job-record key set as written since the queue's first release.
JOB_KEYS = ["schema", "id", "kind", "status", "priority", "seq", "spec",
            "sweep", "jobs", "name", "workload", "tenant", "attempts",
            "generation", "lease", "submitted_at", "started_at",
            "finished_at", "worker", "error", "result"]

#: The ``GET /v1/jobs`` per-job listing row.
SUMMARY_KEYS = ["id", "kind", "status", "priority", "seq", "name",
                "workload", "attempts", "submitted_at", "started_at",
                "finished_at", "worker", "error", "tenant", "generation",
                "lease"]


class TestStoreEntry:
    def test_envelope_key_set_is_pinned(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = store.put_campaign(SPEC, PAYLOAD)
        envelope = store.get(key)
        assert list(envelope) == sorted(ENTRY_KEYS)  # sort_keys on disk
        assert envelope["schema"] == ENTRY_SCHEMA

    def test_round_trip_is_identity(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        key = store.put_campaign(SPEC, PAYLOAD)
        envelope = store.get(key)
        assert StoreEntry.from_dict(envelope).to_dict() == envelope

    def test_is_valid_is_the_read_acceptance_test(self):
        good = StoreEntry(key="k", kind="campaign", status="ok",
                          identity={}, spec=None, payload=None, error=None,
                          attempts=1, created_at=None).to_dict()
        assert StoreEntry.is_valid(good, "k")
        assert not StoreEntry.is_valid(good, "other-key")
        assert not StoreEntry.is_valid(dict(good, status="pending"), "k")
        assert not StoreEntry.is_valid(dict(good, schema="x/v1"), "k")
        assert not StoreEntry.is_valid(None, "k")
        with pytest.raises(ValueError, match=ENTRY_SCHEMA):
            StoreEntry.from_dict(dict(good, status="pending"))


class TestJobRecord:
    @pytest.fixture
    def job(self, tmp_path):
        from repro.service.queue import JobQueue

        queue = JobQueue(tmp_path / "queue")
        record, coalesced = queue.submit(SPEC, sweep={"frames": [1, 2]},
                                         priority=3, tenant="ops")
        assert not coalesced
        return record

    def test_record_key_set_is_pinned(self, job):
        assert sorted(job) == sorted(JOB_KEYS)
        assert job["schema"] == JOB_SCHEMA

    def test_round_trip_is_identity(self, job):
        assert JobRecord.from_dict(job).to_dict() == job

    def test_summary_shape_is_pinned(self, job):
        summary = JobRecord.from_dict(job).summary()
        assert sorted(summary) == sorted(SUMMARY_KEYS)
        assert summary["lease"] is None
        # A leased job's summary exposes runner + expiry only.
        leased = dict(job, lease=Lease(id="L", runner="r-1", ttl=30.0,
                                       expires_at=99.5).to_dict())
        summary = JobRecord.from_dict(leased).summary()
        assert summary["lease"] == {"runner": "r-1", "expires_at": 99.5}

    def test_unknown_status_rejected(self, job):
        with pytest.raises(ValueError, match="unknown job status"):
            JobRecord.from_dict(dict(job, status="paused"))
        assert TERMINAL_STATES < set(JOB_STATES)


class TestLease:
    def test_wire_shape_carries_no_schema_key(self):
        doc = Lease(id="L", runner="r", ttl=30.0, expires_at=60.0).to_dict()
        assert sorted(doc) == ["expires_at", "id", "runner", "ttl"]
        assert Lease.from_dict(doc) == Lease("L", "r", 30.0, 60.0)

    def test_lease_row_from_job(self):
        job = {"id": "J", "generation": 4,
               "lease": {"id": "L", "runner": "r", "ttl": 30.0,
                         "expires_at": 100.0}}
        row = LeaseRow.from_job(job, now=90.0)
        assert row.to_dict() == {"job_id": "J", "runner": "r",
                                 "lease_id": "L", "generation": 4,
                                 "expires_in": 10.0}
        # Lapsed or absent leases produce no row.
        assert LeaseRow.from_job(job, now=100.0) is None
        assert LeaseRow.from_job({"id": "J", "lease": None}, 0.0) is None


class TestRunnerStats:
    def test_stats_row_shape_is_pinned(self):
        stats = RunnerStats(first_seen=1.0, last_seen=1.0)
        assert stats.to_dict() == {"first_seen": 1.0, "claims": 0,
                                   "heartbeats": 0, "uploads": 0,
                                   "last_seen": 1.0}

    def test_saw_bumps_one_counter_and_last_seen(self):
        stats = RunnerStats(first_seen=1.0, last_seen=1.0)
        stats.saw(2.0, "claims")
        stats.saw(3.0, "uploads")
        stats.saw(4.0)             # heartbeat-less sighting: time only
        stats.saw(5.0, "reboots")  # unknown events never invent fields
        assert stats.to_dict() == {"first_seen": 1.0, "claims": 1,
                                   "heartbeats": 0, "uploads": 1,
                                   "last_seen": 5.0}
        assert RunnerStats.from_dict(stats.to_dict()) == stats


class TestReExports:
    def test_legacy_import_sites_still_resolve(self):
        """The constants kept their historical homes as re-exports."""
        from repro.service.queue import (
            JOB_SCHEMA as queue_job_schema,
            TERMINAL_STATES as queue_terminal,
        )
        from repro.store import ENTRY_SCHEMA as store_entry_schema

        assert store_entry_schema == ENTRY_SCHEMA
        assert queue_job_schema == JOB_SCHEMA
        assert queue_terminal == TERMINAL_STATES
