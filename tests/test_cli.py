"""Tests for the command-line driver."""

import json

import pytest

from repro.cli import build_parser, main
from repro.swir import EngineSpec

WORKLOAD = ["--identities", "2", "--poses", "1", "--size", "32"]
SIM_WORKLOAD = WORKLOAD + ["--frames", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("topology", "flow", "explore", "verify", "wave",
                        "workloads"):
            args = parser.parse_args([command])
            assert callable(args.func)
        args = parser.parse_args(["campaign", "spec.json"])
        assert callable(args.func)

    def test_unknown_workload_lists_registered(self, capsys):
        """A bad --workload errors out listing every registered name."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "--workload", "holograms"])
        err = capsys.readouterr().err
        for name in ("facerec", "edgescan", "blockcipher"):
            assert name in err

    def test_frames_only_where_simulated(self):
        """topology/verify don't simulate frames: the arg is not offered."""
        parser = build_parser()
        for command in ("topology", "verify"):
            with pytest.raises(SystemExit):
                parser.parse_args([command, "--frames", "3"])
        for command in ("flow", "explore"):
            args = parser.parse_args([command, "--frames", "3"])
            assert args.frames == 3

    def test_engine_selector(self):
        parser = build_parser()
        assert parser.parse_args(["flow"]).engine == EngineSpec("compiled")
        assert parser.parse_args(
            ["flow", "--engine", "ast"]).engine == EngineSpec("ast")
        parsed = parser.parse_args(
            ["flow", "--engine", "batched:batch_width=8"]).engine
        assert parsed == EngineSpec("batched", batch_width=8)
        with pytest.raises(SystemExit):
            parser.parse_args(["flow", "--engine", "jit"])
        with pytest.raises(SystemExit):
            parser.parse_args(["flow", "--engine", "ast:batch_width=8"])


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "13 modules" in out

    def test_topology_json(self, capsys):
        assert main(["topology", *WORKLOAD, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.topology/v1"
        assert document["workload"] == "facerec"
        assert "13 modules" in document["figure"]

    def test_verify(self, capsys):
        assert main(["verify", *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out

    def test_verify_json(self, capsys):
        assert main(["verify", *WORKLOAD, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.lpv_deadlock/v1"
        assert document["deadlock_free"] is True

    def test_explore(self, capsys):
        assert main(["explore", *SIM_WORKLOAD, "--max-hw", "2"]) == 0
        out = capsys.readouterr().out
        assert "all-sw" in out and "objective" in out

    def test_explore_json(self, capsys):
        assert main(["explore", *SIM_WORKLOAD, "--max-hw", "1", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.explore/v1"
        assert document["profile"]["schema"] == "repro.profile/v1"
        labels = [c["label"] for c in document["exploration"]["candidates"]]
        assert "all-sw" in labels

    def test_wave(self, tmp_path, capsys):
        out_file = tmp_path / "trace.vcd"
        assert main(["wave", "--value", "49", "--cycles", "40",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "$enddefinitions" in text
        assert "b111 " in text  # isqrt(49) = 7

    def test_wave_json(self, tmp_path, capsys):
        out_file = tmp_path / "trace.vcd"
        assert main(["wave", "--cycles", "20", "--out", str(out_file),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.wave/v1"
        assert document["cycles"] == 20
        assert document["out"] == str(out_file)

    def test_flow_small(self, capsys):
        assert main(["flow", *SIM_WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "level 4" in out
        assert "simulation speed ratio" in out

    def test_flow_json(self, capsys):
        assert main(["flow", *SIM_WORKLOAD, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.flow_report/v2"
        assert document["passed"] is True
        assert set(document["levels"]) == {"level1", "level2", "level3",
                                           "level4"}
        assert document["workload"]["name"] == "facerec"
        assert document["workload"]["frames"] == 1

    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("facerec", "edgescan", "blockcipher"):
            assert name in out

    def test_workloads_json(self, capsys):
        assert main(["workloads", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.workloads/v1"
        names = [row["name"] for row in document["workloads"]]
        assert {"facerec", "edgescan", "blockcipher"} <= set(names)

    def test_flow_selects_workload_by_name(self, capsys):
        assert main(["flow", "--workload", "blockcipher", "--frames", "1",
                     "--param", "block_words=8", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["workload"]["name"] == "blockcipher"
        assert document["workload"]["block_words"] == 8
        assert document["passed"] is True

    def test_topology_other_workload(self, capsys):
        assert main(["topology", "--workload", "blockcipher"]) == 0
        out = capsys.readouterr().out
        assert "blockcipher" in out and "12 modules" in out

    def test_flow_engine_ab_identical(self, capsys):
        """--engine ast and --engine compiled emit the same document."""
        from repro.serialize import canonical_json

        documents = {}
        for engine in ("ast", "compiled"):
            assert main(["flow", *SIM_WORKLOAD, "--engine", engine,
                         "--json"]) == 0
            documents[engine] = json.loads(capsys.readouterr().out)
        assert canonical_json(documents["ast"]) == \
            canonical_json(documents["compiled"])


class TestCampaignCommand:
    SPEC = {
        "schema": "repro.campaign_spec/v1",
        "name": "cli-test",
        "identities": 2,
        "poses": 1,
        "size": 32,
        "frames": 1,
    }

    def _write(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_single_run(self, tmp_path, capsys):
        spec = dict(self.SPEC, levels=[1, 2])
        assert main(["campaign", self._write(tmp_path, spec)]) == 0
        out = capsys.readouterr().out
        assert "PASSED" in out and "cli-test" in out

    def test_single_run_json(self, tmp_path, capsys):
        spec = dict(self.SPEC, levels=[3])
        assert main(["campaign", self._write(tmp_path, spec), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.campaign_outcome/v1"
        assert document["passed"] is True
        assert list(document["stages"]) == ["level3"]
        assert document["report"] is None  # not all four levels ran

    def test_sweep(self, tmp_path, capsys):
        payload = {"spec": dict(self.SPEC, levels=[1, 2]),
                   "sweep": {"cpu": ["ARM7TDMI", "ARM9TDMI"]}}
        assert main(["campaign", self._write(tmp_path, payload),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.campaign_sweep/v1"
        assert len(document["runs"]) == 2
        cpus = {run["spec"]["cpu"] for run in document["runs"]}
        assert cpus == {"ARM7TDMI", "ARM9TDMI"}

    def test_rejects_unknown_field(self, tmp_path):
        spec = dict(self.SPEC, bogus=1)
        with pytest.raises(ValueError, match="unknown spec fields"):
            main(["campaign", self._write(tmp_path, spec)])

    def test_accepts_v1_spec_file(self, tmp_path, capsys):
        """Spec files written before the workload field keep working."""
        spec = dict(self.SPEC, levels=[1])
        assert spec["schema"] == "repro.campaign_spec/v1"
        assert main(["campaign", self._write(tmp_path, spec), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec"]["workload"] == "facerec"

    def test_unknown_workload_in_spec_lists_registered(self, tmp_path):
        spec = dict(self.SPEC, schema="repro.campaign_spec/v2",
                    workload="holograms")
        with pytest.raises(KeyError, match="facerec"):
            main(["campaign", self._write(tmp_path, spec)])

    def test_sweep_with_jobs(self, tmp_path, capsys):
        payload = {"spec": dict(self.SPEC, levels=[1]),
                   "sweep": {"seed": [1, 2]}}
        assert main(["campaign", self._write(tmp_path, payload),
                     "--jobs", "2", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.campaign_sweep/v1"
        assert document["jobs"] == 2
        assert len(document["runs"]) == 2
        names = [run["spec"]["name"] for run in document["runs"]]
        assert names == ["cli-test[seed=1]", "cli-test[seed=2]"]

    def test_jobs_without_sweep_rejected(self, tmp_path):
        spec = dict(self.SPEC, levels=[1])
        with pytest.raises(SystemExit, match="sweep"):
            main(["campaign", self._write(tmp_path, spec), "--jobs", "2"])

    def test_non_facerec_workload_spec(self, tmp_path, capsys):
        spec = {
            "schema": "repro.campaign_spec/v2",
            "name": "cipher-cli",
            "workload": "blockcipher",
            "frames": 2,
            "levels": [1, 2],
            "params": {"block_words": 8},
        }
        assert main(["campaign", self._write(tmp_path, spec), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["passed"] is True
        assert document["spec"]["workload"] == "blockcipher"


class TestStoreBackedCommands:
    """``--store``/``--resume`` on campaign + the ``store`` subcommand."""

    SPEC = {
        "schema": "repro.campaign_spec/v2",
        "name": "cli-store",
        "identities": 2,
        "poses": 1,
        "size": 32,
        "frames": 1,
        "levels": [1, 2],
    }

    def _write(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_single_run_persists_then_resumes(self, tmp_path, capsys):
        spec_file = self._write(tmp_path, self.SPEC)
        store_dir = str(tmp_path / "store")
        assert main(["campaign", spec_file, "--store", store_dir,
                     "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["passed"] is True
        # Second invocation with --resume merges from the store.
        assert main(["campaign", spec_file, "--store", store_dir,
                     "--resume"]) == 0
        out = capsys.readouterr().out
        assert "merged from store" in out and "PASSED" in out
        # ... and the JSON view is the stored outcome document itself.
        assert main(["campaign", spec_file, "--store", store_dir,
                     "--resume", "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        from repro.serialize import canonical_json
        assert canonical_json(resumed) == canonical_json(first)

    def test_sweep_resume_skips_completed_points(self, tmp_path, capsys):
        payload = {"spec": self.SPEC,
                   "sweep": {"cpu": ["ARM7TDMI", "ARM9TDMI"]}}
        spec_file = self._write(tmp_path, payload)
        store_dir = str(tmp_path / "store")
        assert main(["campaign", spec_file, "--store", store_dir,
                     "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert len(cold["store_resume"]["executed"]) == 2
        assert main(["campaign", spec_file, "--store", store_dir,
                     "--resume", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["store_resume"]["executed"] == []
        assert len(warm["store_resume"]["hits"]) == 2
        assert warm["runs"] == cold["runs"]

    def test_resume_requires_store(self, tmp_path):
        spec_file = self._write(tmp_path, self.SPEC)
        with pytest.raises(SystemExit, match="--store"):
            main(["campaign", spec_file, "--resume"])

    def test_store_ls_show_gc(self, tmp_path, capsys):
        from repro.api import CampaignSpec, CampaignStore

        store_dir = tmp_path / "store"
        store = CampaignStore(store_dir)
        spec = CampaignSpec(name="seeded", identities=2, poses=1,
                            size=32, frames=1, levels=(1,))
        key = store.put_campaign(spec, {"passed": True, "stages": {}})
        store.put_campaign_failure(spec.replace(name="broken"),
                                   RuntimeError("boom"))

        assert main(["store", "ls", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "2 entries (1 ok, 1 failed)" in out
        assert "seeded" in out and "broken" in out

        assert main(["store", "ls", "--store", str(store_dir),
                     "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.store_listing/v1"
        assert len(document["entries"]) == 2

        assert main(["store", "show", key[:12], "--store",
                     str(store_dir), "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["key"] == key
        assert envelope["status"] == "ok"

        assert main(["store", "gc", "--store", str(store_dir),
                     "--failed", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["removed_failed"] == 1 and stats["kept"] == 1

    def test_store_ls_json_is_canonical(self, tmp_path, capsys):
        """ls --json strips volatile keys, so listings diff cleanly."""
        from repro.api import CampaignSpec, CampaignStore

        store_dir = tmp_path / "store"
        store = CampaignStore(store_dir)
        spec = CampaignSpec(name="seeded", identities=2, poses=1,
                            size=32, frames=1, levels=(1,))
        store.put_campaign(spec, {"passed": True, "stages": {}})
        assert main(["store", "ls", "--store", str(store_dir),
                     "--json"]) == 0
        first = capsys.readouterr().out
        # created_at is volatile by contract and must not appear; the
        # entry-file byte size rides on the timestamp's digits, so it
        # is stripped too.
        assert "created_at" not in first
        assert '"bytes"' not in first
        # Rewrite the entry (new created_at): the listing is unchanged.
        store.put_campaign(spec, {"passed": True, "stages": {}})
        assert main(["store", "ls", "--store", str(store_dir),
                     "--json"]) == 0
        second = capsys.readouterr().out
        assert json.loads(first)["entries"][0]["attempts"] == 1
        assert json.loads(second)["entries"][0]["attempts"] == 2

    def test_store_gc_dry_run(self, tmp_path, capsys):
        from repro.api import CampaignSpec, CampaignStore

        store_dir = tmp_path / "store"
        store = CampaignStore(store_dir)
        spec = CampaignSpec(name="seeded", identities=2, poses=1,
                            size=32, frames=1, levels=(1,))
        store.put_campaign_failure(spec, RuntimeError("boom"))
        assert main(["store", "gc", "--store", str(store_dir),
                     "--failed", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would remove" in out and "1 failed entries" in out
        # Nothing was deleted: the entry is still listed.
        assert store.get_campaign(spec) is not None
        assert main(["store", "gc", "--store", str(store_dir),
                     "--failed", "--dry-run", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["dry_run"] is True
        assert stats["removed_failed"] == 1 and stats["candidates"]

    def test_store_show_unknown_key(self, tmp_path):
        from repro.api import CampaignStore

        store_dir = tmp_path / "store"
        CampaignStore(store_dir)
        with pytest.raises(SystemExit, match="no store entry"):
            main(["store", "show", "feedbeef", "--store", str(store_dir)])

    def test_store_subcommand_requires_store_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "ls"])

    def test_store_version_mismatch_is_a_clean_error(self, tmp_path):
        from repro.api import CampaignStore

        store_dir = tmp_path / "store"
        CampaignStore(store_dir)
        manifest = json.loads((store_dir / "store.json").read_text())
        manifest["version"] += 1
        (store_dir / "store.json").write_text(json.dumps(manifest))
        with pytest.raises(SystemExit, match="version"):
            main(["store", "ls", "--store", str(store_dir)])

    def test_store_subcommand_never_creates_a_store(self, tmp_path):
        """A mistyped --store path errors instead of leaving an empty
        store behind (only writers create stores)."""
        missing = tmp_path / "campain-store"  # typo'd path
        with pytest.raises(SystemExit, match="no campaign store"):
            main(["store", "ls", "--store", str(missing)])
        assert not missing.exists()

    def test_flow_store_persists_level4(self, tmp_path, capsys):
        """``flow --store`` leaves the level-4 artifact behind on disk."""
        from repro.api import CampaignStore

        store_dir = str(tmp_path / "store")
        assert main(["flow", *SIM_WORKLOAD, "--store", store_dir]) == 0
        capsys.readouterr()
        rows = CampaignStore(store_dir).ls()
        assert [row["kind"] for row in rows] == ["stage"]
        assert rows[0]["name"] == "level4"


class TestServiceCommands:
    """``repro service submit|status|watch`` against a live daemon."""

    SPEC = {
        "schema": "repro.campaign_spec/v2",
        "name": "cli-service",
        "workload": "blockcipher",
        "frames": 1,
        "levels": [1],
        "params": {"block_words": 4},
    }

    @pytest.fixture
    def service(self, tmp_path):
        from repro.service import CampaignService

        svc = CampaignService(tmp_path / "svc", workers=1).start()
        yield svc
        svc.stop()

    def _write(self, tmp_path, payload):
        path = tmp_path / "submit.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_parser_knows_service_subcommands(self):
        parser = build_parser()
        for argv in (["service", "start", "--root", "r"],
                     ["service", "submit", "spec.json"],
                     ["service", "status"],
                     ["service", "watch", "someid"]):
            assert callable(parser.parse_args(argv).func)
        with pytest.raises(SystemExit):
            parser.parse_args(["service"])

    def test_submit_watch_roundtrip(self, service, tmp_path, capsys):
        spec_file = self._write(tmp_path, {"spec": self.SPEC,
                                           "sweep": {"frames": [1, 2]}})
        assert main(["service", "submit", spec_file, "--url", service.url,
                     "--watch"]) == 0
        out = capsys.readouterr().out
        assert "DONE" in out and "PASSED" in out
        assert "2 points" in out

    def test_submit_then_status_and_watch(self, service, tmp_path, capsys):
        spec_file = self._write(tmp_path, self.SPEC)
        assert main(["service", "submit", spec_file, "--url",
                     service.url, "--json"]) == 0
        job = json.loads(capsys.readouterr().out)
        assert job["status"] in ("queued", "running", "done")
        assert main(["service", "watch", job["id"][:12], "--url",
                     service.url]) == 0
        assert "PASSED" in capsys.readouterr().out
        assert main(["service", "status", job["id"][:12], "--url",
                     service.url, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "done"
        assert document["payload"]["passed"] is True

    def test_submit_watch_json_emits_one_document(self, service, tmp_path,
                                                  capsys):
        """--json --watch prints exactly one JSON document (the terminal
        record), like every other --json subcommand."""
        spec_file = self._write(tmp_path, self.SPEC)
        assert main(["service", "submit", spec_file, "--url", service.url,
                     "--watch", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)  # Extra data -> fail
        assert document["status"] == "done"
        assert document["result"]["passed"] is True

    def test_status_without_job_prints_stats(self, service, capsys):
        assert main(["service", "status", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "workers:" in out and "points:" in out

    def test_failed_job_exits_nonzero(self, service, tmp_path, capsys):
        doomed = dict(self.SPEC, name="doomed", cpu="MISSING-CPU")
        spec_file = self._write(tmp_path, doomed)
        assert main(["service", "submit", spec_file, "--url", service.url,
                     "--watch"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "MISSING-CPU" in out

    def test_start_with_bad_workers_is_a_clean_error(self, tmp_path):
        # 0 is valid (coordinator-only fleet mode); negatives are not.
        with pytest.raises(SystemExit, match="workers"):
            main(["service", "start", "--root", str(tmp_path / "svc"),
                  "--workers", "-1"])

    def test_unreachable_service_is_a_clean_error(self, tmp_path):
        spec_file = self._write(tmp_path, self.SPEC)
        with pytest.raises(SystemExit, match="Unreachable"):
            main(["service", "submit", spec_file,
                  "--url", "http://127.0.0.1:9"])
