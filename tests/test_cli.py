"""Tests for the command-line driver."""

import pytest

from repro.cli import build_parser, main

WORKLOAD = ["--identities", "2", "--poses", "1", "--size", "32",
            "--frames", "1"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("topology", "flow", "explore", "verify", "wave"):
            args = parser.parse_args([command])
            assert callable(args.func)


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "13 modules" in out

    def test_verify(self, capsys):
        assert main(["verify", *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free" in out

    def test_explore(self, capsys):
        assert main(["explore", *WORKLOAD, "--max-hw", "2"]) == 0
        out = capsys.readouterr().out
        assert "all-sw" in out and "objective" in out

    def test_wave(self, tmp_path, capsys):
        out_file = tmp_path / "trace.vcd"
        assert main(["wave", "--value", "49", "--cycles", "40",
                     "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert "$enddefinitions" in text
        assert "b111 " in text  # isqrt(49) = 7

    def test_flow_small(self, capsys):
        assert main(["flow", *WORKLOAD]) == 0
        out = capsys.readouterr().out
        assert "level 4" in out
        assert "simulation speed ratio" in out
