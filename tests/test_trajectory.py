"""Tests for the bench perf-trajectory tooling (benchmarks/trajectory.py)."""

import json

import pytest

from benchmarks.trajectory import (
    TRAJECTORY_SCHEMA,
    check_regressions,
    convert,
    main,
)


def raw(name: str, median: float, **extra) -> dict:
    return {"name": name, "stats": {"median": median},
            "extra_info": extra}


RAW_RUN = {
    "benchmarks": [
        raw("test_swir_interp_engine_speedup", 0.015,
            engine="compiled", workload="blockcipher", speedup_vs_ast=3.5),
        raw("test_level1_sim_time", 0.75),
    ],
}


class TestConvert:
    def test_point_document_shape(self):
        point = convert(RAW_RUN, sha="abc1234def")
        assert point["schema"] == TRAJECTORY_SCHEMA
        assert point["sha"] == "abc1234def"
        assert point["benchmarks"]["test_swir_interp_engine_speedup"] == {
            "median_seconds": 0.015,
            "engine": "compiled",
            "workload": "blockcipher",
        }

    def test_untagged_benches_get_defaults(self):
        point = convert(RAW_RUN, sha="x")
        bench = point["benchmarks"]["test_level1_sim_time"]
        assert bench == {"median_seconds": 0.75, "engine": "compiled",
                         "workload": "facerec"}


class TestRegressionGate:
    BASELINE = {
        "schema": TRAJECTORY_SCHEMA, "sha": "base",
        "benchmarks": {
            "a": {"median_seconds": 1.0, "engine": "compiled",
                  "workload": "facerec"},
            "b": {"median_seconds": 0.1, "engine": "compiled",
                  "workload": "facerec"},
            "gone": {"median_seconds": 0.2, "engine": "compiled",
                     "workload": "facerec"},
        },
    }

    def point(self, a: float, b: float) -> dict:
        return {"schema": TRAJECTORY_SCHEMA, "sha": "now", "benchmarks": {
            "a": {"median_seconds": a, "engine": "compiled",
                  "workload": "facerec"},
            "b": {"median_seconds": b, "engine": "compiled",
                  "workload": "facerec"},
            "fresh": {"median_seconds": 9.9, "engine": "ast",
                      "workload": "edgescan"},
        }}

    def test_within_threshold_passes(self):
        report = check_regressions(self.point(1.2, 0.12), self.BASELINE)
        assert report["regressions"] == []

    def test_over_threshold_fails(self):
        report = check_regressions(self.point(1.26, 0.1), self.BASELINE)
        assert [r[0] for r in report["regressions"]] == ["a"]
        name, base, median, ratio = report["regressions"][0]
        assert base == 1.0 and median == 1.26
        assert ratio == pytest.approx(1.26)

    def test_new_and_missing_benches_reported(self):
        report = check_regressions(self.point(1.0, 0.1), self.BASELINE)
        assert report["new"] == ["fresh"]
        assert report["missing"] == ["gone"]
        assert report["regressions"] == []

    def test_improvements_listed(self):
        report = check_regressions(self.point(0.5, 0.1), self.BASELINE)
        assert [r[0] for r in report["improvements"]] == ["a"]

    def test_custom_threshold(self):
        report = check_regressions(self.point(1.2, 0.1), self.BASELINE,
                                   threshold=0.1)
        assert [r[0] for r in report["regressions"]] == ["a"]

    def tiny_vs(self, current: float) -> tuple[dict, dict]:
        baseline = {"schema": TRAJECTORY_SCHEMA, "sha": "base",
                    "benchmarks": {"tiny": {"median_seconds": 2e-7,
                                            "engine": "compiled",
                                            "workload": "facerec"}}}
        point = {"schema": TRAJECTORY_SCHEMA, "sha": "now",
                 "benchmarks": {"tiny": {"median_seconds": current,
                                         "engine": "compiled",
                                         "workload": "facerec"}}}
        return point, baseline

    def test_sub_floor_benches_are_not_gated(self):
        """A 25% swing below timer noise must not fail the job."""
        report = check_regressions(*self.tiny_vs(8e-7))
        assert report["regressions"] == []
        assert report["ungated"] == ["tiny"]

    def test_crossing_the_noise_floor_is_gated(self):
        """Microseconds -> seconds is a real regression, not noise."""
        report = check_regressions(*self.tiny_vs(5.0))
        assert [r[0] for r in report["regressions"]] == ["tiny"]
        assert report["ungated"] == []


class TestCli:
    def run_main(self, tmp_path, baseline=None, sha="feedc0ffee99",
                 extra_args=()):
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(RAW_RUN))
        baseline_path = tmp_path / "baseline.json"
        if baseline is not None:
            baseline_path.write_text(json.dumps(baseline))
        code = main(["--input", str(raw_path), "--sha", sha,
                     "--out", str(tmp_path / "artifacts"),
                     "--baseline", str(baseline_path), *extra_args])
        return code, tmp_path / "artifacts" / f"BENCH_{sha[:10]}.json", \
            baseline_path

    def test_writes_sha_named_artifact(self, tmp_path):
        code, artifact, __ = self.run_main(tmp_path, extra_args=["--regen"])
        assert code == 0
        assert artifact.name == "BENCH_feedc0ffee.json"
        point = json.loads(artifact.read_text())
        assert point["sha"] == "feedc0ffee99"
        assert len(point["benchmarks"]) == 2

    def test_regen_writes_baseline(self, tmp_path):
        code, __, baseline_path = self.run_main(tmp_path,
                                                extra_args=["--regen"])
        assert code == 0
        baseline = json.loads(baseline_path.read_text())
        assert baseline["schema"] == TRAJECTORY_SCHEMA
        assert "test_level1_sim_time" in baseline["benchmarks"]

    def test_missing_baseline_errors(self, tmp_path):
        code, __, __ = self.run_main(tmp_path)
        assert code == 2

    def test_gate_passes_and_fails(self, tmp_path):
        good = convert(RAW_RUN, sha="base")
        code, __, __ = self.run_main(tmp_path, baseline=good)
        assert code == 0
        slow = json.loads(json.dumps(good))
        for bench in slow["benchmarks"].values():
            bench["median_seconds"] /= 2.0  # current run is 2x slower
        code, __, __ = self.run_main(tmp_path, baseline=slow)
        assert code == 1

    def test_missing_baseline_bench_fails_gate(self, tmp_path):
        """A bench dropped from the run must fail, not silently pass."""
        baseline = convert(RAW_RUN, sha="base")
        baseline["benchmarks"]["gone"] = {
            "median_seconds": 0.5, "engine": "compiled",
            "workload": "facerec"}
        code, __, __ = self.run_main(tmp_path, baseline=baseline)
        assert code == 1

    def test_env_regen(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_BASELINE_REGEN", "1")
        code, __, baseline_path = self.run_main(tmp_path)
        assert code == 0
        assert baseline_path.exists()
