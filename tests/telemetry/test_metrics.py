"""The metrics registry: instruments, enable gating, Prometheus text."""

import re

import pytest

from repro.telemetry.metrics import MetricsRegistry

#: One Prometheus text-format sample line: name{labels} value.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (\+Inf|-?[0-9.e+-]+)$")


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestGating:
    def test_disabled_mutations_are_noops(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        counter.inc()
        gauge.set(5)
        histogram.observe(0.2)
        assert counter.value() is None
        assert gauge.value() is None
        assert histogram.value() is None

    def test_handles_survive_enable_toggle(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        registry.enable()
        counter.inc(3)
        registry.disable()
        counter.inc(100)
        assert counter.value() == 3


class TestInstruments:
    def test_counter_labels_and_amounts(self, registry):
        counter = registry.counter("jobs_total", "help text")
        counter.inc(status="done")
        counter.inc(2, status="done")
        counter.inc(status="failed")
        assert counter.value(status="done") == 3
        assert counter.value(status="failed") == 1
        assert counter.value() is None

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("c_total").inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 8

    def test_histogram_buckets_are_cumulative(self, registry):
        histogram = registry.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        row = histogram.value()
        assert row["buckets"] == [1, 2, 3]
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(55.55)

    def test_registry_dedups_by_name(self, registry):
        first = registry.counter("same_total")
        second = registry.counter("same_total")
        assert first is second

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing_total")

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total").inc(**{"bad-label": 1})


class TestRendering:
    def test_render_is_valid_exposition_text(self, registry):
        registry.counter("jobs_total", "Jobs by status").inc(status="done")
        registry.gauge("queue_depth", "Queued jobs").set(4)
        registry.histogram("job_seconds", "Job wall clock",
                           buckets=(0.1, 1.0)).observe(0.5)
        text = registry.render()
        assert text.endswith("\n")
        kinds = {}
        for line in text.splitlines():
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert kind in ("counter", "gauge", "histogram")
                kinds[name] = kind
                continue
            assert _SAMPLE_RE.match(line), line
            base = line.split("{")[0].split(" ")[0]
            stripped = re.sub(r"_(bucket|sum|count)$", "", base)
            assert base in kinds or stripped in kinds
        assert kinds["jobs_total"] == "counter"
        assert 'jobs_total{status="done"} 1' in text
        assert 'job_seconds_bucket{le="+Inf"} 1' in text
        assert "job_seconds_count 1" in text

    def test_label_values_escape(self, registry):
        registry.counter("c_total").inc(path='a"b\\c\nd')
        text = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_snapshot_folds_labels_into_keys(self, registry):
        registry.counter("jobs_total").inc(status="done")
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot['jobs_total{status="done"}'] == 1
        assert snapshot["depth"] == 2
        assert snapshot["lat_count"] == 1

    def test_reset_zeroes_but_keeps_handles(self, registry):
        counter = registry.counter("c_total")
        counter.inc()
        registry.reset()
        assert counter.value() is None
        counter.inc()
        assert counter.value() == 1
