"""Telemetry end-to-end: byte-invisibility, cross-process propagation,
queryable spans.

The acceptance contract of the subsystem:

- tracing ON changes **nothing** in result documents
  (``documents_equal`` against an untraced run);
- spans propagate across the sweep pool's fork boundary (child
  ``sweep.point`` spans re-parent under the submitting
  ``campaign.sweep`` span);
- a SIGKILL'd service job child still leaves a durable supervisor-side
  span with ``status == "aborted"`` and an uncorrupted sink;
- traced runs are queryable through the ledger's ``span`` relation,
  loose or packed.
"""

import os
import signal
import time

import pytest

from repro import telemetry
from repro.api import Campaign, CampaignSpec, CampaignStore
from repro.serialize import documents_equal

FAST = CampaignSpec(name="tele", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})
GRID = {"frames": [1, 2]}


@pytest.fixture
def traced(tmp_path):
    """Module tracer pointed at a temp sink for one test."""
    spans_dir = tmp_path / "spans"
    telemetry.configure(spans_dir=spans_dir)
    yield spans_dir
    telemetry.disable()


class TestByteInvisibility:
    def test_traced_run_is_documents_equal_to_untraced(self, tmp_path):
        untraced = Campaign(FAST).run().to_dict()
        spans_dir = tmp_path / "spans"
        telemetry.configure(spans_dir=spans_dir)
        try:
            traced = Campaign(FAST).run().to_dict()
        finally:
            telemetry.disable()
        assert documents_equal(traced, untraced)
        names = {r["name"] for r in telemetry.read_spans(spans_dir)}
        assert "campaign.run" in names

    def test_traced_sweep_is_documents_equal_to_untraced(self, tmp_path):
        untraced = Campaign.sweep(FAST, GRID).to_dict()
        telemetry.configure(spans_dir=tmp_path / "spans")
        try:
            traced = Campaign.sweep(FAST, GRID).to_dict()
        finally:
            telemetry.disable()
        assert documents_equal(traced, untraced)


class TestPoolPropagation:
    def test_pool_children_reparent_under_the_sweep_span(self, traced):
        Campaign.sweep(FAST, GRID, jobs=2)
        records = telemetry.read_spans(traced)
        sweeps = [r for r in records if r["name"] == "campaign.sweep"]
        points = [r for r in records if r["name"] == "sweep.point"]
        assert len(sweeps) == 1
        (sweep,) = sweeps
        assert len(points) == len(Campaign.sweep_specs(FAST, GRID))
        for point in points:
            assert point["trace_id"] == sweep["trace_id"]
            assert point["parent_id"] == sweep["span_id"]
        # The points really ran in pool children, not the parent.
        assert any(p["pid"] != sweep["pid"] for p in points)

    def test_serial_sweep_points_nest_too(self, traced):
        Campaign.sweep(FAST, GRID, jobs=1)
        records = telemetry.read_spans(traced)
        (sweep,) = [r for r in records if r["name"] == "campaign.sweep"]
        points = [r for r in records if r["name"] == "sweep.point"]
        assert points and all(p["parent_id"] == sweep["span_id"]
                              for p in points)


class TestServiceJobSpans:
    def test_sigkilled_child_flushes_aborted_span(self, tmp_path,
                                                  monkeypatch, traced):
        import repro.service.workers as workers_mod
        from repro.service.queue import JobQueue
        from repro.service.workers import WorkerPool

        def doomed(job_doc, store_root):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(workers_mod, "execute_job", doomed)
        queue = JobQueue(tmp_path / "queue")
        job, _ = queue.submit(FAST)
        pool = WorkerPool(queue, str(tmp_path / "store"), workers=1)
        pool.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                stats = queue.stats()["by_status"]
                if not stats["queued"] and not stats["running"]:
                    break
                time.sleep(0.02)
        finally:
            pool.stop()
        assert queue.get(job["id"])["status"] == "failed"
        # The supervisor-side span survived the child's SIGKILL, with
        # the aborted status, and the sink stayed parseable.
        records = telemetry.read_spans(traced)
        jobs = [r for r in records if r["name"] == "service.job"]
        assert len(jobs) == 1
        assert jobs[0]["status"] == "aborted"
        assert jobs[0]["attrs"]["job"] == job["id"][:12]


class TestLedgerSpans:
    def _traced_sweep(self, tmp_path):
        store = CampaignStore(tmp_path / "store")
        telemetry.configure(
            spans_dir=telemetry.spans_dir_for(store.root))
        try:
            Campaign.sweep(FAST, GRID, store=store)
        finally:
            telemetry.disable()
        return store

    def test_span_relation_is_queryable(self, tmp_path):
        from repro.ledger import Ledger

        store = self._traced_sweep(tmp_path)
        ledger = Ledger.from_store(store)
        rows = ledger.run("span where name == 'sweep.point' "
                          "order by duration_ms desc")
        assert len(rows) == len(Campaign.sweep_specs(FAST, GRID))
        durations = [r["duration_ms"] for r in rows]
        assert durations == sorted(durations, reverse=True)
        assert all(r["status"] == "ok" for r in rows)

    def test_spans_survive_store_packing(self, tmp_path):
        from repro.ledger import Ledger

        store = self._traced_sweep(tmp_path)
        before = Ledger.from_store(store).run("span")
        store.pack()
        after = Ledger.from_store(store).run("span")
        assert before and after == before


class TestTraceCli:
    @pytest.fixture
    def traced_store(self, tmp_path):
        store_root = tmp_path / "store"
        CampaignStore(store_root)
        telemetry.configure(
            spans_dir=telemetry.spans_dir_for(store_root))
        try:
            Campaign.sweep(FAST, GRID, store=CampaignStore(store_root))
        finally:
            telemetry.disable()
        return store_root

    def test_trace_show_tree_top(self, traced_store, capsys):
        from repro.cli import main

        assert main(["trace", "show", "--store", str(traced_store)]) == 0
        out = capsys.readouterr().out
        assert "sweep.point" in out and "campaign.sweep" in out

        assert main(["trace", "tree", "--store", str(traced_store)]) == 0
        out = capsys.readouterr().out
        tree_lines = out.splitlines()
        (sweep_line,) = [l for l in tree_lines if "campaign.sweep" in l]
        (point_line, *_) = [l for l in tree_lines if "sweep.point" in l]
        # Children render indented one level under their parent.
        assert point_line.index("sweep.point") > \
            sweep_line.index("campaign.sweep")

        assert main(["trace", "top", "--store", str(traced_store),
                     "--json"]) == 0
        import json

        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.trace_top/v1"
        by_name = {row["name"]: row for row in document["rows"]}
        assert by_name["sweep.point"]["count"] == \
            len(Campaign.sweep_specs(FAST, GRID))

    def test_trace_show_filters(self, traced_store, capsys):
        from repro.cli import main

        assert main(["trace", "show", "--store", str(traced_store),
                     "--name", "campaign.sweep"]) == 0
        out = capsys.readouterr().out
        assert "campaign.sweep" in out and "sweep.point" not in out

    def test_missing_store_errors_cleanly(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="no store directory"):
            main(["trace", "show", "--store", str(tmp_path / "nope")])
