"""The tracer: span hierarchy, JSONL sinks, cross-process hand-off."""

import json

import pytest

from repro.telemetry import trace as trace_mod
from repro.telemetry.trace import (
    SPAN_SCHEMA,
    Tracer,
    read_spans,
    spans_dir_for,
)


@pytest.fixture
def tracer(tmp_path):
    """A fresh enabled tracer writing under ``tmp_path``."""
    instance = Tracer()
    instance.configure(tmp_path)
    yield instance
    instance.disable()


class TestDisabled:
    def test_span_is_a_shared_noop(self):
        tracer = Tracer()
        first = tracer.span("a", key="value")
        second = tracer.span("b")
        assert first is second
        with first as span:
            span.set_attr("x", 1)
            span.set_status("error")
        assert span.context() is None
        assert tracer.current() is None

    def test_module_handoff_is_none_when_disabled(self):
        assert not trace_mod.tracer.enabled
        assert trace_mod.handoff() is None
        # Adopting nothing must be a no-op, not an error.
        trace_mod.adopt(None)
        trace_mod.adopt({})


class TestHierarchy:
    def test_nested_spans_share_a_trace_and_parent(self, tracer, tmp_path):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        records = {r["name"]: r for r in read_spans(tmp_path)}
        assert records["inner"]["parent_id"] == records["outer"]["span_id"]
        assert records["outer"]["parent_id"] is None
        assert records["inner"]["schema"] == SPAN_SCHEMA

    def test_sibling_roots_get_distinct_traces(self, tracer):
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_exception_marks_error_status(self, tracer, tmp_path):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = read_spans(tmp_path)
        assert record["status"] == "error"
        assert record["duration_ms"] >= 0.0

    def test_explicit_status_survives_exception(self, tracer, tmp_path):
        with pytest.raises(RuntimeError):
            with tracer.span("aborted-work") as span:
                span.set_status("aborted")
                raise RuntimeError("killed")
        (record,) = read_spans(tmp_path)
        assert record["status"] == "aborted"

    def test_unknown_status_rejected(self, tracer):
        with tracer.span("s") as span:
            with pytest.raises(ValueError, match="unknown span status"):
                span.set_status("exploded")

    def test_attrs_clamp_to_json_scalars(self, tracer, tmp_path):
        with tracer.span("s", n=3, ratio=0.5, ok=True, none=None,
                         rich=(1, 2)) as span:
            span.set_attr("late", {"a": 1})
        (record,) = read_spans(tmp_path)
        assert record["attrs"]["n"] == 3
        assert record["attrs"]["ok"] is True
        assert record["attrs"]["none"] is None
        assert record["attrs"]["rich"] == "(1, 2)"
        assert record["attrs"]["late"] == "{'a': 1}"

    def test_name_is_usable_as_an_attribute(self, tracer, tmp_path):
        # The span name is positional-only exactly so call sites can
        # attach a ``name=`` attribute (job names, module names).
        with tracer.span("job", name="my-job"):
            pass
        (record,) = read_spans(tmp_path)
        assert record["name"] == "job"
        assert record["attrs"]["name"] == "my-job"


class TestSink:
    def test_records_flush_per_span_end(self, tracer, tmp_path):
        with tracer.span("first"):
            pass
        assert [r["name"] for r in read_spans(tmp_path)] == ["first"]
        with tracer.span("second"):
            pass
        assert len(read_spans(tmp_path)) == 2

    def test_reader_skips_torn_and_foreign_lines(self, tracer, tmp_path):
        with tracer.span("good"):
            pass
        sink = next(tmp_path.glob("*.jsonl"))
        with open(sink, "a", encoding="utf-8") as stream:
            stream.write('{"schema": "not.a.span/v1"}\n')
            stream.write('{"schema": "repro.span/v1", "name": "torn')
        records = read_spans(tmp_path)
        assert [r["name"] for r in records] == ["good"]

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_spans(tmp_path / "nowhere") == []

    def test_spans_dir_convention(self, tmp_path):
        assert spans_dir_for(tmp_path) == tmp_path / "spans"

    def test_end_is_idempotent(self, tracer, tmp_path):
        span = tracer.span("once")
        with span:
            pass
        span.end()
        span.end(error=True)
        records = read_spans(tmp_path)
        assert len(records) == 1 and records[0]["status"] == "ok"


class TestHandoffAdopt:
    def test_attach_reparents_new_roots(self, tracer, tmp_path):
        with tracer.span("submitting") as parent:
            context = parent.context()
        child_tracer = Tracer()
        child_tracer.configure(tmp_path)
        try:
            child_tracer.attach(context)
            with child_tracer.span("adopted"):
                pass
        finally:
            child_tracer.disable()
        records = {r["name"]: r for r in read_spans(tmp_path)}
        assert records["adopted"]["trace_id"] == \
            records["submitting"]["trace_id"]
        assert records["adopted"]["parent_id"] == \
            records["submitting"]["span_id"]

    def test_module_handoff_roundtrip(self, tmp_path):
        trace_mod.tracer.configure(tmp_path)
        try:
            with trace_mod.span("parent"):
                package = trace_mod.handoff()
            assert package["dir"] == str(tmp_path)
            assert set(package["ctx"]) == {"trace_id", "span_id"}
            assert json.loads(json.dumps(package)) == package
        finally:
            trace_mod.tracer.disable()

    def test_decorator_traces_the_call(self, tmp_path):
        trace_mod.tracer.configure(tmp_path)
        try:
            @trace_mod.traced("math.double", flavor="test")
            def double(x):
                return 2 * x

            assert double(21) == 42
        finally:
            trace_mod.tracer.disable()
        (record,) = read_spans(tmp_path)
        assert record["name"] == "math.double"
        assert record["attrs"]["flavor"] == "test"
