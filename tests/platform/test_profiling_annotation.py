"""Tests for profiling and timing annotation."""

import pytest

from repro.platform import (
    ARM7TDMI,
    ARM9TDMI,
    Profile,
    TimingAnnotator,
    profile_graph,
)
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec


def weighted_graph():
    """SRC -> HEAVY -> LIGHT -> SINK with known op weights."""
    graph = AppGraph("weighted")
    graph.add_task(TaskSpec("SRC", lambda s, i: {"a": i["__stimulus__"]},
                            writes=("a",), ops_fn=lambda i: 10))
    graph.add_task(TaskSpec("HEAVY", lambda s, i: {"b": i["a"]},
                            reads=("a",), writes=("b",),
                            ops_fn=lambda i: 10_000))
    graph.add_task(TaskSpec("LIGHT", lambda s, i: {"c": i["b"]},
                            reads=("b",), writes=("c",), ops_fn=lambda i: 100))
    graph.add_task(TaskSpec("SINK", lambda s, i: {}, reads=("c",),
                            ops_fn=lambda i: 1))
    graph.add_channel(ChannelSpec("a", "SRC", "HEAVY", words_per_token=8))
    graph.add_channel(ChannelSpec("b", "HEAVY", "LIGHT", words_per_token=4))
    graph.add_channel(ChannelSpec("c", "LIGHT", "SINK", words_per_token=2))
    return graph


class TestProfiler:
    def test_firing_counts(self):
        profile = profile_graph(weighted_graph(), {"SRC": [1, 2, 3]})
        assert all(tp.firings == 3 for tp in profile.tasks.values())

    def test_ranking_by_work(self):
        profile = profile_graph(weighted_graph(), {"SRC": [1]})
        assert profile.heaviest(2) == ["HEAVY", "LIGHT"]
        assert profile.ranking()[0].name == "HEAVY"

    def test_share_sums_to_one(self):
        profile = profile_graph(weighted_graph(), {"SRC": [1, 2]})
        total = sum(profile.share(name) for name in profile.tasks)
        assert total == pytest.approx(1.0)

    def test_word_accounting(self):
        profile = profile_graph(weighted_graph(), {"SRC": [1, 2]})
        assert profile.tasks["HEAVY"].words_in == 16   # 2 firings x 8 words
        assert profile.tasks["HEAVY"].words_out == 8
        assert profile.tasks["SRC"].words_in == 0

    def test_describe_contains_tasks(self):
        profile = profile_graph(weighted_graph(), {"SRC": [1]})
        text = profile.describe()
        assert "HEAVY" in text and "%" in text

    def test_missing_stimuli(self):
        with pytest.raises(ValueError):
            profile_graph(weighted_graph(), {})

    def test_profile_does_not_change_results(self):
        graph = weighted_graph()
        profile_graph(graph, {"SRC": [5]})
        results = graph.run_functional({"SRC": [5]})
        assert results["SINK"] == [{"c": 5}]


class TestAnnotator:
    def _profile(self):
        return profile_graph(weighted_graph(), {"SRC": [1, 2]})

    def test_sw_annotation_uses_cpu_model(self):
        profile = self._profile()
        slow = TimingAnnotator(ARM7TDMI).annotate(
            weighted_graph(), profile, {"HEAVY"}, set())
        fast = TimingAnnotator(ARM9TDMI).annotate(
            weighted_graph(), profile, {"HEAVY"}, set())
        assert fast["HEAVY"].time_per_firing_ps < slow["HEAVY"].time_per_firing_ps

    def test_hw_faster_than_sw_for_heavy_task(self):
        graph = weighted_graph()
        profile = self._profile()
        annotator = TimingAnnotator(ARM7TDMI)
        as_sw = annotator.annotate_sw("HEAVY", 10_000)
        as_hw = annotator.annotate_hw("HEAVY", 10_000)
        assert as_hw.time_per_firing_ps < as_sw.time_per_firing_ps

    def test_manual_hw_override(self):
        annotator = TimingAnnotator(ARM7TDMI)
        annotator.override_hw_latency("HEAVY", 123 * 20_000)
        ann = annotator.annotate_hw("HEAVY", 10_000)
        assert ann.time_per_firing_ps == 123 * 20_000

    def test_debug_ops_excluded_from_timing(self):
        annotator = TimingAnnotator(ARM7TDMI)
        plain = annotator.annotate_sw("T", 1000)
        annotator.mark_debug_ops("T", 500)
        with_debug = annotator.annotate_sw("T", 1000)
        assert with_debug.time_per_firing_ps < plain.time_per_firing_ps
        assert with_debug.debug_only_ops == 500

    def test_annotate_full_graph(self):
        graph = weighted_graph()
        profile = self._profile()
        annotations = TimingAnnotator(ARM7TDMI).annotate(
            graph, profile, {"SRC", "LIGHT", "SINK"}, {"HEAVY"})
        assert set(annotations) == set(graph.tasks)
        assert annotations["HEAVY"].side == "hw"
        assert annotations["LIGHT"].side == "sw"

    def test_unknown_task_rejected(self):
        graph = weighted_graph()
        profile = self._profile()
        with pytest.raises(ValueError):
            TimingAnnotator(ARM7TDMI).annotate(graph, profile, {"NOPE"}, set())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TimingAnnotator(ARM7TDMI, hw_ops_per_cycle=0)
        annotator = TimingAnnotator(ARM7TDMI)
        with pytest.raises(ValueError):
            annotator.override_hw_latency("T", -1)
