"""Tests for CPU timing models, the bus and memories."""

import pytest

from repro.kernel import NS, Simulator, wait
from repro.platform import ARM7TDMI, ARM9TDMI, CPU_LIBRARY, Bus, CpuModel, Memory
from repro.tlm import InitiatorSocket, Response, Transaction


class TestCpuModel:
    def test_library_members(self):
        assert "ARM7TDMI" in CPU_LIBRARY
        assert CPU_LIBRARY["ARM7TDMI"] is ARM7TDMI

    def test_cycle_ps(self):
        assert ARM7TDMI.cycle_ps == 20_000  # 50 MHz

    def test_cycles_for_mix(self):
        cpu = CpuModel("test", 100_000_000, cpi_overhead=1.0)
        cycles = cpu.cycles_for_mix({"alu": 10, "load": 2, "store": 1,
                                     "mul": 0, "div": 0, "branch": 0})
        assert cycles == 10 * 1 + 2 * 3 + 1 * 2

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            ARM7TDMI.cycles_for_mix({"quantum": 1})

    def test_scalar_ops_monotone(self):
        assert ARM7TDMI.cycles_for_ops(2000) > ARM7TDMI.cycles_for_ops(1000)

    def test_time_scales_with_frequency(self):
        t_slow = ARM7TDMI.time_ps_for_ops(10_000)
        t_fast = ARM9TDMI.time_ps_for_ops(10_000)
        assert t_fast < t_slow

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            CpuModel("bad", 0)

    def test_missing_op_class(self):
        with pytest.raises(ValueError):
            CpuModel("bad", 1_000_000, cycles_per_op={"alu": 1.0})


class TestMemory:
    def _setup(self):
        sim = Simulator()
        mem = Memory("ram", sim, base=0x1000, size_words=16, latency_ps=10_000)
        return sim, mem

    def test_preload_and_peek(self):
        __, mem = self._setup()
        mem.preload(0x1000, [1, 2, 3])
        assert mem.peek(0x1000, 3) == [1, 2, 3]
        assert mem.peek(0x100C) == [0]

    def test_unaligned_rejected(self):
        __, mem = self._setup()
        with pytest.raises(ValueError):
            mem.peek(0x1002)

    def test_out_of_range_rejected(self):
        __, mem = self._setup()
        with pytest.raises(ValueError):
            mem.preload(0x1040, [1])

    def test_write_then_read_via_transport(self):
        sim, mem = self._setup()
        log = []

        def master():
            w = Transaction.write(0x1004, [7, 8], origin="cpu")
            yield from mem.transport(w)
            r = Transaction.read(0x1004, burst_len=2, origin="cpu")
            yield from mem.transport(r)
            log.append((w.response, r.response, r.data, sim.now_ps))

        sim.spawn("m", master())
        sim.run()
        response_w, response_r, data, t = log[0]
        assert response_w is Response.OK and response_r is Response.OK
        assert data == [7, 8]
        assert t == 4 * 10_000  # 2 writes + 2 reads, latency per beat
        assert mem.uninitialized_reads == []

    def test_uninitialized_read_recorded(self):
        sim, mem = self._setup()

        def master():
            r = Transaction.read(0x1008, origin="dut")
            yield from mem.transport(r)

        sim.spawn("m", master())
        sim.run()
        assert len(mem.uninitialized_reads) == 1
        assert mem.uninitialized_reads[0].address == 0x1008
        assert mem.uninitialized_reads[0].origin == "dut"
        assert mem.stats()["uninitialized_reads"] == 1

    def test_readonly_memory_rejects_writes(self):
        sim = Simulator()
        mem = Memory("flash", sim, base=0, size_words=4, readonly=True)

        def master():
            txn = Transaction.write(0, [1])
            yield from mem.transport(txn)
            assert txn.response is Response.SLAVE_ERROR

        sim.spawn("m", master())
        sim.run()

    def test_out_of_range_transport_is_slave_error(self):
        sim, mem = self._setup()

        def master():
            txn = Transaction.read(0x2000)
            result = yield from mem.transport(txn)
            assert result.response is Response.SLAVE_ERROR

        sim.spawn("m", master())
        sim.run()


class TestBus:
    def _setup(self):
        sim = Simulator()
        bus = Bus("amba", sim, frequency_hz=50_000_000)
        ram = Memory("ram", sim, base=0x1000, size_words=64, latency_ps=0)
        bus.attach("ram", 0x1000, 256, ram)
        return sim, bus, ram

    def test_transport_timing(self):
        sim, bus, __ = self._setup()
        socket = InitiatorSocket("cpu")
        socket.bind(bus)
        done = []

        def master():
            txn = Transaction.write(0x1000, [1, 2, 3, 4], origin="cpu")
            yield from socket.transport(txn)
            done.append(sim.now_ps)

        sim.spawn("m", master())
        sim.run()
        # 1 arb + 1 addr + 4 data beats at 20ns each
        assert done == [6 * 20_000]

    def test_decode_error(self):
        sim, bus, __ = self._setup()
        socket = InitiatorSocket("cpu")
        socket.bind(bus)
        responses = []

        def master():
            txn = Transaction.read(0xDEAD0000)
            yield from socket.transport(txn)
            responses.append(txn.response)

        sim.spawn("m", master())
        sim.run()
        assert responses == [Response.DECODE_ERROR]
        assert bus.stats.decode_errors == 1

    def test_arbitration_serialises_masters(self):
        sim, bus, __ = self._setup()
        times = []

        def master(name):
            socket = InitiatorSocket(name)
            socket.bind(bus)
            txn = Transaction.write(0x1000, [0] * 8, origin=name)
            yield from socket.transport(txn)
            times.append((name, sim.now_ps))

        sim.spawn("a", master("a"))
        sim.spawn("b", master("b"))
        sim.run()
        # Each txn occupies 10 cycles = 200ns; second finishes at 400ns.
        finish_times = sorted(t for __, t in times)
        assert finish_times == [200_000, 400_000]
        assert bus.stats.wait_ps_total > 0

    def test_traffic_accounting(self):
        sim, bus, __ = self._setup()
        socket = InitiatorSocket("cpu")
        socket.bind(bus)

        def master():
            yield from socket.transport(
                Transaction.write(0x1000, [0] * 4, origin="cpu", kind="data"))
            yield from socket.transport(
                Transaction.read(0x1010, burst_len=2, origin="fpga",
                                 kind="bitstream"))

        sim.spawn("m", master())
        sim.run()
        report = bus.loading_report()
        assert report["words"] == 6
        assert report["words_by_origin"] == {"cpu": 4, "fpga": 2}
        assert report["words_by_kind"] == {"data": 4, "bitstream": 2}
        assert 0 < report["utilization"] <= 1

    def test_overlapping_slaves_rejected(self):
        sim = Simulator()
        bus = Bus("b", sim)
        ram = Memory("ram", sim, base=0, size_words=16)
        bus.attach("ram", 0, 64, ram)
        with pytest.raises(Exception):
            bus.attach("ram2", 32, 64, ram)

    def test_attach_requires_transport(self):
        sim = Simulator()
        bus = Bus("b", sim)
        with pytest.raises(TypeError):
            bus.attach("x", 0, 16, object())
