"""Tests for the application task-graph abstraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.taskgraph import AppGraph, ChannelSpec, GraphError, TaskSpec


def make_chain(lengths=(3,)):
    """A simple source -> stage... -> sink chain graph."""
    graph = AppGraph("chain")
    graph.add_task(TaskSpec(
        "SRC", lambda s, i: {"c0": i["__stimulus__"]}, writes=("c0",),
    ))
    graph.add_task(TaskSpec(
        "MID", lambda s, i: {"c1": i["c0"] * 2}, reads=("c0",), writes=("c1",),
    ))
    graph.add_task(TaskSpec(
        "SINK", lambda s, i: {"__result__": i["c1"] + 1}, reads=("c1",),
    ))
    graph.add_channel(ChannelSpec("c0", "SRC", "MID"))
    graph.add_channel(ChannelSpec("c1", "MID", "SINK"))
    return graph


class TestConstruction:
    def test_duplicate_task_rejected(self):
        graph = AppGraph("g")
        graph.add_task(TaskSpec("A", lambda s, i: {}))
        with pytest.raises(GraphError):
            graph.add_task(TaskSpec("A", lambda s, i: {}))

    def test_duplicate_channel_rejected(self):
        graph = make_chain()
        with pytest.raises(GraphError):
            graph.add_channel(ChannelSpec("c0", "SRC", "MID"))

    def test_channel_spec_validation(self):
        with pytest.raises(GraphError):
            ChannelSpec("c", "a", "b", words_per_token=0)
        with pytest.raises(GraphError):
            ChannelSpec("c", "a", "b", capacity=0)

    def test_validate_unknown_endpoint(self):
        graph = AppGraph("g")
        graph.add_task(TaskSpec("A", lambda s, i: {"c": 1}, writes=("c",)))
        graph.add_channel(ChannelSpec("c", "A", "MISSING"))
        with pytest.raises(GraphError):
            graph.validate()

    def test_validate_undeclared_read(self):
        graph = AppGraph("g")
        graph.add_task(TaskSpec("A", lambda s, i: {"c": 1}, writes=("c",)))
        graph.add_task(TaskSpec("B", lambda s, i: {}))  # does not declare read
        graph.add_channel(ChannelSpec("c", "A", "B"))
        with pytest.raises(GraphError):
            graph.validate()

    def test_valid_chain_passes(self):
        make_chain().validate()


class TestQueries:
    def test_sources_and_sinks(self):
        graph = make_chain()
        assert [t.name for t in graph.sources()] == ["SRC"]
        assert [t.name for t in graph.sinks()] == ["SINK"]

    def test_topological_order(self):
        graph = make_chain()
        assert graph.topological_order() == ["SRC", "MID", "SINK"]

    def test_cycle_rejected_in_schedule(self):
        graph = AppGraph("cyc")
        graph.add_task(TaskSpec("A", lambda s, i: {"ab": 1},
                                reads=("ba",), writes=("ab",)))
        graph.add_task(TaskSpec("B", lambda s, i: {"ba": 1},
                                reads=("ab",), writes=("ba",)))
        graph.add_channel(ChannelSpec("ab", "A", "B"))
        graph.add_channel(ChannelSpec("ba", "B", "A"))
        with pytest.raises(GraphError):
            graph.topological_order()

    def test_neighbours(self):
        graph = make_chain()
        assert graph.predecessors("MID") == ["SRC"]
        assert graph.successors("MID") == ["SINK"]
        assert graph.channels_between("SRC", "MID")[0].name == "c0"
        assert [c.name for c in graph.in_channels("MID")] == ["c0"]
        assert [c.name for c in graph.out_channels("MID")] == ["c1"]

    def test_to_networkx(self):
        nxg = make_chain().to_networkx()
        assert set(nxg.nodes) == {"SRC", "MID", "SINK"}
        assert nxg.number_of_edges() == 2


class TestFunctionalRun:
    def test_results_and_trace(self):
        graph = make_chain()
        trace = []
        results = graph.run_functional({"SRC": [1, 2, 3]}, trace=trace)
        assert results["SINK"] == [3, 5, 7]
        channels = {c for __, __, c, __ in trace}
        assert channels == {"c0", "c1"}

    def test_missing_stimuli_rejected(self):
        graph = make_chain()
        with pytest.raises(GraphError):
            graph.run_functional({})

    def test_wrong_output_channels_rejected(self):
        graph = AppGraph("bad")
        graph.add_task(TaskSpec("A", lambda s, i: {"wrong": 1}, writes=("c",)))
        graph.add_task(TaskSpec("B", lambda s, i: {}, reads=("c",)))
        graph.add_channel(ChannelSpec("c", "A", "B"))
        with pytest.raises(GraphError):
            graph.run_functional({"A": [1]})

    def test_state_persists_across_firings(self):
        graph = AppGraph("stateful")

        def accumulate(state, inputs):
            state["sum"] = state.get("sum", 0) + inputs["__stimulus__"]
            return {"c": state["sum"]}

        graph.add_task(TaskSpec("ACC", accumulate, writes=("c",)))
        graph.add_task(TaskSpec("OUT", lambda s, i: {"__result__": i["c"]},
                                reads=("c",)))
        graph.add_channel(ChannelSpec("c", "ACC", "OUT"))
        results = graph.run_functional({"ACC": [1, 2, 3]})
        assert results["OUT"] == [1, 3, 6]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=30))
    def test_chain_matches_direct_computation(self, stimuli):
        """Property: graph execution == composing the stage functions."""
        graph = make_chain()
        results = graph.run_functional({"SRC": stimuli})
        assert results["SINK"] == [x * 2 + 1 for x in stimuli]


class TestFire:
    def test_sink_result_channel_allowed(self):
        spec = TaskSpec("S", lambda s, i: {"__result__": 5})
        assert spec.fire({}, {})["__result__"] == 5

    def test_ops_floor(self):
        spec = TaskSpec("S", lambda s, i: {}, ops_fn=lambda i: 0)
        assert spec.ops({}) == 1
