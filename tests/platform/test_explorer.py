"""Tests for architecture exploration."""

import pytest

from repro.facerec import FacerecConfig, build_graph
from repro.facerec.camera import CameraConfig, FaceSampler
from repro.platform import Explorer, Partition, profile_graph

CFG = FacerecConfig(identities=2, poses=2, size=32)


@pytest.fixture(scope="module")
def setup():
    graph = build_graph(CFG)
    sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=1.0))
    frames = sampler.frames([(0, 0)])
    profile = profile_graph(graph, {"CAMERA": frames})
    return graph, frames, profile


class TestCandidates:
    def test_default_candidates_start_all_sw(self, setup):
        graph, __, profile = setup
        explorer = Explorer(graph, profile)
        candidates = explorer.candidates(max_hw=3)
        assert candidates[0][0] == "all-sw"
        assert len(candidates) == 4  # all-sw + top1..top3

    def test_candidates_keep_sinks_sw(self, setup):
        graph, __, profile = setup
        explorer = Explorer(graph, profile)
        for __, partition in explorer.candidates():
            assert partition.side("WINNER").value == "sw"

    def test_candidates_follow_ranking(self, setup):
        graph, __, profile = setup
        explorer = Explorer(graph, profile)
        label, partition = explorer.candidates(max_hw=1)[1]
        assert label == "hw-top1"
        assert partition.hw_tasks == {profile.heaviest(1)[0]}


class TestExploration:
    def test_explore_ranks_by_objective(self, setup):
        graph, frames, profile = setup
        explorer = Explorer(graph, profile)
        result = explorer.explore({"CAMERA": frames}, max_hw=3)
        assert len(result.scores) == 4
        objectives = [s.objective for s in result.scores]
        assert objectives == sorted(objectives)
        assert result.best is result.scores[0]

    def test_hw_candidates_beat_all_sw_on_latency(self, setup):
        graph, frames, profile = setup
        explorer = Explorer(graph, profile)
        result = explorer.explore({"CAMERA": frames}, max_hw=4)
        by_label = {s.label: s for s in result.scores}
        assert (by_label["hw-top4"].metrics.frame_latency_ps
                < by_label["all-sw"].metrics.frame_latency_ps)

    def test_custom_candidates(self, setup):
        graph, frames, profile = setup
        explorer = Explorer(graph, profile)
        custom = [("mine", Partition.all_sw(graph))]
        result = explorer.explore({"CAMERA": frames}, candidates=custom)
        assert [s.label for s in result.scores] == ["mine"]

    def test_describe(self, setup):
        graph, frames, profile = setup
        explorer = Explorer(graph, profile)
        result = explorer.explore({"CAMERA": frames}, max_hw=1)
        text = result.describe()
        assert "all-sw" in text and "objective" in text

    def test_empty_result_best_raises(self):
        from repro.platform.explorer import ExplorationResult
        with pytest.raises(ValueError):
            ExplorationResult([]).best

    def test_weights_change_ranking_weighting(self, setup):
        graph, frames, profile = setup
        latency_first = Explorer(graph, profile,
                                 weights={"latency": 3.0, "area": 0.0})
        area_first = Explorer(graph, profile,
                              weights={"latency": 0.0, "area": 3.0,
                                       "energy": 0.0, "bus": 0.0})
        r_lat = latency_first.explore({"CAMERA": frames}, max_hw=4)
        r_area = area_first.explore({"CAMERA": frames}, max_hw=4)
        # Area-dominated objective must prefer the zero-gate all-SW design.
        assert r_area.best.label == "all-sw"
        # Latency-dominated objective must not.
        assert r_lat.best.label != "all-sw"
