"""Tests for partitions, the transformations and the timed architecture."""

import pytest

from repro.facerec import FacerecConfig, build_graph, case_study_partition
from repro.facerec.camera import CameraConfig, FaceSampler
from repro.facerec.tracing import Trace, compare_traces
from repro.platform import (
    ARM7TDMI,
    Partition,
    PartitionError,
    Side,
    profile_graph,
    transformation1,
    transformation2,
)

CFG = FacerecConfig(identities=3, poses=2, size=32)


@pytest.fixture(scope="module")
def workload():
    graph = build_graph(CFG)
    sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=1.0))
    frames = sampler.frames([(0, 0), (1, 1)])
    profile = profile_graph(graph, {"CAMERA": frames})
    return graph, frames, profile


class TestPartition:
    def test_all_sw_all_hw(self, workload):
        graph, __, __ = workload
        sw = Partition.all_sw(graph)
        hw = Partition.all_hw(graph)
        assert not sw.hw_tasks
        assert not hw.sw_tasks
        assert sw.crossing_channels() == []

    def test_incomplete_assignment_rejected(self, workload):
        graph, __, __ = workload
        with pytest.raises(PartitionError):
            Partition(graph, {"CAMERA": Side.HW})

    def test_fpga_subset_of_hw(self, workload):
        graph, __, __ = workload
        assignment = {t: Side.SW for t in graph.tasks}
        with pytest.raises(PartitionError):
            Partition(graph, assignment, fpga_tasks={"CAMERA"})

    def test_from_heaviest(self, workload):
        graph, __, profile = workload
        partition = Partition.from_heaviest(graph, profile, 3)
        assert partition.hw_tasks == set(profile.heaviest(3))

    def test_crossing_channels(self, workload):
        graph, __, __ = workload
        partition = case_study_partition(graph)
        crossing = partition.crossing_channels()
        # EDGE (HW) -> ELLIPSE (SW) crosses; BAY->EROSION (HW->HW) does not.
        assert "c_edges" in crossing
        assert "c_gray" not in crossing

    def test_moved_returns_new_partition(self, workload):
        graph, __, __ = workload
        partition = case_study_partition(graph)
        moved = partition.moved("ELLIPSE", Side.HW)
        assert partition.side("ELLIPSE") is Side.SW
        assert moved.side("ELLIPSE") is Side.HW

    def test_moved_to_sw_clears_fpga(self, workload):
        graph, __, __ = workload
        partition = case_study_partition(graph, with_fpga=True)
        moved = partition.moved("ROOT", Side.SW)
        assert "ROOT" not in moved.fpga_tasks

    def test_gate_count(self, workload):
        graph, __, __ = workload
        assert Partition.all_hw(graph).hw_gate_count() == sum(
            t.gate_count for t in graph.tasks.values()
        )
        assert Partition.all_sw(graph).hw_gate_count() == 0

    def test_describe(self, workload):
        graph, __, __ = workload
        text = case_study_partition(graph, with_fpga=True).describe()
        assert "fpga" in text and "crossing" in text


class TestArchitecture:
    def test_all_sw_runs_and_matches_functional(self, workload):
        graph, frames, profile = workload
        partition = Partition.all_sw(graph)
        arch = transformation1(partition, profile)
        metrics = arch.run({"CAMERA": frames})
        functional = graph.run_functional({"CAMERA": frames})
        assert metrics.results["WINNER"] == functional["WINNER"]
        assert metrics.elapsed_ps > 0
        assert metrics.cpu_cycles > 0

    def test_case_study_partition_runs(self, workload):
        graph, frames, profile = workload
        partition = case_study_partition(graph)
        arch = transformation1(partition, profile)
        metrics = arch.run({"CAMERA": frames})
        functional = graph.run_functional({"CAMERA": frames})
        assert metrics.results["WINNER"] == functional["WINNER"]
        assert metrics.bus_report["words"] > 0
        assert metrics.hw_ops > 0

    def test_hw_partition_faster_than_all_sw(self, workload):
        graph, frames, profile = workload
        all_sw = transformation1(Partition.all_sw(graph), profile)
        case = transformation1(case_study_partition(graph), profile)
        t_sw = all_sw.run({"CAMERA": frames}).elapsed_ps
        t_hw = case.run({"CAMERA": frames}).elapsed_ps
        assert t_hw < t_sw

    def test_trace_consistent_with_functional(self, workload):
        graph, frames, profile = workload
        arch = transformation1(case_study_partition(graph), profile)
        metrics = arch.run({"CAMERA": frames})
        functional_trace = []
        graph.run_functional({"CAMERA": frames}, trace=functional_trace)
        mismatches = compare_traces(
            Trace.from_events("arch", metrics.trace),
            Trace.from_events("functional", functional_trace),
        )
        assert mismatches == []

    def test_hw_sink_rejected(self, workload):
        graph, frames, profile = workload
        partition = Partition.all_sw(graph).moved("WINNER", Side.HW)
        arch = transformation1(partition, profile)
        with pytest.raises(ValueError, match="sink"):
            arch.run({"CAMERA": frames})

    def test_fpga_partition_without_plan_rejected(self, workload):
        graph, __, profile = workload
        partition = case_study_partition(graph, with_fpga=True)
        with pytest.raises(ValueError, match="FpgaPlan"):
            transformation1(partition, profile)

    def test_metrics_properties(self, workload):
        graph, frames, profile = workload
        arch = transformation1(case_study_partition(graph), profile)
        metrics = arch.run({"CAMERA": frames})
        assert metrics.frame_latency_ps == metrics.elapsed_ps / len(frames)
        assert metrics.sim_speed_hz(ARM7TDMI.cycle_ps) > 0
        assert metrics.energy_nj() > 0

    def test_transformation2_moves_and_rebuilds(self, workload):
        graph, frames, profile = workload
        partition = case_study_partition(graph)
        moved, arch = transformation2(partition, "ELLIPSE", Side.HW, profile)
        assert moved.side("ELLIPSE") is Side.HW
        metrics = arch.run({"CAMERA": frames})
        functional = graph.run_functional({"CAMERA": frames})
        assert metrics.results["WINNER"] == functional["WINNER"]
