"""Tests for the ATPG (Laerte++) subsystem."""

import pytest

from repro.swir import (
    BinOp,
    Const,
    FunctionBuilder,
    Interpreter,
    ProgramBuilder,
    Var,
)
from repro.verify.atpg import (
    GaConfig,
    GeneticGenerator,
    Laerte,
    SatTpg,
    enumerate_faults,
    measure_coverage,
    simulate_fault,
)
from repro.verify.atpg.coverage import coverage_totals
from repro.verify.atpg.faults import fault_coverage


def simple_program():
    """max(x, y) with a multiply on one path."""
    fb = FunctionBuilder("main", ["x", "y"])
    with fb.if_else(BinOp(">", Var("x"), Var("y"))) as orelse:
        fb.assign("r", Var("x"))
    with orelse():
        fb.assign("r", BinOp("*", Var("y"), Const(2)))
    fb.ret(Var("r"))
    return ProgramBuilder().add(fb).build()


def hard_branch_program():
    """Branch requiring x * 5 - y == 12345 (hard for random/GA)."""
    fb = FunctionBuilder("main", ["x", "y"])
    fb.assign("r", Const(0))
    with fb.if_(BinOp("==", BinOp("-", BinOp("*", Var("x"), Const(5)),
                                 Var("y")), Const(12345))):
        fb.assign("r", Const(1))
    fb.ret(Var("r"))
    return ProgramBuilder().add(fb).build()


class TestCoverage:
    def test_totals_enumeration(self):
        totals = coverage_totals(simple_program())
        assert len(totals.branches) == 2  # one decision, two outcomes
        assert len(totals.conditions) == 2
        assert len(totals.statements) == 4

    def test_measure_over_vectors(self):
        prog = simple_program()
        interp = Interpreter(prog)
        report = measure_coverage(interp, [[5, 1]])
        assert report.statement_coverage < 1.0  # else branch untouched
        report_full = measure_coverage(interp, [[5, 1], [1, 5]])
        assert report_full.statement_coverage == 1.0
        assert report_full.branch_coverage == 1.0

    def test_describe(self):
        prog = simple_program()
        report = measure_coverage(Interpreter(prog), [[1, 2]])
        assert "statement" in report.describe()

    def test_uncovered_branches_listing(self):
        prog = simple_program()
        report = measure_coverage(Interpreter(prog), [[5, 1]])
        uncovered = report.uncovered_branches()
        assert len(uncovered) == 1
        assert uncovered[0][1] is False


class TestFaults:
    def test_enumeration_counts(self):
        prog = simple_program()
        faults = enumerate_faults(prog, bit_width=4)
        # Two assignments x 4 bits x 2 polarities.
        assert len(faults) == 16

    def test_detectable_fault(self):
        prog = simple_program()
        interp = Interpreter(prog)
        faults = enumerate_faults(prog, bit_width=4)
        # Vector [9, 1]: takes then-branch, r = 9 (0b1001): bit0 stuck-0
        # changes the output.
        target = next(f for f in faults if f.bit == 0 and f.stuck == 0)
        result = simulate_fault(interp, target, [[9, 1]])
        assert result.detected

    def test_undetectable_without_propagation(self):
        prog = simple_program()
        interp = Interpreter(prog)
        faults = enumerate_faults(prog, bit_width=4)
        # Fault on the else-branch assignment is invisible to a
        # then-branch-only test set.
        else_sid = prog.main.body[0].else_body[0].sid
        fault = next(f for f in faults if f.sid == else_sid)
        result = simulate_fault(interp, fault, [[9, 1]])
        assert not result.detected

    def test_fault_coverage_improves_with_vectors(self):
        prog = simple_program()
        interp = Interpreter(prog)
        faults = enumerate_faults(prog, bit_width=4)
        __, cov_one = fault_coverage(interp, faults, [[9, 1]])
        __, cov_two = fault_coverage(interp, faults, [[9, 1], [1, 9]])
        assert cov_two > cov_one

    def test_no_vectors_zero_coverage(self):
        prog = simple_program()
        interp = Interpreter(prog)
        faults = enumerate_faults(prog, bit_width=2)
        __, cov = fault_coverage(interp, faults, [])
        assert cov == 0.0


class TestGenetic:
    def test_reaches_full_branch_coverage_on_simple(self):
        prog = simple_program()
        ga = GeneticGenerator(Interpreter(prog),
                              GaConfig(population=10, generations=10, seed=3))
        vectors = ga.run()
        report = measure_coverage(Interpreter(prog), vectors)
        assert report.branch_coverage == 1.0

    def test_selected_vectors_all_add_coverage(self):
        prog = simple_program()
        ga = GeneticGenerator(Interpreter(prog))
        vectors = ga.run()
        assert 1 <= len(vectors) <= 4

    def test_parameterless_program(self):
        fb = FunctionBuilder("main", [])
        fb.assign("x", Const(1))
        fb.ret(Var("x"))
        prog = ProgramBuilder().add(fb).build()
        ga = GeneticGenerator(Interpreter(prog))
        assert ga.run() == [[]]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GaConfig(population=1)
        with pytest.raises(ValueError):
            GaConfig(mutation_rate=2.0)
        with pytest.raises(ValueError):
            GaConfig(value_min=10, value_max=0)


class TestSatTpg:
    def test_hits_hard_branch(self):
        prog = hard_branch_program()
        branch_sid = prog.main.body[1].sid
        tpg = SatTpg(prog)
        vector = tpg.generate_for_branch(branch_sid, True)
        assert vector is not None
        x, y = vector
        assert x * 5 - y == 12345

    def test_infeasible_branch_returns_none(self):
        fb = FunctionBuilder("main", ["x"])
        with fb.if_(BinOp("!=", BinOp("-", Var("x"), Var("x")), Const(0))):
            fb.assign("dead", Const(1))
        fb.ret(Const(0))
        prog = ProgramBuilder().add(fb).build()
        branch_sid = prog.main.body[0].sid
        assert SatTpg(prog).generate_for_branch(branch_sid, True) is None

    def test_loop_dependent_branch(self):
        """Branch on a value accumulated by a loop (needs unrolling)."""
        fb = FunctionBuilder("main", ["n"])
        fb.assign("acc", Const(0))
        fb.assign("i", Const(0))
        with fb.while_(BinOp("<", Var("i"), Var("n"))):
            fb.assign("acc", BinOp("+", Var("acc"), Const(3)))
            fb.assign("i", BinOp("+", Var("i"), Const(1)))
        with fb.if_(BinOp("==", Var("acc"), Const(9))):
            fb.assign("hit", Const(1))
        fb.ret(Const(0))
        prog = ProgramBuilder().add(fb).build()
        branch_sid = prog.main.body[3].sid
        vector = SatTpg(prog).generate_for_branch(branch_sid, True)
        assert vector == [3]


class TestLaerteCampaign:
    def test_full_campaign_on_hard_program(self):
        campaign = Laerte(hard_branch_program(), random_vectors=8).run()
        assert campaign.coverage.branch_coverage == 1.0
        assert campaign.sat_vectors >= 1
        assert "Laerte" in campaign.describe()

    def test_memory_inspection(self):
        fb = FunctionBuilder("main", ["x"])
        with fb.if_(BinOp(">", Var("x"), Const(0))):
            fb.assign("buf", Const(1))
        fb.ret(BinOp("+", Var("x"), Var("buf")))  # buf may be uninitialised
        prog = ProgramBuilder().add(fb).build()
        campaign = Laerte(prog).run()
        assert "buf" in campaign.coverage.uninitialized_reads
        assert "memory inspection" in campaign.describe()

    def test_bit_coverage_reported(self):
        campaign = Laerte(simple_program()).run()
        assert campaign.coverage.bit_faults_total > 0
        assert 0 < campaign.coverage.bit_coverage <= 1.0
