"""Tests for LPV: Petri nets, LP reachability, deadlock, real-time."""

import pytest

from repro.facerec import FacerecConfig, build_graph
from repro.platform import ARM7TDMI, TimingAnnotator, profile_graph
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.verify.lpv import (
    PetriError,
    PetriNet,
    check_deadline,
    check_deadlock_freedom,
    check_submarking_unreachable,
    graph_to_petri,
    place_invariants,
    size_fifos,
)
from repro.verify.lpv.reach import ReachVerdict, invariant_token_count


def simple_net():
    """p0 -(t0)-> p1 -(t1)-> p2, one token at p0."""
    net = PetriNet("line")
    net.add_place("p0", 1)
    net.add_place("p1", 0)
    net.add_place("p2", 0)
    net.add_transition("t0")
    net.add_transition("t1")
    net.add_arc("p0", "t0")
    net.add_arc("t0", "p1")
    net.add_arc("p1", "t1")
    net.add_arc("t1", "p2")
    return net


def credit_graph():
    graph = AppGraph("credit")
    graph.add_task(TaskSpec("A", lambda s, i: {"data": 1},
                            reads=("credit",), writes=("data",)))
    graph.add_task(TaskSpec("B", lambda s, i: {"credit": 1},
                            reads=("data",), writes=("credit",)))
    graph.add_channel(ChannelSpec("data", "A", "B", 1, capacity=1))
    graph.add_channel(ChannelSpec("credit", "B", "A", 1, capacity=1))
    return graph


class TestPetriNet:
    def test_construction_validation(self):
        net = PetriNet("n")
        net.add_place("p", 1)
        with pytest.raises(PetriError):
            net.add_place("p")
        with pytest.raises(PetriError):
            net.add_place("q", tokens=-1)
        net.add_transition("t")
        with pytest.raises(PetriError):
            net.add_transition("t")
        with pytest.raises(PetriError):
            net.add_arc("p", "p")

    def test_token_game(self):
        net = simple_net()
        marking = dict(net.initial_marking)
        assert net.enabled(marking, "t0")
        assert not net.enabled(marking, "t1")
        marking = net.fire(marking, "t0")
        assert marking["p0"] == 0 and marking["p1"] == 1
        with pytest.raises(PetriError):
            net.fire(marking, "t0")
        marking = net.fire(marking, "t1")
        assert net.is_dead(marking)

    def test_incidence_matrix(self):
        net = simple_net()
        c = net.incidence_matrix()
        pi, ti = net.place_index(), net.transition_index()
        assert c[pi["p0"], ti["t0"]] == -1
        assert c[pi["p1"], ti["t0"]] == 1
        assert c[pi["p1"], ti["t1"]] == -1

    def test_run_greedy_terminates(self):
        net = simple_net()
        final, fired = net.run_greedy()
        assert fired == 2
        assert final["p2"] == 1


class TestReachability:
    def test_unreachable_proved(self):
        net = simple_net()
        # Two tokens anywhere is impossible: total tokens invariant = 1.
        result = check_submarking_unreachable(net, [("p2", ">=", 2)])
        assert result.proven_unreachable

    def test_reachable_is_inconclusive_but_flagged(self):
        net = simple_net()
        result = check_submarking_unreachable(net, [("p2", "==", 1)])
        assert result.verdict is ReachVerdict.POSSIBLY_REACHABLE
        assert result.sigma  # firing count witness present

    def test_bad_constraint_rejected(self):
        net = simple_net()
        with pytest.raises(ValueError):
            check_submarking_unreachable(net, [("p0", "~", 1)])
        with pytest.raises(ValueError):
            check_submarking_unreachable(net, [("nope", "==", 0)])

    def test_place_invariants_of_line(self):
        net = simple_net()
        invariants = place_invariants(net)
        # p0 + p1 + p2 is conserved.
        assert any(
            set(inv) == {"p0", "p1", "p2"} and set(inv.values()) == {1}
            for inv in invariants
        )
        for inv in invariants:
            assert invariant_token_count(net, inv) >= 0

    def test_channel_invariants_in_translated_net(self):
        graph = credit_graph()
        net = graph_to_petri(graph, initial_tokens={"credit": 1})
        invariants = place_invariants(net)
        assert any(
            set(inv) == {"data.data", "data.free"} for inv in invariants
        )


class TestTranslation:
    def test_structure(self):
        graph = credit_graph()
        net = graph_to_petri(graph, initial_tokens={"credit": 1})
        assert set(net.transitions) == {"A", "B"}
        assert "data.data" in net.places and "credit.free" in net.places
        assert net.initial_marking["credit.data"] == 1
        assert net.initial_marking["credit.free"] == 0

    def test_overfull_initial_tokens_rejected(self):
        graph = credit_graph()
        with pytest.raises(ValueError):
            graph_to_petri(graph, initial_tokens={"credit": 5})

    def test_source_gets_run_place(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        net = graph_to_petri(graph)
        assert "CAMERA.run" in net.places
        net_finite = graph_to_petri(graph, unbounded_sources=False)
        assert "CAMERA.run" not in net_finite.places

    def test_token_game_simulates_pipeline(self):
        graph = credit_graph()
        net = graph_to_petri(graph, initial_tokens={"credit": 1})
        final, fired = net.run_greedy(max_firings=10)
        assert fired == 10  # live: keeps cycling


class TestDeadlock:
    def test_seeded_deadlock_confirmed(self):
        net = graph_to_petri(credit_graph())  # no initial credit
        report = check_deadlock_freedom(net)
        assert not report.deadlock_free
        assert report.confirmed  # BFS found an actual dead marking

    def test_repaired_model_proved_free(self):
        net = graph_to_petri(credit_graph(), initial_tokens={"credit": 1})
        report = check_deadlock_freedom(net)
        assert report.deadlock_free
        assert report.lp_calls > 0
        assert "deadlock-free" in report.describe()

    def test_facerec_graph_deadlock_free(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        net = graph_to_petri(graph)
        report = check_deadlock_freedom(net, confirm=False)
        assert report.deadlock_free
        # LP pruning keeps the proof tractable.
        assert report.lp_calls < 1_000

    def test_sourceless_transition_shortcut(self):
        net = PetriNet("free")
        net.add_place("p", 0)
        net.add_transition("t")
        net.add_arc("t", "p")  # no inputs: always enabled
        report = check_deadlock_freedom(net)
        assert report.deadlock_free


class TestRealtime:
    @pytest.fixture(scope="class")
    def annotated(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        from repro.facerec.camera import CameraConfig, FaceSampler
        frames = FaceSampler(CameraConfig(size=32)).frames([(0, 0)])
        profile = profile_graph(graph, {"CAMERA": frames})
        annotations = TimingAnnotator(ARM7TDMI).annotate(
            graph, profile, set(graph.tasks), set())
        return graph, annotations

    def test_deadline_proof_and_violation(self, annotated):
        graph, annotations = annotated
        loose = check_deadline(graph, annotations, deadline_ps=10**13)
        assert loose.holds
        tight = check_deadline(graph, annotations, deadline_ps=1)
        assert not tight.holds
        assert loose.latency_ps == tight.latency_ps

    def test_critical_path_is_a_real_path(self, annotated):
        graph, annotations = annotated
        report = check_deadline(graph, annotations, deadline_ps=10**13)
        path = report.critical_path
        assert path[0] == "CAMERA"
        assert path[-1] == "WINNER"
        for src, dst in zip(path, path[1:]):
            assert graph.channels_between(src, dst)

    def test_latency_increases_with_transfer_cost(self, annotated):
        graph, annotations = annotated
        fast = check_deadline(graph, annotations, 10**13, transfer_ps_per_word=0)
        slow = check_deadline(graph, annotations, 10**13,
                              transfer_ps_per_word=50_000)
        assert slow.latency_ps > fast.latency_ps

    def test_fifo_sizing_bounds_hold_in_simulation(self, annotated):
        """LP capacities suffice: the untimed model respects them."""
        graph, annotations = annotated
        sizing = size_fifos(graph, annotations, transfer_ps_per_word=20_000)
        assert set(sizing.capacities) == set(graph.channels)
        assert all(cap >= 1 for cap in sizing.capacities.values())
        # The paper's point: LP dimensioning avoids over-allocation; all
        # single-rate chains here need small constant capacity.
        assert max(sizing.capacities.values()) <= 8

    def test_fifo_sizing_describe(self, annotated):
        graph, annotations = annotated
        sizing = size_fifos(graph, annotations)
        assert "capacity" in sizing.describe()
