"""Tests for LP structural place bounds."""

import pytest

from repro.facerec import FacerecConfig, build_graph
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.verify.lpv import channel_bounds, graph_to_petri, place_bound
from repro.verify.lpv.petri import PetriNet


def chain_graph(capacity=3):
    graph = AppGraph("chain")
    graph.add_task(TaskSpec("SRC", lambda s, i: {}, writes=("c",)))
    graph.add_task(TaskSpec("DST", lambda s, i: {}, reads=("c",)))
    graph.add_channel(ChannelSpec("c", "SRC", "DST", 1, capacity=capacity))
    return graph


class TestPlaceBound:
    def test_channel_bounded_by_capacity(self):
        net = graph_to_petri(chain_graph(capacity=3))
        bound = place_bound(net, "c.data")
        assert bound.bounded
        assert bound.bound == 3  # data + free invariant caps the channel

    def test_free_place_bound(self):
        net = graph_to_petri(chain_graph(capacity=5))
        assert place_bound(net, "c.free").bound == 5

    def test_unknown_place(self):
        net = graph_to_petri(chain_graph())
        with pytest.raises(ValueError):
            place_bound(net, "ghost")

    def test_unbounded_place_detected(self):
        # A source feeding a place nobody consumes: structurally unbounded.
        net = PetriNet("unbounded")
        net.add_place("run", 1)
        net.add_place("sink", 0)
        net.add_transition("t")
        net.add_arc("run", "t")
        net.add_arc("t", "run")
        net.add_arc("t", "sink")
        bound = place_bound(net, "sink")
        assert not bound.bounded

    def test_conserved_line_bound(self):
        # p0 -(t)-> p1 with one token: both places bounded by 1.
        net = PetriNet("line")
        net.add_place("p0", 1)
        net.add_place("p1", 0)
        net.add_transition("t")
        net.add_arc("p0", "t")
        net.add_arc("t", "p1")
        assert place_bound(net, "p1").bound == 1


class TestChannelBounds:
    def test_facerec_channels_all_bounded(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        net = graph_to_petri(graph)
        report = channel_bounds(net)
        assert report.all_bounded
        assert len(report.bounds) == len(graph.channels)
        # Every LP bound equals the declared capacity (data+free invariant).
        for chan in graph.channels.values():
            assert report.bounds[f"{chan.name}.data"].bound == chan.capacity

    def test_channel_filter(self):
        graph = build_graph(FacerecConfig(identities=2, poses=1, size=32))
        net = graph_to_petri(graph)
        report = channel_bounds(net, channels=["c_frame"])
        assert set(report.bounds) == {"c_frame.data"}

    def test_describe(self):
        net = graph_to_petri(chain_graph())
        text = channel_bounds(net).describe()
        assert "c.data" in text and "<=" in text
