"""Tests for incremental, assumption-based SAT solving.

Covers the solver-reuse contract documented in ``repro.verify.sat``:
assumptions never leak into the clause database, per-call stat and
budget resets, activation-literal clause groups, and the attached
(streaming) :class:`Cnf` mode -- plus hypothesis differentials pinning
every incremental answer against a fresh one-shot solver.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.cnf import BitVector, Cnf
from repro.verify.sat import SatResult, SatSolver


def fresh_verdict(clauses, assumptions=()):
    """One-shot reference: assumptions joined as unit clauses."""
    solver = SatSolver()
    for clause in clauses:
        solver.add_clause(clause)
    for lit in assumptions:
        solver.add_clause([lit])
    return solver.solve()


clause_batches = st.lists(
    st.lists(st.integers(min_value=1, max_value=8).flatmap(
        lambda v: st.sampled_from([v, -v])), min_size=1, max_size=4),
    min_size=1, max_size=30)


class TestAssumptions:
    def test_contradictory_assumptions_do_not_poison_solver(self):
        """Regression: pre-fix, an UNSAT-under-assumptions answer left
        the assumption as a level-0 fact and corrupted later calls."""
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        assert solver.solve(assumptions=[-2]) is SatResult.UNSAT
        # The same solver must still find the (2=True) model afterwards.
        assert solver.solve() is SatResult.SAT
        assert solver.model()[2] is True
        # And opposite assumptions on consecutive calls both work.
        assert solver.solve(assumptions=[2]) is SatResult.SAT
        assert solver.solve(assumptions=[-2]) is SatResult.UNSAT
        assert solver.solve(assumptions=[2]) is SatResult.SAT

    def test_assumption_respected_in_model(self):
        solver = SatSolver()
        solver.add_clause([1, 2, 3])
        assert solver.solve(assumptions=[-1, -2]) is SatResult.SAT
        model = solver.model()
        assert model[1] is False and model[2] is False and model[3] is True

    def test_learned_clauses_never_bake_in_assumptions(self):
        solver = SatSolver()
        # xor-ish chain so conflicts (and learning) actually happen
        for a, b in [(1, 2), (2, 3), (3, 4), (4, 5)]:
            solver.add_clause([-a, b])
        solver.add_clause([-5, -1])
        assert solver.solve(assumptions=[1]) is SatResult.UNSAT
        # 1=True is impossible, but without the assumption all is well.
        assert solver.solve() is SatResult.SAT
        assert solver.model()[1] is False

    @settings(max_examples=120, deadline=None)
    @given(clause_batches,
           st.lists(st.sampled_from([1, -1, 2, -2, 9, -9]),
                    min_size=0, max_size=3, unique_by=abs))
    def test_incremental_matches_oneshot(self, clauses, assumptions):
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        # Three queries on the same instance: the verdicts must each
        # match a fresh solver given the assumptions as units.
        assert solver.solve(assumptions) is fresh_verdict(clauses, assumptions)
        assert solver.solve() is fresh_verdict(clauses)
        assert solver.solve(assumptions) is fresh_verdict(clauses, assumptions)

    @settings(max_examples=60, deadline=None)
    @given(clause_batches, clause_batches)
    def test_clauses_added_between_solves(self, first, second):
        solver = SatSolver()
        for clause in first:
            solver.add_clause(clause)
        assert solver.solve() is fresh_verdict(first)
        for clause in second:
            solver.add_clause(clause)
        assert solver.solve() is fresh_verdict(first + second)


class TestActivationLiterals:
    def test_group_enable_and_retire(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        act = solver.new_var()
        solver.add_clause([-act, -1])
        solver.add_clause([-act, -2])  # group forces 1=2=False: conflict
        assert solver.solve(assumptions=[act]) is SatResult.UNSAT
        assert solver.solve() is SatResult.SAT  # group dormant
        solver.add_clause([-act])  # retire permanently
        assert solver.solve() is SatResult.SAT
        assert solver.model()[act] is False

    def test_two_groups_independent(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([-a, -1])
        solver.add_clause([-b, -2])
        assert solver.solve(assumptions=[a]) is SatResult.SAT
        assert solver.model()[2] is True
        assert solver.solve(assumptions=[b]) is SatResult.SAT
        assert solver.model()[1] is True
        assert solver.solve(assumptions=[a, b]) is SatResult.UNSAT


class TestPerCallResets:
    def test_stats_reset_per_call_and_accumulated(self):
        solver = SatSolver()
        for a, b in [(1, 2), (2, 3), (3, 1)]:
            solver.add_clause([-a, b])
        solver.add_clause([1, 2, 3])
        solver.solve()
        first = solver.stats.decisions + solver.stats.propagations
        solver.solve()
        assert solver.stats.decisions + solver.stats.propagations <= first
        total = solver.cumulative
        assert total.decisions >= solver.stats.decisions
        assert total.propagations >= solver.stats.propagations

    def test_budget_is_per_call_not_per_lifetime(self):
        """Regression: pre-fix, conflicts accumulated across calls and a
        reused solver could return UNKNOWN on a trivial later query."""
        solver = SatSolver(max_conflicts=5)
        # A formula guaranteed to burn a few conflicts.
        for a in (1, 2, 3):
            for b in (4, 5):
                solver.add_clause([-a, -b])
        solver.add_clause([1, 2, 3])
        solver.add_clause([4, 5])
        first = solver.solve()
        for __ in range(10):
            assert solver.solve() is first

    def test_max_conflicts_override_is_transient(self):
        solver = SatSolver(max_conflicts=2_000_000)
        for a, b in [(1, 2), (-1, 2), (1, -2), (-1, -2)]:
            solver.add_clause([a, b])
        assert solver.solve(max_conflicts=0) is SatResult.UNKNOWN
        assert solver.solve() is SatResult.UNSAT

    def test_empty_clause_is_permanent(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT
        assert solver.solve(assumptions=[1]) is SatResult.UNSAT


class TestAttachedCnf:
    def test_attached_streams_clauses(self):
        solver = SatSolver()
        cnf = Cnf(solver=solver)
        x = cnf.new_var()
        y = cnf.new_var()
        cnf.add_clause([x, y])
        assert len(solver.clauses) == len(cnf.clauses)
        result, model = cnf.solve(assumptions=[-x])
        assert result is SatResult.SAT
        assert model[y] is True

    def test_attached_matches_standalone(self):
        def build(cnf):
            a = BitVector.fresh(cnf, 4)
            b = BitVector.constant(cnf, 5, 4)
            cnf.assert_lit(a.add(b).eq(BitVector.constant(cnf, 11, 4)))
            return a

        plain = Cnf()
        a_plain = build(plain)
        attached = Cnf(solver=SatSolver())
        a_attached = build(attached)
        assert plain.clauses == attached.clauses
        rp, mp = plain.solve()
        ra, ma = attached.solve()
        assert rp is ra is SatResult.SAT
        assert a_plain.value_in(mp) == a_attached.value_in(ma) == 6

    def test_guard_scopes_clauses(self):
        cnf = Cnf(solver=SatSolver())
        x = cnf.new_var()
        act = cnf.new_var()
        with cnf.guard(act):
            cnf.add_clause([-x])
        cnf.add_clause([x])
        assert cnf.solve(assumptions=[act])[0] is SatResult.UNSAT
        assert cnf.solve()[0] is SatResult.SAT

    def test_guard_does_not_nest(self):
        cnf = Cnf(solver=SatSolver())
        with cnf.guard(cnf.new_var()):
            with pytest.raises(ValueError):
                cnf.guard(cnf.new_var()).__enter__()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                    min_size=1, max_size=6))
    def test_folded_gates_sound(self, pairs):
        """Folding (attached incremental mode) must preserve semantics:
        the folded encoding values every expression like the plain one."""
        plain, folded = Cnf(), Cnf(fold=True)
        plain_outs, folded_outs = [], []
        for cnf, outs in ((plain, plain_outs), (folded, folded_outs)):
            for a_val, b_val in pairs:
                a = BitVector.constant(cnf, a_val, 5)
                b = BitVector.constant(cnf, b_val, 5)
                outs.append([a.add(b), a.bit_and(b), a.ite(a.is_nonzero(), b)])
        rp, mp = plain.solve()
        rf, mf = folded.solve()
        assert rp is rf is SatResult.SAT
        for vp, vf in zip(plain_outs, folded_outs):
            for xp, xf in zip(vp, vf):
                assert xp.value_in(mp) == xf.value_in(mf)
