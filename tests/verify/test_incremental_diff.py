"""Differential suite: incremental vs one-shot formal back-ends.

The incremental BMC session (shared CNF, assumption-selected queries,
mutant diff cones) and the incremental PCC formal phase must produce
reports byte-identical (:func:`repro.serialize.documents_equal`) to the
original fresh-encode-per-query paths, which are kept as the reference
under ``incremental=False``.
"""

from repro.rtl.netlist import BinExpr, ConstExpr, MuxExpr, Netlist, SigExpr
from repro.serialize import documents_equal
from repro.verify.mc.bmc import BoundedModelChecker
from repro.verify.pcc import PropertyCoverageChecker, enumerate_mutations


def handshake_netlist():
    net = Netlist("ctrl")
    net.add_input("req", 1)
    st = net.add_register("st", 2, reset=0)
    cnt = net.add_register("cnt", 2, reset=0)

    def at(v):
        return BinExpr("==", st, ConstExpr(v, 2))

    nxt = MuxExpr(
        at(0), MuxExpr(SigExpr("req"), ConstExpr(1, 2), ConstExpr(0, 2)),
        MuxExpr(at(1),
                MuxExpr(BinExpr("==", cnt, ConstExpr(3, 2)),
                        ConstExpr(2, 2), ConstExpr(1, 2)),
                ConstExpr(0, 2)))
    net.set_next("st", nxt)
    net.set_next("cnt", MuxExpr(at(1), BinExpr("+", cnt, ConstExpr(1, 2)),
                                ConstExpr(0, 2)))
    net.add_wire("done", 1, at(2))
    net.add_wire("busy", 1, at(1))
    net.mark_output("done")
    net.mark_output("busy")
    net.validate()
    return net


PROPS = [
    [[("st", "<=", 2)]],
    [[("st", "!=", 1), ("busy", "==", 1)], [("st", "==", 1), ("busy", "==", 0)]],
    [[("st", "!=", 2), ("done", "==", 1)], [("st", "==", 2), ("done", "==", 0)]],
    [[("done", "!=", 1), ("cnt", "==", 0)]],
]


class TestBmcDifferential:
    def test_reports_match_oneshot_across_bounds(self):
        net = handshake_netlist()
        incremental = BoundedModelChecker(net)  # default: incremental
        oneshot = BoundedModelChecker(net, incremental=False)
        for clauses in PROPS:
            for bound in (1, 3, 5):
                a = incremental.check_invariant_clauses(clauses, bound)
                b = oneshot.check_invariant_clauses(clauses, bound)
                assert documents_equal(a.to_dict(), b.to_dict())

    def test_violated_property_matches_oneshot(self):
        net = handshake_netlist()
        bad = [[("busy", "==", 0)]]  # violated once st reaches 1
        a = BoundedModelChecker(net).check_invariant_clauses(bad, 4)
        b = BoundedModelChecker(net, incremental=False) \
            .check_invariant_clauses(bad, 4)
        assert a.violated and b.violated
        assert documents_equal(a.to_dict(), b.to_dict())
        # Both traces are genuine counter-examples.
        assert a.describe().startswith("BMC:")
        assert a.trace and b.trace

    def test_repeated_queries_are_stable(self):
        net = handshake_netlist()
        checker = BoundedModelChecker(net)
        first = checker.check_invariant_clauses(PROPS[0], 4).to_dict()
        for __ in range(3):
            again = checker.check_invariant_clauses(PROPS[0], 4).to_dict()
            assert documents_equal(first, again)


class TestPccDifferential:
    def test_reports_match_nonincremental(self):
        net = handshake_netlist()
        fast = PropertyCoverageChecker(net, PROPS, bound=5,
                                       mutation_limit=14).run()
        slow = PropertyCoverageChecker(net, PROPS, bound=5,
                                       mutation_limit=14,
                                       incremental=False).run()
        assert documents_equal(fast.to_dict(), slow.to_dict())
        assert fast.describe() == slow.describe()
        assert [v.killed_by for v in fast.verdicts] \
            == [v.killed_by for v in slow.verdicts]

    def test_pool_matches_serial(self):
        net = handshake_netlist()
        serial = PropertyCoverageChecker(net, PROPS, bound=5,
                                         mutation_limit=10).run()
        pooled = PropertyCoverageChecker(net, PROPS, bound=5,
                                         mutation_limit=10, jobs=2).run()
        assert documents_equal(serial.to_dict(), pooled.to_dict())
        assert [v.killed_by for v in serial.verdicts] \
            == [v.killed_by for v in pooled.verdicts]

    def test_explicit_mutation_list(self):
        net = handshake_netlist()
        mutations = enumerate_mutations(net, limit=8)
        fast = PropertyCoverageChecker(net, PROPS, bound=4) \
            .run(mutations=mutations)
        slow = PropertyCoverageChecker(net, PROPS, bound=4,
                                       incremental=False) \
            .run(mutations=mutations)
        assert documents_equal(fast.to_dict(), slow.to_dict())
