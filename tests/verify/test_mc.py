"""Tests for the model checker: Kripke structures, CTL, explicit, BMC."""

import pytest

from repro.rtl.netlist import BinExpr, ConstExpr, MuxExpr, Netlist, SigExpr
from repro.verify.mc import (
    AF,
    AG,
    AX,
    EF,
    EG,
    EX,
    And,
    BoundedModelChecker,
    ExplicitModelChecker,
    KripkeStructure,
    Not,
    Or,
    kripke_from_netlist,
    parse_atom,
)
from repro.verify.mc.ctl import AU, Implies, TRUE
from repro.verify.sat import SatResult


def counter_netlist(limit=3, width=2):
    """A saturating counter with reset input."""
    net = Netlist("counter")
    net.add_input("rst", 1)
    cnt = net.add_register("cnt", width, reset=0)
    at_limit = BinExpr("==", cnt, ConstExpr(limit, width))
    step = MuxExpr(at_limit, cnt, BinExpr("+", cnt, ConstExpr(1, width)))
    net.set_next("cnt", MuxExpr(SigExpr("rst"), ConstExpr(0, width), step))
    net.add_wire("saturated", 1, at_limit)
    net.mark_output("saturated")
    net.validate()
    return net


def tiny_kripke():
    """s0 -> s1 -> s2 -> s2 (self loop), s0 initial."""
    ks = KripkeStructure("tiny")
    ks.add_state("s0", {"v": 0}, initial=True)
    ks.add_state("s1", {"v": 1})
    ks.add_state("s2", {"v": 2})
    ks.add_transition("s0", "s1")
    ks.add_transition("s1", "s2")
    ks.add_transition("s2", "s2")
    return ks


class TestKripke:
    def test_validation_requires_initial(self):
        ks = KripkeStructure("bad")
        ks.add_state("s", {"v": 0})
        ks.add_transition("s", "s")
        with pytest.raises(ValueError):
            ks.validate()

    def test_validation_requires_total_relation(self):
        ks = KripkeStructure("bad")
        ks.add_state("s", {"v": 0}, initial=True)
        with pytest.raises(ValueError, match="successor"):
            ks.validate()

    def test_from_netlist_reachable_states(self):
        ks = kripke_from_netlist(counter_netlist())
        # States 0..3 reachable.
        assert ks.stats()["states"] == 4

    def test_from_netlist_respects_input_choices(self):
        # Holding reset low removes the way back to 0 from above.
        ks = kripke_from_netlist(counter_netlist(),
                                 input_values={"rst": [0]})
        mc = ExplicitModelChecker(ks)
        outcome = mc.check(AF(parse_atom("cnt == 3")))
        assert outcome.holds

    def test_state_limit(self):
        with pytest.raises(ValueError):
            kripke_from_netlist(counter_netlist(limit=3), max_states=2)


class TestAtoms:
    def test_parse_atom_forms(self):
        valuation = {"x": 5}
        assert parse_atom("x == 5").predicate(valuation)
        assert parse_atom("x != 4").predicate(valuation)
        assert parse_atom("x >= 5").predicate(valuation)
        assert not parse_atom("x < 5").predicate(valuation)

    def test_parse_atom_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_atom("x + 1 == 2")

    def test_unknown_signal_raises_at_eval(self):
        atom = parse_atom("ghost == 1")
        with pytest.raises(KeyError):
            atom.predicate({"x": 0})


class TestExplicitCtl:
    def test_boolean_connectives(self):
        mc = ExplicitModelChecker(tiny_kripke())
        v0 = parse_atom("v == 0")
        v2 = parse_atom("v == 2")
        assert mc.check(Or(v0, Not(v0))).holds
        assert not mc.check(And(v0, v2)).holds
        assert mc.check(Implies(v2, v2)).holds

    def test_temporal_operators(self):
        mc = ExplicitModelChecker(tiny_kripke())
        assert mc.check(EX(parse_atom("v == 1"))).holds
        assert mc.check(EF(parse_atom("v == 2"))).holds
        assert mc.check(AF(parse_atom("v == 2"))).holds
        assert not mc.check(EG(parse_atom("v == 0"))).holds
        assert mc.check(AX(parse_atom("v == 1"))).holds
        assert mc.check(AU(TRUE, parse_atom("v == 2"))).holds

    def test_eg_on_self_loop(self):
        mc = ExplicitModelChecker(tiny_kripke())
        assert mc.check(EF(EG(parse_atom("v == 2")))).holds

    def test_ag_counter_example_path(self):
        mc = ExplicitModelChecker(tiny_kripke())
        outcome = mc.check(AG(parse_atom("v != 2")))
        assert not outcome.holds
        assert outcome.counter_example is not None
        assert [s["v"] for s in outcome.counter_example] == [0, 1, 2]

    def test_netlist_properties(self):
        ks = kripke_from_netlist(counter_netlist())
        mc = ExplicitModelChecker(ks)
        assert mc.check(AG(parse_atom("cnt <= 3"))).holds
        assert mc.check(EF(parse_atom("saturated == 1"))).holds
        outcome = mc.check(AG(parse_atom("saturated == 0")))
        assert not outcome.holds

    def test_describe(self):
        mc = ExplicitModelChecker(tiny_kripke())
        text = mc.check(AG(parse_atom("v != 2"))).describe()
        assert "FAILED" in text and "counter-example" in text


class TestBmc:
    def test_invariant_holds(self):
        bmc = BoundedModelChecker(counter_netlist())
        result = bmc.check_invariant([("cnt", "<=", 3)], bound=6)
        assert result.holds_up_to_bound
        assert "holds" in result.describe()

    def test_violation_with_trace(self):
        bmc = BoundedModelChecker(counter_netlist())
        result = bmc.check_invariant([("cnt", "<=", 2)], bound=6)
        assert result.violated
        assert result.trace
        last = result.trace[-1]
        assert last["cnt"] == 3
        # The trace must be a genuine execution: replay it.
        net = counter_netlist()
        state = net.reset_state()
        for step in result.trace[:-1]:
            assert state["cnt"] == step["cnt"]
            state, __ = net.step(state, {"rst": step["rst"]})
        assert state["cnt"] == last["cnt"]

    def test_violation_needs_enough_bound(self):
        bmc = BoundedModelChecker(counter_netlist())
        # cnt reaches 3 only after 3 steps.
        ok = bmc.check_invariant([("cnt", "<=", 2)], bound=2)
        assert not ok.violated
        bad = bmc.check_invariant([("cnt", "<=", 2)], bound=3)
        assert bad.violated

    def test_clause_invariant_implication(self):
        bmc = BoundedModelChecker(counter_netlist())
        # saturated == 1 -> cnt == 3  (true)
        good = bmc.check_invariant_clauses(
            [[("saturated", "!=", 1), ("cnt", "==", 3)]], bound=6)
        assert good.holds_up_to_bound
        # saturated == 1 -> cnt == 2  (false once saturated)
        bad = bmc.check_invariant_clauses(
            [[("saturated", "!=", 1), ("cnt", "==", 2)]], bound=6)
        assert bad.violated

    def test_unknown_signal_rejected(self):
        bmc = BoundedModelChecker(counter_netlist())
        with pytest.raises(Exception):
            bmc.check_invariant([("ghost", "==", 0)], bound=2)

    def test_bad_operator_rejected(self):
        bmc = BoundedModelChecker(counter_netlist())
        with pytest.raises(ValueError):
            bmc.check_invariant([("cnt", "~", 0)], bound=2)

    def test_empty_clause_rejected(self):
        bmc = BoundedModelChecker(counter_netlist())
        with pytest.raises(ValueError):
            bmc.check_invariant_clauses([[]], bound=2)

    def test_bmc_agrees_with_explicit_mc(self):
        """Cross-validation: BMC and explicit MC agree on the counter."""
        net = counter_netlist()
        ks = kripke_from_netlist(net)
        mc = ExplicitModelChecker(ks)
        bmc = BoundedModelChecker(net)
        for bound_value in (0, 1, 2, 3):
            explicit = mc.check(AG(parse_atom(f"cnt <= {bound_value}"))).holds
            bounded = not bmc.check_invariant(
                [("cnt", "<=", bound_value)], bound=5).violated
            assert explicit == bounded
