"""Tests for PCC: mutations and property-coverage measurement."""

import pytest

from repro.rtl.netlist import BinExpr, ConstExpr, MuxExpr, Netlist, SigExpr
from repro.verify.pcc import (
    Mutation,
    MutationError,
    PropertyCoverageChecker,
    enumerate_mutations,
)


def handshake_netlist():
    """req -> busy (count 0..3) -> done -> idle controller."""
    net = Netlist("ctrl")
    net.add_input("req", 1)
    st = net.add_register("st", 2, reset=0)
    cnt = net.add_register("cnt", 2, reset=0)

    def at(v):
        return BinExpr("==", st, ConstExpr(v, 2))

    nxt = MuxExpr(
        at(0), MuxExpr(SigExpr("req"), ConstExpr(1, 2), ConstExpr(0, 2)),
        MuxExpr(at(1),
                MuxExpr(BinExpr("==", cnt, ConstExpr(3, 2)),
                        ConstExpr(2, 2), ConstExpr(1, 2)),
                ConstExpr(0, 2)))
    net.set_next("st", nxt)
    net.set_next("cnt", MuxExpr(at(1), BinExpr("+", cnt, ConstExpr(1, 2)),
                                ConstExpr(0, 2)))
    net.add_wire("done", 1, at(2))
    net.add_wire("busy", 1, at(1))
    net.mark_output("done")
    net.mark_output("busy")
    net.validate()
    return net


WEAK = [[[("st", "<=", 2)]]]
STRONG = WEAK + [
    [[("st", "!=", 1), ("busy", "==", 1)], [("st", "==", 1), ("busy", "==", 0)]],
    [[("st", "!=", 2), ("done", "==", 1)], [("st", "==", 2), ("done", "==", 0)]],
    [[("st", "!=", 0), ("cnt", "==", 0)]],
    [[("done", "!=", 1), ("cnt", "==", 0)]],
]


class TestMutations:
    def test_enumeration_nonempty(self):
        mutations = enumerate_mutations(handshake_netlist())
        kinds = {m.kind for m in mutations}
        assert kinds == {"op-swap", "const-perturb", "stuck-bit", "mux-invert"}

    def test_limit_respected(self):
        mutations = enumerate_mutations(handshake_netlist(), limit=5)
        assert len(mutations) == 5

    def test_kind_filter(self):
        mutations = enumerate_mutations(handshake_netlist(),
                                        kinds={"const-perturb"})
        assert all(m.kind == "const-perturb" for m in mutations)

    def test_apply_produces_different_netlist(self):
        net = handshake_netlist()
        mutation = enumerate_mutations(net, kinds={"op-swap"})[0]
        mutant = mutation.apply(net)
        assert mutant is not net
        assert "~" in mutant.name
        # Original untouched: same behaviour from reset.
        state_a = net.reset_state()
        state_b = mutant.reset_state()
        assert state_a == state_b

    def test_apply_bad_driver(self):
        net = handshake_netlist()
        with pytest.raises(MutationError):
            Mutation("op-swap", "ghost", 0, "").apply(net)

    def test_apply_bad_position(self):
        net = handshake_netlist()
        with pytest.raises(MutationError):
            Mutation("op-swap", "done", 999, "").apply(net)

    def test_mutant_behaviour_can_differ(self):
        net = handshake_netlist()
        mutation = next(m for m in enumerate_mutations(net, kinds={"op-swap"})
                        if m.driver == "done")
        mutant = mutation.apply(net)
        state_o = net.reset_state()
        state_m = mutant.reset_state()
        __, values_o = net.step(state_o, {"req": 0})
        __, values_m = mutant.step(state_m, {"req": 0})
        assert values_o["done"] != values_m["done"]


class TestPropertyCoverage:
    def test_baseline_must_pass(self):
        net = handshake_netlist()
        failing = [[[("st", "==", 0)]]]  # false invariant
        with pytest.raises(ValueError, match="original"):
            PropertyCoverageChecker(net, failing, bound=6).run()

    def test_stronger_properties_raise_coverage(self):
        net = handshake_netlist()
        weak = PropertyCoverageChecker(net, WEAK, bound=6,
                                       mutation_limit=20).run()
        strong = PropertyCoverageChecker(net, STRONG, bound=6,
                                         mutation_limit=20).run()
        assert strong.coverage > weak.coverage
        assert len(strong.survivors) < len(weak.survivors)

    def test_report_contents(self):
        net = handshake_netlist()
        report = PropertyCoverageChecker(net, WEAK, bound=6,
                                         mutation_limit=10).run()
        text = report.describe()
        assert "property coverage" in text
        assert report.observable_count <= len(report.verdicts)
        assert 0.0 <= report.coverage <= 1.0

    def test_atom_list_normalisation(self):
        net = handshake_netlist()
        # Old-style conjunction-of-atoms property is accepted.
        report = PropertyCoverageChecker(
            net, [[("st", "<=", 2), ("done", "<=", 1)]], bound=4,
            mutation_limit=5,
        ).run()
        assert report.properties[0].count("(") == 2

    def test_silent_mutants_excluded_from_denominator(self):
        net = handshake_netlist()
        checker = PropertyCoverageChecker(net, WEAK, bound=4, mutation_limit=30)
        report = checker.run()
        silent = [v for v in report.verdicts if not v.observable]
        for verdict in silent:
            assert verdict.killed_by is None
            assert not verdict.survived
