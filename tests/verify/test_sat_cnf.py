"""Tests for the CDCL SAT solver and the CNF/bit-vector layer."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.cnf import BitVector, Cnf
from repro.verify.sat import SatResult, SatSolver, solve


def brute_force_sat(clauses, num_vars):
    for bits in range(1 << num_vars):
        assign = {v: bool((bits >> (v - 1)) & 1) for v in range(1, num_vars + 1)}
        if all(any(assign[abs(l)] == (l > 0) for l in c) for c in clauses):
            return True
    return False


class TestSolverBasics:
    def test_empty_formula_sat(self):
        result, __ = solve([])
        assert result is SatResult.SAT

    def test_unit_clauses(self):
        result, model = solve([[1], [-2]])
        assert result is SatResult.SAT
        assert model[1] is True and model[2] is False

    def test_contradiction(self):
        result, __ = solve([[1], [-1]])
        assert result is SatResult.UNSAT

    def test_empty_clause_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert solver.solve() is SatResult.UNSAT

    def test_tautology_ignored(self):
        result, __ = solve([[1, -1], [2]])
        assert result is SatResult.SAT

    def test_zero_literal_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0, 1])

    def test_pigeonhole_3_into_2_unsat(self):
        # var p_ij: pigeon i in hole j; i in 0..2, j in 0..1
        def var(i, j):
            return 1 + i * 2 + j

        clauses = []
        for i in range(3):
            clauses.append([var(i, 0), var(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        result, __ = solve(clauses)
        assert result is SatResult.UNSAT

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is SatResult.SAT
        assert solver.model()[2] is True
        solver2 = SatSolver()
        solver2.add_clause([1, 2])
        solver2.add_clause([-2])
        assert solver2.solve(assumptions=[-1]) is SatResult.UNSAT

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_agrees_with_brute_force(self, data):
        num_vars = data.draw(st.integers(2, 7))
        num_clauses = data.draw(st.integers(1, 25))
        clauses = []
        for __ in range(num_clauses):
            size = data.draw(st.integers(1, min(3, num_vars)))
            variables = data.draw(st.lists(
                st.integers(1, num_vars), min_size=size, max_size=size,
                unique=True))
            clause = [
                v if data.draw(st.booleans()) else -v for v in variables
            ]
            clauses.append(clause)
        result, model = solve([list(c) for c in clauses])
        expected = brute_force_sat(clauses, num_vars)
        assert (result is SatResult.SAT) == expected
        if result is SatResult.SAT:
            assert all(
                any(model[abs(l)] == (l > 0) for l in c) for c in clauses
            )


class TestCnfGates:
    def _value(self, model, lit):
        v = model.get(abs(lit), False)
        return (not v) if lit < 0 else v

    def test_and_gate_truth_table(self):
        for a_val in (False, True):
            for b_val in (False, True):
                cnf = Cnf()
                a, b = cnf.new_var(), cnf.new_var()
                out = cnf.gate_and(a, b)
                cnf.assert_lit(a if a_val else -a)
                cnf.assert_lit(b if b_val else -b)
                result, model = cnf.solve()
                assert result is SatResult.SAT
                assert self._value(model, out) == (a_val and b_val)

    def test_xor_gate_truth_table(self):
        for a_val in (False, True):
            for b_val in (False, True):
                cnf = Cnf()
                a, b = cnf.new_var(), cnf.new_var()
                out = cnf.gate_xor(a, b)
                cnf.assert_lit(a if a_val else -a)
                cnf.assert_lit(b if b_val else -b)
                __, model = cnf.solve()
                assert self._value(model, out) == (a_val != b_val)

    def test_ite_gate(self):
        for sel in (False, True):
            cnf = Cnf()
            s, t, e = cnf.new_var(), cnf.new_var(), cnf.new_var()
            out = cnf.gate_ite(s, t, e)
            cnf.assert_lit(s if sel else -s)
            cnf.assert_lit(t)
            cnf.assert_lit(-e)
            __, model = cnf.solve()
            assert self._value(model, out) == sel

    def test_many_gates(self):
        cnf = Cnf()
        lits = [cnf.new_var() for __ in range(5)]
        out_and = cnf.gate_and_many(lits)
        out_or = cnf.gate_or_many(lits)
        for lit in lits:
            cnf.assert_lit(lit)
        __, model = cnf.solve()
        assert self._value(model, out_and) is True
        assert self._value(model, out_or) is True

    def test_empty_many(self):
        cnf = Cnf()
        assert cnf.gate_and_many([]) == cnf.true_lit
        assert cnf.gate_or_many([]) == cnf.false_lit


class TestBitVector:
    WIDTH = 8

    def _pair(self, a_val, b_val):
        cnf = Cnf()
        a = BitVector.fresh(cnf, self.WIDTH)
        b = BitVector.fresh(cnf, self.WIDTH)
        a.assert_equals_const(a_val & 0xFF)
        b.assert_equals_const(b_val & 0xFF)
        return cnf, a, b

    @staticmethod
    def _wrap(value):
        value &= 0xFF
        return value - 256 if value & 0x80 else value

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_arithmetic_matches_python(self, a_val, b_val):
        cnf, a, b = self._pair(a_val, b_val)
        total = a.add(b)
        diff = a.sub(b)
        prod = a.mul(b)
        result, model = cnf.solve()
        assert result is SatResult.SAT
        assert total.value_in(model) == self._wrap(a_val + b_val)
        assert diff.value_in(model) == self._wrap(a_val - b_val)
        assert prod.value_in(model) == self._wrap(a_val * b_val)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_comparisons_match_python(self, a_val, b_val):
        cnf, a, b = self._pair(a_val, b_val)
        lt = a.lt_signed(b)
        le = a.le_signed(b)
        eq = a.eq(b)
        __, model = cnf.solve()

        def val(lit):
            v = model.get(abs(lit), False)
            return (not v) if lit < 0 else v

        assert val(lt) == (a_val < b_val)
        assert val(le) == (a_val <= b_val)
        assert val(eq) == (a_val == b_val)

    def test_shifts(self):
        cnf = Cnf()
        a = BitVector.constant(cnf, 0b0110, 8)
        left = a.shift_left_const(2)
        right = a.shift_right_const(1, arithmetic=False)
        __, model = cnf.solve()
        assert left.value_in(model) == 0b011000
        assert right.value_in(model) == 0b0011

    def test_arithmetic_shift_preserves_sign(self):
        cnf = Cnf()
        a = BitVector.constant(cnf, -8 & 0xFF, 8)
        shifted = a.shift_right_const(1, arithmetic=True)
        __, model = cnf.solve()
        assert shifted.value_in(model) == -4

    def test_bitwise_ops(self):
        cnf = Cnf()
        a = BitVector.constant(cnf, 0b1100, 8)
        b = BitVector.constant(cnf, 0b1010, 8)
        and_v = a.bit_and(b)
        or_v = a.bit_or(b)
        xor_v = a.bit_xor(b)
        __, model = cnf.solve()
        assert and_v.value_in(model) == 0b1000
        assert or_v.value_in(model) == 0b1110
        assert xor_v.value_in(model) == 0b0110

    def test_is_zero(self):
        cnf = Cnf()
        z = BitVector.constant(cnf, 0, 4)
        nz = BitVector.constant(cnf, 5, 4)
        zero_lit = z.is_zero()
        nonzero_lit = nz.is_nonzero()
        cnf.assert_lit(zero_lit)
        cnf.assert_lit(nonzero_lit)
        result, __ = cnf.solve()
        assert result is SatResult.SAT

    def test_ite(self):
        cnf = Cnf()
        sel = cnf.new_var()
        a = BitVector.constant(cnf, 7, 8)
        b = BitVector.constant(cnf, 3, 8)
        out = a.ite(sel, b)
        cnf.assert_lit(sel)
        __, model = cnf.solve()
        assert out.value_in(model) == 7

    def test_width_mismatch_rejected(self):
        cnf = Cnf()
        a = BitVector.fresh(cnf, 4)
        b = BitVector.fresh(cnf, 8)
        with pytest.raises(ValueError):
            a.add(b)

    def test_inverse_search(self):
        """Solve for x with x * 3 + 7 == 52 (x == 15)."""
        cnf = Cnf()
        x = BitVector.fresh(cnf, 8)
        three = BitVector.constant(cnf, 3, 8)
        seven = BitVector.constant(cnf, 7, 8)
        target = BitVector.constant(cnf, 52, 8)
        cnf.assert_lit(x.mul(three).add(seven).eq(target))
        result, model = cnf.solve()
        assert result is SatResult.SAT
        assert x.value_in(model) == 15
