"""Tests for SymbC: the reconfiguration-consistency prover."""

import pytest

from repro.swir import (
    BinOp,
    Call,
    Const,
    FpgaCall,
    FunctionBuilder,
    ProgramBuilder,
    Var,
    instrument_reconfiguration,
)
from repro.verify.symbc import ConfigInfo, ConfigInfoError, SymbcAnalyzer

CONFIG = ConfigInfo.from_sets(config1={"DISTANCE"}, config2={"ROOT"})
CTX_MAP = {"DISTANCE": "config1", "ROOT": "config2"}


def frame_loop_program():
    fb = FunctionBuilder("main", ["frames"])
    fb.assign("i", Const(0))
    with fb.while_(BinOp("<", Var("i"), Var("frames"))):
        fb.fpga_call("DISTANCE", (Var("i"),), target="d")
        fb.fpga_call("ROOT", (Var("d"),), target="r")
        fb.assign("i", BinOp("+", Var("i"), Const(1)))
    fb.ret(Var("r"))
    return ProgramBuilder().add(fb).build()


class TestConfigInfo:
    def test_from_sets(self):
        assert CONFIG.fpga_functions == {"DISTANCE", "ROOT"}
        assert CONFIG.owners("ROOT") == {"config2"}
        assert CONFIG.provides("config1", "DISTANCE")
        assert not CONFIG.provides("config1", "ROOT")

    def test_empty_rejected(self):
        with pytest.raises(ConfigInfoError):
            ConfigInfo({})
        with pytest.raises(ConfigInfoError):
            ConfigInfo.from_sets(c1=set())

    def test_unknown_configuration(self):
        with pytest.raises(ConfigInfoError):
            CONFIG.provides("nope", "ROOT")

    def test_validate_program_contexts(self):
        CONFIG.validate_program_contexts({"config1"})
        with pytest.raises(ConfigInfoError):
            CONFIG.validate_program_contexts({"config9"})


class TestCertificates:
    def test_correct_instrumentation_certified(self):
        program = instrument_reconfiguration(frame_loop_program(), CTX_MAP)
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert verdict.consistent
        assert verdict.certificate.call_sites_proved == 2
        assert "certificate" in verdict.describe()

    def test_missing_instrumentation_caught(self):
        program = frame_loop_program()  # no Reconfigure at all
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert not verdict.consistent
        assert len(verdict.counter_examples) == 2

    def test_partially_faulty_instrumentation(self):
        program = frame_loop_program()
        skip = {s.sid for s in program.walk()
                if isinstance(s, FpgaCall) and s.func == "ROOT"}
        faulty = instrument_reconfiguration(program, CTX_MAP, skip_sids=skip)
        verdict = SymbcAnalyzer(faulty, CONFIG).check()
        assert not verdict.consistent
        ce = verdict.counter_examples[0]
        assert ce.function == "ROOT"
        assert "config1" in ce.loaded_candidates
        # Path renders concrete statements.
        assert any("DISTANCE" in step for step in ce.path)

    def test_branch_join_weakens_state(self):
        """Reconfigure on one branch only: call after the join must fail."""
        fb = FunctionBuilder("main", ["x"])
        with fb.if_(BinOp(">", Var("x"), Const(0))):
            fb.reconfigure("config2")
        fb.fpga_call("ROOT", (Var("x"),), target="r")
        fb.ret(Var("r"))
        program = ProgramBuilder().add(fb).build()
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert not verdict.consistent
        # The bad candidate is "nothing loaded" (the else path).
        assert "" in verdict.counter_examples[0].loaded_candidates

    def test_both_branches_reconfigure_ok(self):
        fb = FunctionBuilder("main", ["x"])
        with fb.if_else(BinOp(">", Var("x"), Const(0))) as orelse:
            fb.reconfigure("config2")
        with orelse():
            fb.reconfigure("config2")
        fb.fpga_call("ROOT", (Var("x"),), target="r")
        fb.ret(Var("r"))
        program = ProgramBuilder().add(fb).build()
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert verdict.consistent

    def test_loop_reentry_invalidates_context(self):
        """Context set before the loop is lost after a body that switches."""
        fb = FunctionBuilder("main", ["n"])
        fb.reconfigure("config1")
        fb.assign("i", Const(0))
        with fb.while_(BinOp("<", Var("i"), Var("n"))):
            fb.fpga_call("DISTANCE", (Var("i"),), target="d")  # needs config1
            fb.reconfigure("config2")
            fb.fpga_call("ROOT", (Var("d"),), target="r")
            fb.assign("i", BinOp("+", Var("i"), Const(1)))
        fb.ret(Const(0))
        program = ProgramBuilder().add(fb).build()
        verdict = SymbcAnalyzer(program, CONFIG).check()
        # Second iteration reaches DISTANCE with config2 loaded.
        assert not verdict.consistent
        assert verdict.counter_examples[0].function == "DISTANCE"

    def test_interprocedural_reconfigure(self):
        """A helper that reconfigures is respected at the call site."""
        helper = FunctionBuilder("load_root", [])
        helper.reconfigure("config2")
        helper.ret()
        fb = FunctionBuilder("main", ["x"])
        fb.assign("t", Call("load_root", ()))
        fb.fpga_call("ROOT", (Var("x"),), target="r")
        fb.ret(Var("r"))
        program = ProgramBuilder().add(fb).add(helper).build()
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert verdict.consistent

    def test_non_fpga_calls_ignored(self):
        fb = FunctionBuilder("main", ["x"])
        fb.fpga_call("SOFT_HELPER", (Var("x"),), target="y")
        fb.ret(Var("y"))
        program = ProgramBuilder().add(fb).build()
        # SOFT_HELPER is not in any configuration: not a reconfigurable
        # resource, so nothing to prove.
        verdict = SymbcAnalyzer(program, CONFIG).check()
        assert verdict.consistent
        assert verdict.certificate.call_sites_proved == 0

    def test_undefined_context_rejected(self):
        fb = FunctionBuilder("main", [])
        fb.reconfigure("config99")
        fb.ret()
        program = ProgramBuilder().add(fb).build()
        with pytest.raises(ConfigInfoError):
            SymbcAnalyzer(program, CONFIG).check()

    def test_function_in_multiple_contexts(self):
        config = ConfigInfo.from_sets(
            config1={"DISTANCE", "ROOT"}, config2={"ROOT"})
        fb = FunctionBuilder("main", ["x"])
        fb.reconfigure("config1")
        fb.fpga_call("ROOT", (Var("x"),), target="r")
        fb.reconfigure("config2")
        fb.fpga_call("ROOT", (Var("r"),), target="s")
        fb.ret(Var("s"))
        program = ProgramBuilder().add(fb).build()
        verdict = SymbcAnalyzer(program, config).check()
        assert verdict.consistent
