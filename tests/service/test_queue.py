"""The durable job queue: content addressing, states, crash recovery."""

import json

import pytest

from repro.api import CampaignSpec
from repro.service.queue import (
    JOB_SCHEMA,
    JOB_STATES,
    JobQueue,
    job_key,
    job_summary,
)

SPEC = CampaignSpec(name="queued", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


class TestContentAddressing:
    def test_job_key_is_deterministic(self):
        assert job_key(SPEC) == job_key(SPEC)
        assert job_key(SPEC, {"frames": [1, 2]}) == \
            job_key(SPEC, {"frames": [1, 2]})

    def test_key_distinguishes_spec_and_sweep(self):
        assert job_key(SPEC) != job_key(SPEC.replace(frames=2))
        assert job_key(SPEC) != job_key(SPEC, {"frames": [1, 2]})
        assert job_key(SPEC, {"frames": [1, 2]}) != \
            job_key(SPEC, {"frames": [1, 3]})

    def test_submit_uses_the_content_address(self, queue):
        job, coalesced = queue.submit(SPEC)
        assert not coalesced
        assert job["id"] == job_key(SPEC)
        assert job["schema"] == JOB_SCHEMA
        assert job["status"] == "queued" and job["kind"] == "run"


class TestCoalescing:
    def test_duplicate_submission_coalesces_while_queued(self, queue):
        first, _ = queue.submit(SPEC, sweep={"frames": [1, 2]})
        second, coalesced = queue.submit(SPEC, sweep={"frames": [1, 2]})
        assert coalesced
        assert second["id"] == first["id"]
        assert len(queue.list()) == 1

    def test_duplicate_submission_coalesces_while_running(self, queue):
        queue.submit(SPEC)
        queue.claim("w0")
        job, coalesced = queue.submit(SPEC)
        assert coalesced and job["status"] == "running"

    def test_coalescing_can_raise_priority_never_lower_it(self, queue):
        queue.submit(SPEC, priority=5)
        job, _ = queue.submit(SPEC, priority=1)
        assert job["priority"] == 5
        job, _ = queue.submit(SPEC, priority=9)
        assert job["priority"] == 9

    def test_terminal_job_requeues_with_same_id(self, queue):
        first, _ = queue.submit(SPEC)
        queue.claim("w0")
        queue.complete(first["id"], {"passed": True})
        again, coalesced = queue.submit(SPEC)
        assert not coalesced
        assert again["id"] == first["id"]
        assert again["status"] == "queued"
        assert again["attempts"] == 1  # prior attempt count carried


class TestOrdering:
    def test_claim_is_priority_then_fifo(self, queue):
        low, _ = queue.submit(SPEC.replace(name="low"))
        high, _ = queue.submit(SPEC.replace(name="high"), priority=10)
        later, _ = queue.submit(SPEC.replace(name="later"))
        claimed = [queue.claim("w0")["name"] for _ in range(3)]
        assert claimed == ["high", "low", "later"]

    def test_claim_empty_queue_returns_none(self, queue):
        assert queue.claim("w0") is None

    def test_claim_marks_running_with_worker_and_attempt(self, queue):
        queue.submit(SPEC)
        job = queue.claim("worker-3")
        assert job["status"] == "running"
        assert job["worker"] == "worker-3"
        assert job["attempts"] == 1
        assert job["started_at"] is not None


class TestTransitions:
    def test_complete_and_fail_require_running(self, queue):
        job, _ = queue.submit(SPEC)
        with pytest.raises(ValueError, match="not running"):
            queue.complete(job["id"], {})
        queue.claim("w0")
        done = queue.complete(job["id"], {"passed": True})
        assert done["status"] == "done" and done["result"] == {"passed": True}
        with pytest.raises(ValueError, match="not running"):
            queue.fail(job["id"], {"type": "X", "message": "y"})

    def test_fail_records_the_error_envelope(self, queue):
        job, _ = queue.submit(SPEC)
        queue.claim("w0")
        failed = queue.fail(job["id"],
                            {"type": "SweepPointError", "message": "boom"})
        assert failed["status"] == "failed"
        assert failed["error"] == {"type": "SweepPointError",
                                   "message": "boom"}

    def test_cancel_only_queued(self, queue):
        job, _ = queue.submit(SPEC)
        cancelled = queue.cancel(job["id"])
        assert cancelled["status"] == "cancelled"
        queue.submit(SPEC.replace(name="running"))
        running = queue.claim("w0")
        with pytest.raises(ValueError, match="only queued"):
            queue.cancel(running["id"])
        with pytest.raises(KeyError):
            queue.cancel("feedbeef" * 8)

    def test_every_state_is_a_known_state(self, queue):
        job, _ = queue.submit(SPEC)
        assert job["status"] in JOB_STATES


class TestDurability:
    def test_records_survive_reopening(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        job, _ = queue.submit(SPEC, sweep={"frames": [1, 2]}, priority=3)
        reopened = JobQueue(tmp_path / "queue")
        loaded = reopened.get(job["id"])
        assert loaded == job
        # The seq counter continues, never restarts (FIFO across restarts).
        other, _ = reopened.submit(SPEC.replace(name="later"))
        assert other["seq"] > job["seq"]

    def test_unreadable_job_file_is_skipped_not_raised(self, queue):
        job, _ = queue.submit(SPEC)
        (queue.jobs_dir / "0badc0de.json").write_text("{ torn")
        assert [j["id"] for j in queue.list()] == [job["id"]]
        assert queue.get("0badc0de") is None

    def test_open_missing_queue_without_create_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            JobQueue(tmp_path / "nope", create=False)

    def test_version_mismatch_is_a_clean_error(self, tmp_path):
        JobQueue(tmp_path / "queue")
        manifest = json.loads((tmp_path / "queue" / "queue.json").read_text())
        manifest["version"] = 99
        (tmp_path / "queue" / "queue.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version 99"):
            JobQueue(tmp_path / "queue")


class TestCrashRecovery:
    def test_recover_requeues_running_jobs_only(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        interrupted, _ = queue.submit(SPEC.replace(name="interrupted"))
        done, _ = queue.submit(SPEC.replace(name="done"))
        waiting, _ = queue.submit(SPEC.replace(name="waiting"))
        assert queue.claim("w0")["name"] == "interrupted"
        assert queue.claim("w0")["name"] == "done"
        queue.complete(done["id"], {"passed": True})
        # Daemon dies here; a fresh process opens the same directory.
        restarted = JobQueue(tmp_path / "queue")
        requeued = restarted.recover()
        assert requeued == [interrupted["id"]]
        record = restarted.get(interrupted["id"])
        assert record["status"] == "queued"
        assert record["worker"] is None and record["started_at"] is None
        # Completed jobs untouched; queued jobs untouched.
        assert restarted.get(done["id"])["status"] == "done"
        assert restarted.get(waiting["id"])["status"] == "queued"
        # The re-queued job keeps its attempt count (it *did* run once).
        assert record["attempts"] == 1

    def test_recover_on_clean_queue_is_a_noop(self, queue):
        queue.submit(SPEC)
        assert queue.recover() == []


class TestListingAndStats:
    def test_list_filters_by_status_and_workload(self, queue):
        queue.submit(SPEC)
        facerec = CampaignSpec(name="fr", identities=2, poses=1, size=32,
                               frames=1, levels=(1,))
        queue.submit(facerec)
        queue.claim("w0")  # claims one of them
        assert len(queue.list()) == 2
        assert len(queue.list(status="running")) == 1
        assert [j["workload"] for j in queue.list(workload="facerec")] == \
            ["facerec"]
        with pytest.raises(ValueError, match="unknown job status"):
            queue.list(status="pending")

    def test_list_is_newest_first(self, queue):
        queue.submit(SPEC.replace(name="first"))
        queue.submit(SPEC.replace(name="second"))
        assert [j["name"] for j in queue.list()] == ["second", "first"]

    def test_resolve_prefix(self, queue):
        job, _ = queue.submit(SPEC)
        assert queue.resolve(job["id"][:10]) == job["id"]
        with pytest.raises(KeyError):
            queue.resolve("ffffffff")

    def test_stats_counts_by_status_and_workload(self, queue):
        queue.submit(SPEC)
        queue.submit(SPEC.replace(name="other", frames=2))
        queue.claim("w0")
        stats = queue.stats()
        assert stats["depth"] == 1
        assert stats["by_status"]["queued"] == 1
        assert stats["by_status"]["running"] == 1
        assert stats["by_workload"]["blockcipher"]["queued"] == 1
        # Registered workloads appear even with zero jobs.
        assert stats["by_workload"]["edgescan"]["queued"] == 0

    def test_depth_tracks_transitions_and_survives_reopen(self, tmp_path):
        queue = JobQueue(tmp_path / "queue")
        assert queue.depth() == 0
        queue.submit(SPEC)
        queue.submit(SPEC.replace(name="b"))
        queue.submit(SPEC.replace(name="c"))
        assert queue.depth() == 3
        claimed = queue.claim("w0")
        assert queue.depth() == 2
        queue.complete(claimed["id"], {"passed": True})
        queue.cancel(queue.list(status="queued")[0]["id"])
        assert queue.depth() == 1
        # A fresh handle rebuilds the index from disk.
        reopened = JobQueue(tmp_path / "queue")
        assert reopened.depth() == 1
        assert reopened.claim("w1")["status"] == "running"
        assert reopened.depth() == 0
        assert reopened.claim("w1") is None

    def test_prune_drops_terminal_records_only(self, queue):
        done, _ = queue.submit(SPEC.replace(name="done"))
        queue.claim("w0")
        queue.complete(done["id"], {"passed": True})
        cancelled, _ = queue.submit(SPEC.replace(name="cancelled"))
        queue.cancel(cancelled["id"])
        running, _ = queue.submit(SPEC.replace(name="running"))
        queue.claim("w0")
        waiting, _ = queue.submit(SPEC.replace(name="waiting"))
        assert queue.prune() == 2
        statuses = {job["name"]: job["status"] for job in queue.list()}
        assert statuses == {"running": "running", "waiting": "queued"}
        assert queue.depth() == 1  # the index is untouched

    def test_prune_keep_last_keeps_newest(self, queue):
        ids = []
        for index in range(3):
            job, _ = queue.submit(SPEC.replace(name=f"j{index}"))
            queue.claim("w0")
            queue.complete(job["id"], {"passed": True})
            ids.append(job["id"])
        assert queue.prune(keep_last=1) == 2
        assert [job["id"] for job in queue.list()] == [ids[-1]]
        with pytest.raises(ValueError, match=">= 0"):
            queue.prune(keep_last=-1)

    def test_pruned_job_resubmits_fresh(self, queue):
        job, _ = queue.submit(SPEC)
        queue.claim("w0")
        queue.complete(job["id"], {"passed": True})
        queue.prune()
        again, coalesced = queue.submit(SPEC)
        assert not coalesced
        assert again["id"] == job["id"]  # same content address
        assert again["status"] == "queued" and again["attempts"] == 0

    def test_job_summary_carries_no_bodies(self, queue):
        job, _ = queue.submit(SPEC, sweep={"frames": [1, 2]})
        summary = job_summary(job)
        assert summary["id"] == job["id"]
        assert "spec" not in summary and "sweep" not in summary
