"""The worker pool: process isolation, store-warm execution, envelopes."""

import os
import signal
import time

import pytest

from repro.api import CampaignSpec, CampaignStore
from repro.service.queue import JobQueue
from repro.service.workers import WorkerCrash, WorkerPool, execute_job

FAST = CampaignSpec(name="w", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})


@pytest.fixture
def queue(tmp_path):
    return JobQueue(tmp_path / "queue")


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


def drain(pool, queue, timeout=60.0):
    """Run the pool until the queue has nothing queued or running."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        stats = queue.stats()["by_status"]
        if stats["queued"] == 0 and stats["running"] == 0:
            return
        time.sleep(0.02)
    raise TimeoutError("queue did not drain")


class TestExecuteJob:
    def test_run_job_executes_and_persists(self, queue, store):
        job, _ = queue.submit(FAST)
        result = execute_job(job, str(store.root))
        assert result["passed"] and result["points"] == 1
        assert result["store_resume"]["executed"] == ["w"]
        assert store.get_campaign(FAST)["status"] == "ok"

    def test_run_job_answers_warm_from_store(self, queue, store):
        job, _ = queue.submit(FAST)
        execute_job(job, str(store.root))
        warm = execute_job(job, str(store.root))
        assert warm["store_resume"] == {"hits": ["w"], "executed": [],
                                        "retried": []}

    def test_sweep_job_resumes(self, queue, store):
        job, _ = queue.submit(FAST, sweep={"frames": [1, 2]})
        cold = execute_job(job, str(store.root))
        assert cold["points"] == 2
        assert len(cold["store_resume"]["executed"]) == 2
        warm = execute_job(job, str(store.root))
        assert warm["store_resume"]["executed"] == []
        assert len(warm["store_resume"]["hits"]) == 2

    def test_recorded_failure_is_retried(self, queue, store):
        store.put_campaign_failure(FAST, RuntimeError("earlier crash"))
        job, _ = queue.submit(FAST)
        result = execute_job(job, str(store.root))
        assert result["store_resume"]["retried"] == ["w"]
        assert result["store_resume"]["executed"] == ["w"]


class TestPool:
    def test_pool_drains_queue_and_counts(self, queue, store):
        queue.submit(FAST)
        queue.submit(FAST.replace(name="w2", frames=2))
        pool = WorkerPool(queue, str(store.root), workers=2)
        pool.start()
        try:
            drain(pool, queue)
        finally:
            pool.stop()
        jobs = queue.list(status="done")
        assert len(jobs) == 2
        assert all(job["result"]["passed"] for job in jobs)
        stats = pool.stats()
        assert stats["jobs_done"] == 2 and stats["jobs_failed"] == 0
        assert stats["points_executed"] == 2

    def test_raising_campaign_becomes_failure_envelope(self, queue, store):
        # An unknown CPU passes spec validation (the CPU library is
        # checked at session build), so the job fails *inside* the child.
        bad = FAST.replace(name="bad", cpu="MISSING-CPU")
        job, _ = queue.submit(bad)
        pool = WorkerPool(queue, str(store.root), workers=1)
        pool.start()
        try:
            drain(pool, queue)
        finally:
            pool.stop()
        failed = queue.get(job["id"])
        assert failed["status"] == "failed"
        assert "MISSING-CPU" in failed["error"]["message"]
        assert pool.stats()["jobs_failed"] == 1

    def test_sweep_point_error_names_the_point(self, queue, store):
        job, _ = queue.submit(FAST.replace(cpu="MISSING-CPU"),
                              sweep={"frames": [1]})
        pool = WorkerPool(queue, str(store.root), workers=1)
        pool.start()
        try:
            drain(pool, queue)
        finally:
            pool.stop()
        failed = queue.get(job["id"])
        assert failed["error"]["type"] == "SweepPointError"
        assert "w[frames=1]" in failed["error"]["message"]

    def test_killed_child_surfaces_as_worker_crash(self, queue, store,
                                                   monkeypatch):
        """A child dying without a report fails the job, not the daemon."""
        import repro.service.workers as workers_mod

        def doomed(job_doc, store_root):
            os.kill(os.getpid(), signal.SIGKILL)

        monkeypatch.setattr(workers_mod, "execute_job", doomed)
        job, _ = queue.submit(FAST)
        pool = WorkerPool(queue, str(store.root), workers=1)
        pool.start()
        try:
            drain(pool, queue)
        finally:
            pool.stop()
        failed = queue.get(job["id"])
        assert failed["status"] == "failed"
        assert failed["error"]["type"] == "WorkerCrash"
        assert "exited with code" in failed["error"]["message"]

    def test_hung_child_is_killed_at_the_job_timeout(self, queue, store,
                                                     monkeypatch):
        """A campaign that never returns cannot wedge a worker forever."""
        import repro.service.workers as workers_mod

        def hang(job_doc, store_root):
            time.sleep(3600)

        monkeypatch.setattr(workers_mod, "execute_job", hang)
        job, _ = queue.submit(FAST)
        pool = WorkerPool(queue, str(store.root), workers=1,
                          job_timeout=0.5)
        pool.start()
        try:
            drain(pool, queue, timeout=30)
        finally:
            pool.stop()
        failed = queue.get(job["id"])
        assert failed["status"] == "failed"
        assert failed["error"]["type"] == "WorkerCrash"
        assert "job timeout" in failed["error"]["message"]

    def test_job_timeout_must_be_positive(self, queue, store):
        with pytest.raises(ValueError, match="job_timeout"):
            WorkerPool(queue, str(store.root), workers=1, job_timeout=0)

    def test_worker_count_clamps_to_available_cpus(self, queue, store,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        pool = WorkerPool(queue, str(store.root), workers=64)
        assert pool.workers == 2
        monkeypatch.setenv("REPRO_JOBS", "1")
        assert WorkerPool(queue, str(store.root)).workers == 1

    def test_rejects_zero_workers(self, queue, store):
        with pytest.raises(ValueError, match=">= 1"):
            WorkerPool(queue, str(store.root), workers=0)

    def test_worker_crash_exception_type(self):
        assert issubclass(WorkerCrash, RuntimeError)
