"""The HTTP API end-to-end: daemon up, jobs over the wire, store-served
payloads.

The acceptance contract lives in
:class:`TestEndToEnd.test_http_sweep_matches_direct_sweep_and_resubmits_warm`:
a sweep submitted over HTTP must return a payload byte-identical
(``documents_equal``) to the same sweep run directly through
``Campaign.sweep``, and a repeat submission must be answered entirely
from the store — 100% hits, zero points executed.
"""

import pytest

from repro.api import Campaign, CampaignSpec
from repro.serialize import documents_equal
from repro.service import CampaignService, ServiceClient, ServiceError

FAST = CampaignSpec(name="http-e2e", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})
GRID = {"frames": [1, 2]}


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(tmp_path / "svc", workers=1).start()
    yield svc
    svc.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


@pytest.fixture
def idle_service(tmp_path):
    """HTTP up, workers *not* draining: queued state is observable."""
    svc = CampaignService(tmp_path / "svc").start(workers=False)
    yield svc
    svc.stop()


class TestEndToEnd:
    def test_http_sweep_matches_direct_sweep_and_resubmits_warm(
            self, service, client, monkeypatch):
        job = client.submit(FAST.to_dict(), sweep=GRID)
        assert job["status"] == "queued" and not job["coalesced"]
        done = client.wait(job["id"], timeout=120)
        assert done["status"] == "done"
        assert done["result"]["passed"]

        # Byte-identical (minus volatile keys) to the direct sweep.
        direct = Campaign.sweep(FAST, GRID)
        assert documents_equal(done["payload"], direct.to_dict())

        # Repeat submission: same job id, answered 100% from the store
        # with zero recomputation (Campaign.run would raise).
        def bomb(self, session=None, store=None):
            raise AssertionError("warm resubmission recomputed a point")
        monkeypatch.setattr(Campaign, "run", bomb)
        again = client.submit(FAST.to_dict(), sweep=GRID)
        assert again["id"] == job["id"] and not again["coalesced"]
        warm = client.wait(again["id"], timeout=120)
        resume = warm["result"]["store_resume"]
        assert resume["executed"] == [] and resume["retried"] == []
        assert len(resume["hits"]) == len(Campaign.sweep_specs(FAST, GRID))
        assert documents_equal(warm["payload"], direct.to_dict())

    def test_single_spec_job_payload_is_the_outcome_document(
            self, service, client):
        job = client.submit(FAST.to_dict())
        done = client.wait(job["id"], timeout=120)
        payload = done["payload"]
        assert payload["schema"] == "repro.campaign_outcome/v1"
        assert payload["passed"] and payload["spec"]["name"] == "http-e2e"
        # ?payload=0 omits the (potentially large) document.
        slim = client.get(job["id"], payload=False)
        assert "payload" not in slim

    def test_failing_spec_reports_envelope_over_http(self, service, client):
        job = client.submit(FAST.replace(name="doomed",
                                         cpu="MISSING-CPU").to_dict())
        done = client.wait(job["id"], timeout=120)
        assert done["status"] == "failed"
        assert "MISSING-CPU" in done["error"]["message"]


class TestRoutes:
    def test_healthz_and_stats(self, service, client):
        health = client.healthz()
        assert health["ok"] and health["workers"] == 1
        stats = client.stats()
        assert stats["schema"] == "repro.service_stats/v1"
        assert set(stats["queue"]["by_status"]) == {
            "queued", "running", "done", "failed", "cancelled"}
        assert "blockcipher" in stats["workloads"]
        assert stats["workloads"]["blockcipher"]["revision"] == 1

    def test_healthz_v2_reports_uptime_and_leases(self, service, client):
        health = client.healthz()
        assert health["schema"] == "repro.service_health/v2"
        assert health["uptime_seconds"] >= 0.0
        assert health["active_leases"] == 0

    def test_metrics_route_serves_prometheus_text(self, service, client):
        import re

        job = client.submit(FAST.to_dict())
        client.wait(job["id"], timeout=120)
        text = client.metrics()
        assert "# TYPE repro_jobs_total counter" in text
        assert "# TYPE repro_job_seconds histogram" in text
        # The registry is process-wide (it survives across daemons in
        # one test process), so assert the scrape shape and that this
        # job was counted, not an absolute total.
        match = re.search(r'^repro_jobs_total\{status="done"\} (\d+)$',
                          text, re.M)
        assert match and int(match.group(1)) >= 1
        assert re.search(r"^repro_job_seconds_bucket\{le=\"\+Inf\"\} \d+$",
                         text, re.M)
        assert re.search(r'^repro_queue_submitted_total\{coalesced="false"'
                         r"\} \d+$", text, re.M)

    def test_stats_carries_the_metrics_snapshot(self, service, client):
        job = client.submit(FAST.to_dict())
        client.wait(job["id"], timeout=120)
        stats = client.stats()
        snapshot = stats["metrics"]
        assert snapshot['repro_jobs_total{status="done"}'] >= 1
        # The CLI stats table renders the snapshot as its own section.
        from repro.cli import _stats_table

        table = _stats_table(stats)
        assert "metrics" in table and "repro_jobs_total" in table

    def test_wait_records_poll_bookkeeping(self, service, client):
        from repro.serialize import canonical_document

        job = client.submit(FAST.to_dict())
        done = client.wait(job["id"], timeout=120)
        assert done["wait_polls"] >= 2
        assert done["wait_seconds"] >= 0.0
        # Volatile by contract: the bookkeeping never enters equality.
        canonical = canonical_document(done)
        assert "wait_polls" not in canonical
        assert "wait_seconds" not in canonical

    def test_unknown_routes_and_job_404(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.get("feedbeef" * 8)
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/nope")
        assert excinfo.value.status == 404

    def test_invalid_spec_is_a_400(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"schema": "repro.campaign_spec/v2",
                           "workload": "holograms"})
        assert excinfo.value.status == 400
        assert "holograms" in str(excinfo.value)

    def test_invalid_sweep_grid_is_a_400(self, service, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(FAST.to_dict(), sweep={"warp_factor": [9]})
        assert excinfo.value.status == 400

    def test_non_json_body_is_a_400(self, service, client):
        import urllib.request

        request = urllib.request.Request(
            f"{service.url}/v1/jobs", method="POST", data=b"not json")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_content_length_is_a_400_not_a_hang(self, service):
        """Raw-socket request with a negative Content-Length: refused."""
        import socket

        host, port = service.server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /v1/jobs HTTP/1.1\r\n"
                         b"Host: x\r\nContent-Length: -1\r\n\r\n")
            sock.settimeout(10)
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]

    def test_listing_filters(self, idle_service):
        client = ServiceClient(idle_service.url)
        client.submit(FAST.to_dict())
        client.submit(CampaignSpec(name="fr", identities=2, poses=1,
                                   size=32, frames=1, levels=(1,)).to_dict())
        assert len(client.jobs()) == 2
        assert len(client.jobs(status="queued")) == 2
        assert [j["workload"] for j in client.jobs(workload="facerec")] == \
            ["facerec"]

    def test_cancel_queued_then_conflict(self, idle_service):
        client = ServiceClient(idle_service.url)
        job = client.submit(FAST.to_dict())
        cancelled = client.cancel(job["id"])
        assert cancelled["status"] == "cancelled"
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job["id"])
        assert excinfo.value.status == 409

    def test_queued_duplicate_coalesces_over_http(self, idle_service):
        client = ServiceClient(idle_service.url)
        first = client.submit(FAST.to_dict(), priority=1)
        second = client.submit(FAST.to_dict(), priority=7)
        assert second["coalesced"] and second["id"] == first["id"]
        assert second["priority"] == 7
        assert len(client.jobs(status="queued")) == 1

    def test_prune_over_http(self, service, client):
        job = client.submit(FAST.to_dict())
        client.wait(job["id"], timeout=120, payload=False)
        assert client.prune()["removed"] == 1
        assert client.jobs() == []
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/prune?keep_last=-2", {})
        assert excinfo.value.status == 400
        # The verified result survives pruning: resubmission is warm.
        again = client.submit(FAST.to_dict())
        warm = client.wait(again["id"], timeout=120)
        assert warm["result"]["store_resume"]["hits"] == ["http-e2e"]

    def test_id_prefix_resolution(self, idle_service):
        client = ServiceClient(idle_service.url)
        job = client.submit(FAST.to_dict())
        assert client.get(job["id"][:12], payload=False)["id"] == job["id"]


class TestDaemonLifecycle:
    def test_restart_recovers_interrupted_jobs(self, tmp_path):
        root = tmp_path / "svc"
        first = CampaignService(root)
        job, _ = first.queue.submit(FAST)
        first.queue.claim("worker-0")
        # Daemon "dies" mid-job: the kernel drops its socket and its
        # advisory daemon.lock (simulated by closing both handles).
        first.server.server_close()
        first._lock_file.close()

        second = CampaignService(root)
        assert second.recovered == [job["id"]]
        assert second.queue.get(job["id"])["status"] == "queued"
        second.server.server_close()

    def test_second_daemon_on_same_root_is_refused(self, tmp_path):
        root = tmp_path / "svc"
        first = CampaignService(root)
        job, _ = first.queue.submit(FAST)
        first.queue.claim("worker-0")  # a live daemon mid-job
        with pytest.raises(RuntimeError, match="already running"):
            CampaignService(root)
        # ... and crucially the live daemon's running job was not
        # hijacked back to queued by the refused instance.
        assert first.queue.get(job["id"])["status"] == "running"
        first.server.server_close()
        first._lock_file.close()

    def test_context_manager_starts_and_stops(self, tmp_path):
        root = tmp_path / "svc"
        with CampaignService(root, workers=1) as svc:
            assert ServiceClient(svc.url).healthz()["ok"]
        # stop() released the lock: a new daemon can take the root.
        CampaignService(root).server.server_close()


class TestQueryRoute:
    """``POST /v1/query``: the provenance ledger over the wire."""

    def test_query_sees_queued_jobs_and_empty_store(self, idle_service):
        client = ServiceClient(idle_service.url)
        job = client.submit(FAST.to_dict(), tenant="ops")
        document = client.query("job where state == 'queued' "
                                "select id, name, tenant")
        assert document["schema"] == "repro.ledger_query/v1"
        assert document["count"] == 1
        assert document["rows"] == [{"id": job["id"], "name": "http-e2e",
                                     "tenant": "ops"}]
        # The facts counters name every relation, even the empty ones.
        assert document["facts"]["entry"] == 0
        assert set(document["facts"]) == {
            "entry", "spec", "produced_by", "journal_touched", "job",
            "lease", "runner", "span"}

    def test_query_sees_store_entries_after_a_run(self, service, client):
        job = client.submit(FAST.to_dict())
        assert client.wait(job["id"], timeout=120)["status"] == "done"
        document = client.query(
            "entry where status == 'ok' join spec on spec_hash = hash "
            "select key, name, engine_rev, params")
        assert document["count"] >= 1
        row = next(r for r in document["rows"] if r["name"] == "http-e2e")
        assert isinstance(row["engine_rev"], int)
        assert row["params"] == {"block_words": 4}

    def test_bad_query_is_a_400(self, idle_service):
        client = ServiceClient(idle_service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.query("entry where status ==")
        assert excinfo.value.status == 400
        assert "bad query" in str(excinfo.value)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/query", {"nope": 1})
        assert excinfo.value.status == 400
