"""Tests for CFG construction and reconfiguration instrumentation."""

import pytest

from repro.swir import (
    BinOp,
    Const,
    FpgaCall,
    FunctionBuilder,
    Interpreter,
    ProgramBuilder,
    Reconfigure,
    Var,
    build_cfg,
    instrument_reconfiguration,
    strip_reconfiguration,
)


def loop_program():
    fb = FunctionBuilder("main", ["n"])
    fb.assign("i", Const(0))
    with fb.while_(BinOp("<", Var("i"), Var("n"))):
        fb.fpga_call("A", (Var("i"),), target="a")
        fb.fpga_call("B", (Var("a"),), target="b")
        fb.assign("i", BinOp("+", Var("i"), Const(1)))
    fb.ret(Var("i"))
    return ProgramBuilder().add(fb).build()


CONTEXTS = {"A": "config1", "B": "config2"}


class TestCfg:
    def test_linear_function(self):
        fb = FunctionBuilder("f", ["x"])
        fb.assign("y", Var("x"))
        fb.ret(Var("y"))
        cfg = build_cfg(fb.build())
        assert cfg.entry in cfg.blocks
        assert cfg.successors(cfg.entry) == [cfg.exit]
        assert len(cfg.blocks[cfg.entry].statements) == 2

    def test_if_creates_two_edges(self):
        fb = FunctionBuilder("f", ["x"])
        with fb.if_(BinOp(">", Var("x"), Const(0))):
            fb.assign("y", Const(1))
        fb.ret()
        cfg = build_cfg(fb.build())
        assert len(cfg.blocks[cfg.entry].successors) == 2
        labels = [lbl for __, lbl in cfg.blocks[cfg.entry].successors]
        assert any(lbl and lbl.startswith("!") for lbl in labels)

    def test_while_has_back_edge(self):
        cfg = build_cfg(loop_program().main)
        # Some block must have a successor that is also its ancestor (loop).
        def reachable(frm):
            seen, stack = set(), [frm]
            while stack:
                bid = stack.pop()
                for succ in cfg.successors(bid):
                    if succ not in seen:
                        seen.add(succ)
                        stack.append(succ)
            return seen

        has_cycle = any(bid in reachable(bid) for bid in cfg.blocks)
        assert has_cycle

    def test_return_connects_to_exit(self):
        fb = FunctionBuilder("f", ["x"])
        with fb.if_(Var("x")):
            fb.ret(Const(1))
        fb.ret(Const(0))
        cfg = build_cfg(fb.build())
        preds = cfg.predecessors(cfg.exit)
        assert len(preds) >= 2  # both returns reach the exit

    def test_describe(self):
        cfg = build_cfg(loop_program().main)
        text = cfg.describe()
        assert "B0" in text and "->" in text
        assert cfg.edge_count() > 0


class TestInstrumentation:
    def test_inserts_reconfigure_before_calls(self):
        program = instrument_reconfiguration(loop_program(), CONTEXTS)
        body = program.main.body[1].body  # while body
        kinds = [type(s).__name__ for s in body]
        assert kinds == ["Reconfigure", "FpgaCall", "Reconfigure", "FpgaCall",
                        "Assign"]
        assert body[0].context == "config1"
        assert body[2].context == "config2"

    def test_consecutive_same_context_shares_download(self):
        fb = FunctionBuilder("main", [])
        fb.fpga_call("A", (), target="x")
        fb.fpga_call("A", (), target="y")
        fb.ret()
        program = ProgramBuilder().add(fb).build()
        instrumented = instrument_reconfiguration(program, {"A": "config1"})
        reconfigs = [s for s in instrumented.walk() if isinstance(s, Reconfigure)]
        assert len(reconfigs) == 1

    def test_branch_invalidates_known_context(self):
        fb = FunctionBuilder("main", ["x"])
        fb.fpga_call("A", (), target="a")
        with fb.if_(Var("x")):
            fb.assign("y", Const(1))
        fb.fpga_call("A", (), target="b")  # context unknown after the if
        fb.ret()
        program = ProgramBuilder().add(fb).build()
        instrumented = instrument_reconfiguration(program, {"A": "config1"})
        reconfigs = [s for s in instrumented.walk() if isinstance(s, Reconfigure)]
        assert len(reconfigs) == 2

    def test_skip_sids_produces_faulty_program(self):
        program = loop_program()
        skip = {s.sid for s in program.walk()
                if isinstance(s, FpgaCall) and s.func == "B"}
        faulty = instrument_reconfiguration(program, CONTEXTS, skip_sids=skip)
        reconfigs = [s for s in faulty.walk() if isinstance(s, Reconfigure)]
        assert all(r.context == "config1" for r in reconfigs)

    def test_missing_context_mapping_rejected(self):
        with pytest.raises(KeyError):
            instrument_reconfiguration(loop_program(), {"A": "config1"})

    def test_original_untouched(self):
        program = loop_program()
        before = program.statement_count()
        instrument_reconfiguration(program, CONTEXTS)
        assert program.statement_count() == before

    def test_strip_removes_all(self):
        program = instrument_reconfiguration(loop_program(), CONTEXTS)
        stripped = strip_reconfiguration(program)
        assert not [s for s in stripped.walk() if isinstance(s, Reconfigure)]

    def test_instrumented_program_runs_consistently(self):
        program = instrument_reconfiguration(loop_program(), CONTEXTS)
        interp = Interpreter(
            program,
            externals={"A": lambda v: v + 1, "B": lambda v: v * 2},
            context_map=CONTEXTS,
        )
        result = interp.run([4])
        assert result.returned == 4
        assert result.consistency_violations == []

    def test_faulty_program_violates_at_runtime(self):
        program = loop_program()
        skip = {s.sid for s in program.walk()
                if isinstance(s, FpgaCall) and s.func == "B"}
        faulty = instrument_reconfiguration(program, CONTEXTS, skip_sids=skip)
        interp = Interpreter(
            faulty,
            externals={"A": lambda v: v + 1, "B": lambda v: v * 2},
            context_map=CONTEXTS,
        )
        result = interp.run([2])
        assert "B" in result.consistency_violations
