"""Tests for the software IR AST and builders."""

import pytest

from repro.swir import (
    Assign,
    BinOp,
    Call,
    Const,
    FpgaCall,
    FunctionBuilder,
    If,
    Program,
    ProgramBuilder,
    Reconfigure,
    Return,
    UnOp,
    Var,
    While,
)


class TestExpressions:
    def test_variables(self):
        expr = BinOp("+", Var("x"), BinOp("*", Var("y"), Const(2)))
        assert expr.variables() == {"x", "y"}
        assert Call("f", (Var("a"), Const(1))).variables() == {"a"}
        assert UnOp("-", Var("z")).variables() == {"z"}

    def test_unknown_operators_rejected(self):
        with pytest.raises(ValueError):
            BinOp("**", Const(1), Const(2))
        with pytest.raises(ValueError):
            UnOp("+", Const(1))

    def test_str_rendering(self):
        expr = BinOp("<", Var("i"), Const(10))
        assert str(expr) == "(i < 10)"
        assert str(Call("f", (Const(1),))) == "f(1)"


class TestStatements:
    def test_sids_unique(self):
        a = Assign("x", Const(1))
        b = Assign("x", Const(2))
        assert a.sid != b.sid

    def test_str_rendering(self):
        assert str(Assign("x", Const(1))) == "x = 1;"
        assert "fpga::f" in str(FpgaCall("f", (), target="r"))
        assert "reconfigure" in str(Reconfigure("c1"))
        assert str(Return(Var("x"))) == "return x;"


class TestProgram:
    def test_entry_must_exist(self):
        with pytest.raises(ValueError):
            Program({}, entry="main")

    def test_walk_visits_nested(self):
        inner = Assign("y", Const(1))
        stmt = If(Const(1), [While(Const(0), [inner])], [Assign("z", Const(2))])
        fb = FunctionBuilder("main", [])
        fb.stmt(stmt)
        fb.ret()
        program = ProgramBuilder().add(fb).build()
        sids = [s.sid for s in program.walk()]
        assert inner.sid in sids
        assert len(sids) == program.statement_count() == 5

    def test_fpga_functions_called(self):
        fb = FunctionBuilder("main", [])
        fb.fpga_call("DIST", ())
        fb.fpga_call("ROOT", ())
        fb.ret()
        program = ProgramBuilder().add(fb).build()
        assert program.fpga_functions_called() == {"DIST", "ROOT"}


class TestBuilder:
    def test_structured_blocks(self):
        fb = FunctionBuilder("f", ["x"])
        with fb.if_(BinOp(">", Var("x"), Const(0))):
            fb.assign("y", Const(1))
        with fb.while_(BinOp("<", Var("y"), Const(5))):
            fb.assign("y", BinOp("+", Var("y"), Const(1)))
        fb.ret(Var("y"))
        function = fb.build()
        assert isinstance(function.body[0], If)
        assert isinstance(function.body[1], While)
        assert isinstance(function.body[2], Return)

    def test_if_else(self):
        fb = FunctionBuilder("f", ["x"])
        with fb.if_else(Var("x")) as orelse:
            fb.assign("r", Const(1))
        with orelse():
            fb.assign("r", Const(2))
        fb.ret(Var("r"))
        function = fb.build()
        stmt = function.body[0]
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_duplicate_function_rejected(self):
        pb = ProgramBuilder()
        pb.add(FunctionBuilder("main", []))
        with pytest.raises(ValueError):
            pb.add(FunctionBuilder("main", []))

    def test_unclosed_block_detected(self):
        fb = FunctionBuilder("f", [])
        fb._stack.append([])  # simulate an unclosed block
        with pytest.raises(RuntimeError):
            fb.build()
