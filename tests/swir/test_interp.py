"""Tests for the IR interpreter: semantics, coverage, faults, journals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swir import (
    BinOp,
    Call,
    Const,
    FunctionBuilder,
    Interpreter,
    InterpError,
    ProgramBuilder,
    UnOp,
    Var,
)
from repro.swir.interp import Fault, _wrap


def build_program(body_fn, params=("x",), name="main", extra_functions=()):
    fb = FunctionBuilder(name, list(params))
    body_fn(fb)
    pb = ProgramBuilder(name)
    pb.add(fb)
    for function in extra_functions:
        pb.add(function)
    return pb.build()


class TestArithmetic:
    def test_c_like_division_truncates_toward_zero(self):
        prog = build_program(lambda fb: fb.ret(
            BinOp("/", Var("x"), Const(2))))
        interp = Interpreter(prog)
        assert interp.run([7]).returned == 3
        assert interp.run([-7]).returned == -3

    def test_modulo_sign_follows_dividend(self):
        prog = build_program(lambda fb: fb.ret(
            BinOp("%", Var("x"), Const(3))))
        interp = Interpreter(prog)
        assert interp.run([7]).returned == 1
        assert interp.run([-7]).returned == -1

    def test_division_by_zero(self):
        prog = build_program(lambda fb: fb.ret(BinOp("/", Var("x"), Const(0))))
        with pytest.raises(InterpError):
            Interpreter(prog).run([1])

    def test_overflow_wraps_32bit(self):
        prog = build_program(lambda fb: fb.ret(
            BinOp("+", Var("x"), Const(1))))
        assert Interpreter(prog).run([2**31 - 1]).returned == -(2**31)

    def test_shifts(self):
        prog = build_program(lambda fb: fb.ret(
            BinOp("<<", Var("x"), Const(4))))
        assert Interpreter(prog).run([3]).returned == 48
        prog2 = build_program(lambda fb: fb.ret(
            BinOp(">>", Var("x"), Const(2))))
        assert Interpreter(prog2).run([-8]).returned == -2  # arithmetic

    def test_logic_short_circuit(self):
        # (x != 0) && (10 / x > 1): must not divide when x == 0.
        prog = build_program(lambda fb: fb.ret(BinOp(
            "&&", BinOp("!=", Var("x"), Const(0)),
            BinOp(">", BinOp("/", Const(10), Var("x")), Const(1)))))
        interp = Interpreter(prog)
        assert interp.run([0]).returned == 0
        assert interp.run([5]).returned == 1

    @settings(max_examples=60, deadline=None)
    @given(st.integers(-2**31, 2**31 - 1), st.integers(-2**31, 2**31 - 1))
    def test_wrap_is_involutive_for_sums(self, a, b):
        assert _wrap(_wrap(a) + _wrap(b)) == _wrap(a + b)


class TestControlFlow:
    def test_while_loop_sum(self):
        def body(fb):
            fb.assign("acc", Const(0))
            fb.assign("i", Const(0))
            with fb.while_(BinOp("<", Var("i"), Var("x"))):
                fb.assign("acc", BinOp("+", Var("acc"), Var("i")))
                fb.assign("i", BinOp("+", Var("i"), Const(1)))
            fb.ret(Var("acc"))

        prog = build_program(body)
        assert Interpreter(prog).run([5]).returned == 10

    def test_nested_if(self):
        def body(fb):
            with fb.if_else(BinOp(">", Var("x"), Const(0))) as orelse:
                with fb.if_(BinOp(">", Var("x"), Const(10))):
                    fb.ret(Const(2))
                fb.ret(Const(1))
            with orelse():
                fb.ret(Const(0))

        prog = build_program(body)
        interp = Interpreter(prog)
        assert interp.run([20]).returned == 2
        assert interp.run([5]).returned == 1
        assert interp.run([-1]).returned == 0

    def test_step_limit(self):
        def body(fb):
            with fb.while_(Const(1)):
                fb.assign("x", Const(0))
            fb.ret()

        prog = build_program(body)
        with pytest.raises(InterpError, match="step limit"):
            Interpreter(prog, max_steps=1000).run([0])

    def test_function_calls(self):
        callee = FunctionBuilder("double", ["v"])
        callee.ret(BinOp("*", Var("v"), Const(2)))
        prog = build_program(
            lambda fb: fb.ret(Call("double", (Var("x"),))),
            extra_functions=[callee.build()],
        )
        assert Interpreter(prog).run([21]).returned == 42

    def test_externals(self):
        prog = build_program(lambda fb: fb.ret(Call("host_sq", (Var("x"),))))
        interp = Interpreter(prog, externals={"host_sq": lambda v: v * v})
        assert interp.run([9]).returned == 81

    def test_unknown_function(self):
        prog = build_program(lambda fb: fb.ret(Call("missing", ())))
        with pytest.raises(InterpError, match="unknown function"):
            Interpreter(prog).run([0])

    def test_input_validation(self):
        prog = build_program(lambda fb: fb.ret(Var("x")))
        interp = Interpreter(prog)
        with pytest.raises(InterpError):
            interp.run([1, 2])
        with pytest.raises(InterpError):
            interp.run({})


class TestCoverage:
    def test_branch_and_statement_coverage(self):
        def body(fb):
            with fb.if_(BinOp(">", Var("x"), Const(0))):
                fb.assign("y", Const(1))
            fb.ret(Const(0))

        prog = build_program(body)
        interp = Interpreter(prog)
        taken = interp.run([5]).coverage
        if_sid = prog.main.body[0].sid
        assert (if_sid, True) in taken.branches_hit
        assert (if_sid, False) not in taken.branches_hit
        not_taken = interp.run([-5]).coverage
        assert (if_sid, False) in not_taken.branches_hit

    def test_condition_coverage_atoms(self):
        def body(fb):
            with fb.if_(BinOp("&&", BinOp(">", Var("x"), Const(0)),
                              BinOp("<", Var("x"), Const(10)))):
                fb.assign("y", Const(1))
            fb.ret(Const(0))

        prog = build_program(body)
        result = Interpreter(prog).run([5])
        # Both atoms evaluated True once.
        assert len(result.coverage.conditions_hit) == 2
        result2 = Interpreter(prog).run([-5])
        # Short circuit: only the first atom evaluated (False).
        assert len(result2.coverage.conditions_hit) == 1

    def test_uninitialized_read_reported(self):
        prog = build_program(lambda fb: fb.ret(BinOp("+", Var("x"), Var("ghost"))))
        result = Interpreter(prog).run([1])
        assert result.uninitialized_reads == ["ghost"]
        assert result.returned == 1  # ghost reads as 0


class TestFaults:
    def test_fault_flips_assigned_bit(self):
        def body(fb):
            fb.assign("y", Const(0))
            fb.ret(Var("y"))

        prog = build_program(body, params=())
        sid = prog.main.body[0].sid
        interp = Interpreter(prog)
        assert interp.run([]).returned == 0
        faulty = interp.run([], fault=Fault(sid, 3, 1))
        assert faulty.returned == 8

    def test_fault_stuck_zero(self):
        def body(fb):
            fb.assign("y", Const(0xFF))
            fb.ret(Var("y"))

        prog = build_program(body, params=())
        sid = prog.main.body[0].sid
        faulty = Interpreter(prog).run([], fault=Fault(sid, 0, 0))
        assert faulty.returned == 0xFE


class TestFpgaJournal:
    def test_journal_and_violations(self):
        def body(fb):
            fb.reconfigure("config1")
            fb.fpga_call("DIST", (Var("x"),), target="d")
            fb.fpga_call("ROOT", (Var("d"),), target="r")  # wrong context!
            fb.ret(Var("r"))

        prog = build_program(body)
        interp = Interpreter(
            prog,
            externals={"DIST": lambda v: v * 2, "ROOT": lambda v: v // 2},
            context_map={"DIST": "config1", "ROOT": "config2"},
        )
        result = interp.run([10])
        assert result.returned == 10
        assert result.fpga_journal == [("DIST", "config1"), ("ROOT", "config1")]
        assert result.consistency_violations == ["ROOT"]
