"""Differential fuzzing: compiled engine vs tree-walking interpreter.

The compiled engine's contract is *bit-identical* execution: for any
program and any inputs, both engines must agree on the returned value,
the final environment, every coverage set, the defect reports
(uninitialised reads, in order), the FPGA journal with its consistency
violations, and the step count — or raise the same ``InterpError``.

Three layers of evidence:

- hypothesis-generated random programs (expressions over the full
  operator set, nested if/while, function calls, FPGA calls and
  reconfigurations, faults injected at random sites);
- the three registered workloads' level-4 step functions over dense
  input grids;
- the full instrumented level-3 SW program of every workload (correct
  and deliberately broken instrumentation, so consistency-violation
  reporting is exercised).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.swir.ast import (
    Assign,
    BIN_OPS,
    BinOp,
    Call,
    Const,
    FpgaCall,
    Function,
    If,
    Program,
    Reconfigure,
    Return,
    UnOp,
    Var,
    While,
)
from repro.swir.engine import CompiledEngine, compile_program, create_engine
from repro.swir.interp import Fault, InterpError, Interpreter

#: Step budget for fuzzed runs: small enough that runaway loops fail
#: fast, large enough that terminating programs finish.
FUZZ_MAX_STEPS = 3_000

VAR_NAMES = ("p0", "p1", "a", "b", "c")
FPGA_FUNCS = ("F0", "F1")
CONTEXTS = {"F0": "config1", "F1": "config2"}


def run_both(program, inputs, externals=None, context_map=None, fault=None,
             max_steps=FUZZ_MAX_STEPS):
    """Run under both engines; return the two normalized outcomes."""
    outcomes = []
    for engine in ("ast", "compiled"):
        executor = create_engine(program, engine=engine,
                                 externals=externals,
                                 context_map=context_map,
                                 max_steps=max_steps)
        try:
            result = executor.run(list(inputs) if isinstance(inputs, list)
                                  else inputs, fault=fault)
        except InterpError as exc:
            outcomes.append(("error", str(exc)))
        else:
            outcomes.append(("ok", result.fingerprint()))
    return outcomes


def assert_equivalent(program, inputs, **kwargs):
    ast_out, compiled_out = run_both(program, inputs, **kwargs)
    assert ast_out == compiled_out, (
        f"engines diverged on inputs {inputs}:\n ast: {ast_out}\n "
        f"compiled: {compiled_out}")


# -- hypothesis strategies ----------------------------------------------------

def exprs(depth: int = 3):
    leaf = st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31 - 1).map(Const),
        st.sampled_from(VAR_NAMES).map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(BIN_OPS), children, children).map(
                lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(("-", "~", "!")), children).map(
                lambda t: UnOp(*t)),
            st.tuples(children,).map(
                lambda t: Call("helper", (t[0],))),
        )

    return st.recursive(leaf, extend, max_leaves=8)


def stmts(depth: int = 2):
    assign = st.tuples(st.sampled_from(VAR_NAMES), exprs()).map(
        lambda t: Assign(*t))
    ret = exprs().map(lambda e: Return(e))
    reconfigure = st.sampled_from(sorted(set(CONTEXTS.values()))).map(
        Reconfigure)
    fpga = st.tuples(st.sampled_from(FPGA_FUNCS), exprs(),
                     st.sampled_from(VAR_NAMES)).map(
        lambda t: FpgaCall(t[0], (t[1],), target=t[2]))
    leaf = st.one_of(assign, ret, reconfigure, fpga)
    if depth == 0:
        return leaf
    inner = stmts(depth - 1)
    if_stmt = st.tuples(exprs(), st.lists(inner, max_size=3),
                        st.lists(inner, max_size=2)).map(
        lambda t: If(t[0], t[1], t[2]))
    while_stmt = st.tuples(exprs(), st.lists(inner, min_size=1, max_size=3)).map(
        lambda t: While(t[0], t[1]))
    return st.one_of(assign, ret, reconfigure, fpga, if_stmt, while_stmt)


programs = st.lists(stmts(), min_size=1, max_size=8).map(
    lambda body: Program({
        "main": Function("main", ("p0", "p1"), body),
        "helper": Function("helper", ("h",),
                           [Return(BinOp("^", BinOp("*", Var("h"), Const(3)),
                                         Const(5)))]),
    }))

input_vectors = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    min_size=2, max_size=2)


class TestFuzzedPrograms:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(program=programs, vector=input_vectors)
    def test_random_programs_agree(self, program, vector):
        assert_equivalent(program, vector,
                          externals={"ext": lambda x: x + 1},
                          context_map=CONTEXTS)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(program=programs, vector=input_vectors,
           bit=st.integers(min_value=0, max_value=31),
           stuck=st.integers(min_value=0, max_value=1),
           pick=st.integers(min_value=0, max_value=10**6))
    def test_random_programs_agree_under_fault(self, program, vector, bit,
                                               stuck, pick):
        sids = sorted(s.sid for s in program.walk())
        fault = Fault(sid=sids[pick % len(sids)], bit=bit, stuck=stuck)
        assert_equivalent(program, vector, context_map=CONTEXTS, fault=fault)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(vector=st.lists(st.integers(-500, 500), min_size=2, max_size=2))
    def test_error_paths_agree(self, vector):
        # Division by zero and step overflow must raise identically.
        body = [
            Assign("a", BinOp("/", Var("p0"), Var("p1"))),
            While(BinOp(">", Var("a"), Const(-10**9)),
                  [Assign("a", BinOp("-", Var("a"), Const(0)))]),
            Return(Var("a")),
        ]
        program = Program({"main": Function("main", ("p0", "p1"), body)})
        assert_equivalent(program, vector)


# -- the workloads' real step functions ---------------------------------------

def _workload_functions():
    from repro.facerec.swmodels import root_function
    from repro.workloads.blockcipher import (
        sbox_step_function,
        xtime_step_function,
    )
    from repro.workloads.edgescan import (
        mag_step_function,
        thresh_step_function,
    )

    return {
        "facerec.ROOT": root_function(16),
        "edgescan.MAG_STEP": mag_step_function(),
        "edgescan.THRESH_STEP": thresh_step_function(),
        "blockcipher.XTIME_STEP": xtime_step_function(),
        "blockcipher.SBOX_STEP": sbox_step_function(),
    }


@pytest.mark.parametrize("label", sorted(_workload_functions()))
def test_workload_step_functions_agree(label):
    function = _workload_functions()[label]
    program = Program({function.name: function}, entry=function.name)
    arity = len(function.params)
    grid = [-300, -17, -1, 0, 1, 7, 63, 128, 255, 4096, 30_000]
    vectors = ([[v] for v in grid] if arity == 1 else
               [[a, b] for a in grid[::2] for b in grid[1::2]])
    for vector in vectors:
        assert_equivalent(program, vector, max_steps=200_000)


# -- the level-3 instrumented SW programs -------------------------------------

@pytest.mark.parametrize("workload", ["facerec", "edgescan", "blockcipher"])
@pytest.mark.parametrize("broken", [False, True])
def test_level3_sw_programs_agree(workload, broken):
    from repro.api import CampaignSpec, Session
    from repro.flow.level3 import build_sw_program, stub_task_externals

    workload_overrides = {
        "facerec": dict(identities=2, poses=1, size=32, frames=2),
        "edgescan": dict(frames=2),
        "blockcipher": dict(frames=2, params={"block_words": 8}),
    }[workload]
    session = Session(CampaignSpec(workload=workload, **workload_overrides))
    partition = session.value("partition")["reconfigurable"]
    skip = {sorted(partition.fpga_tasks)[0]} if broken else None
    program, context_map = build_sw_program(session.graph, partition,
                                            skip_instrumentation=skip)
    ast_out, compiled_out = run_both(program, [3],
                                     externals=stub_task_externals(program),
                                     context_map=context_map,
                                     max_steps=200_000)
    assert ast_out == compiled_out
    status, payload = compiled_out
    assert status == "ok"
    violations = payload[7]
    assert bool(violations) == broken


# -- compiler structure -------------------------------------------------------

def test_compiled_program_is_flat_with_resolved_jumps():
    """The compiled form is a flat list; jumps are numeric, pre-resolved."""
    body = [
        Assign("a", Const(1)),
        While(BinOp("<", Var("a"), Const(5)),
              [If(BinOp("&", Var("a"), Const(1)),
                  [Assign("a", BinOp("+", Var("a"), Const(2)))],
                  [Assign("a", BinOp("+", Var("a"), Const(1)))])]),
        Return(Var("a")),
    ]
    program = Program({"main": Function("main", (), body)})
    compiled = compile_program(program)
    main = compiled.functions["main"]
    assert main.code and all(callable(instr) for instr in main.code)
    listing = compiled.disassemble()
    assert "WHILE_TEST" in listing and "JUMP ->" in listing
    # Every jump target in the listing is inside the instruction list.
    import re

    targets = [int(t) for t in re.findall(r"-> (\d+)", listing)]
    assert targets and all(0 <= t <= len(main.code) for t in targets)


def test_create_engine_rejects_unknown_names():
    program = Program({"main": Function("main", (), [Return(Const(1))])})
    with pytest.raises(ValueError, match="unknown engine"):
        create_engine(program, engine="jit")
    assert isinstance(create_engine(program, "ast"), Interpreter)
    assert isinstance(create_engine(program, "compiled"), CompiledEngine)
