"""Differential fuzzing: compiled + batched engines vs the interpreter.

Every engine's contract is *bit-identical* execution: for any program
and any inputs, all engines must agree on the returned value, the final
environment, every coverage set, the defect reports (uninitialised
reads, in order), the FPGA journal with its consistency violations, and
the step count — or raise the same ``InterpError``.  The batched engine
is additionally checked lane-wise: ``run_batch`` outcomes (including
ragged final blocks and per-lane faults/errors) must equal standalone
runs.

Three layers of evidence:

- hypothesis-generated random programs (expressions over the full
  operator set, nested if/while, function calls, FPGA calls and
  reconfigurations, faults injected at random sites);
- the three registered workloads' level-4 step functions over dense
  input grids;
- the full instrumented level-3 SW program of every workload (correct
  and deliberately broken instrumentation, so consistency-violation
  reporting is exercised).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.swir.ast import (
    Assign,
    BIN_OPS,
    BinOp,
    Call,
    Const,
    FpgaCall,
    Function,
    If,
    Program,
    Reconfigure,
    Return,
    UnOp,
    Var,
    While,
)
from repro.swir.engine import CompiledEngine, compile_program, create_engine
from repro.swir.interp import Fault, InterpError, Interpreter

#: Step budget for fuzzed runs: small enough that runaway loops fail
#: fast, large enough that terminating programs finish.
FUZZ_MAX_STEPS = 3_000

VAR_NAMES = ("p0", "p1", "a", "b", "c")
FPGA_FUNCS = ("F0", "F1")
CONTEXTS = {"F0": "config1", "F1": "config2"}

#: Every registered engine, differentially pinned against "ast".
ALL_ENGINES = ("ast", "compiled", "batched")


def run_both(program, inputs, externals=None, context_map=None, fault=None,
             max_steps=FUZZ_MAX_STEPS, engines=ALL_ENGINES):
    """Run under every engine; return the normalized outcomes."""
    outcomes = []
    for engine in engines:
        executor = create_engine(program, engine=engine,
                                 externals=externals,
                                 context_map=context_map,
                                 max_steps=max_steps)
        try:
            result = executor.run(list(inputs) if isinstance(inputs, list)
                                  else inputs, fault=fault)
        except InterpError as exc:
            outcomes.append(("error", str(exc)))
        else:
            outcomes.append(("ok", result.fingerprint()))
    return outcomes


def assert_equivalent(program, inputs, **kwargs):
    outcomes = run_both(program, inputs, **kwargs)
    reference = outcomes[0]
    for engine, outcome in zip(ALL_ENGINES[1:], outcomes[1:]):
        assert outcome == reference, (
            f"engines diverged on inputs {inputs}:\n ast: {reference}\n "
            f"{engine}: {outcome}")


# -- hypothesis strategies ----------------------------------------------------

def exprs(depth: int = 3):
    leaf = st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31 - 1).map(Const),
        st.sampled_from(VAR_NAMES).map(Var),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(BIN_OPS), children, children).map(
                lambda t: BinOp(*t)),
            st.tuples(st.sampled_from(("-", "~", "!")), children).map(
                lambda t: UnOp(*t)),
            st.tuples(children,).map(
                lambda t: Call("helper", (t[0],))),
        )

    return st.recursive(leaf, extend, max_leaves=8)


def stmts(depth: int = 2):
    assign = st.tuples(st.sampled_from(VAR_NAMES), exprs()).map(
        lambda t: Assign(*t))
    ret = exprs().map(lambda e: Return(e))
    reconfigure = st.sampled_from(sorted(set(CONTEXTS.values()))).map(
        Reconfigure)
    fpga = st.tuples(st.sampled_from(FPGA_FUNCS), exprs(),
                     st.sampled_from(VAR_NAMES)).map(
        lambda t: FpgaCall(t[0], (t[1],), target=t[2]))
    leaf = st.one_of(assign, ret, reconfigure, fpga)
    if depth == 0:
        return leaf
    inner = stmts(depth - 1)
    if_stmt = st.tuples(exprs(), st.lists(inner, max_size=3),
                        st.lists(inner, max_size=2)).map(
        lambda t: If(t[0], t[1], t[2]))
    while_stmt = st.tuples(exprs(), st.lists(inner, min_size=1, max_size=3)).map(
        lambda t: While(t[0], t[1]))
    return st.one_of(assign, ret, reconfigure, fpga, if_stmt, while_stmt)


programs = st.lists(stmts(), min_size=1, max_size=8).map(
    lambda body: Program({
        "main": Function("main", ("p0", "p1"), body),
        "helper": Function("helper", ("h",),
                           [Return(BinOp("^", BinOp("*", Var("h"), Const(3)),
                                         Const(5)))]),
    }))

input_vectors = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    min_size=2, max_size=2)


class TestFuzzedPrograms:
    @settings(max_examples=120, deadline=None, derandomize=True)
    @given(program=programs, vector=input_vectors)
    def test_random_programs_agree(self, program, vector):
        assert_equivalent(program, vector,
                          externals={"ext": lambda x: x + 1},
                          context_map=CONTEXTS)

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(program=programs, vector=input_vectors,
           bit=st.integers(min_value=0, max_value=31),
           stuck=st.integers(min_value=0, max_value=1),
           pick=st.integers(min_value=0, max_value=10**6))
    def test_random_programs_agree_under_fault(self, program, vector, bit,
                                               stuck, pick):
        sids = sorted(s.sid for s in program.walk())
        fault = Fault(sid=sids[pick % len(sids)], bit=bit, stuck=stuck)
        assert_equivalent(program, vector, context_map=CONTEXTS, fault=fault)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(vector=st.lists(st.integers(-500, 500), min_size=2, max_size=2))
    def test_error_paths_agree(self, vector):
        # Division by zero and step overflow must raise identically.
        body = [
            Assign("a", BinOp("/", Var("p0"), Var("p1"))),
            While(BinOp(">", Var("a"), Const(-10**9)),
                  [Assign("a", BinOp("-", Var("a"), Const(0)))]),
            Return(Var("a")),
        ]
        program = Program({"main": Function("main", ("p0", "p1"), body)})
        assert_equivalent(program, vector)


# -- the workloads' real step functions ---------------------------------------

def _workload_functions():
    from repro.facerec.swmodels import root_function
    from repro.workloads.blockcipher import (
        sbox_step_function,
        xtime_step_function,
    )
    from repro.workloads.edgescan import (
        mag_step_function,
        thresh_step_function,
    )

    return {
        "facerec.ROOT": root_function(16),
        "edgescan.MAG_STEP": mag_step_function(),
        "edgescan.THRESH_STEP": thresh_step_function(),
        "blockcipher.XTIME_STEP": xtime_step_function(),
        "blockcipher.SBOX_STEP": sbox_step_function(),
    }


@pytest.mark.parametrize("label", sorted(_workload_functions()))
def test_workload_step_functions_agree(label):
    function = _workload_functions()[label]
    program = Program({function.name: function}, entry=function.name)
    arity = len(function.params)
    grid = [-300, -17, -1, 0, 1, 7, 63, 128, 255, 4096, 30_000]
    vectors = ([[v] for v in grid] if arity == 1 else
               [[a, b] for a in grid[::2] for b in grid[1::2]])
    for vector in vectors:
        assert_equivalent(program, vector, max_steps=200_000)


# -- the level-3 instrumented SW programs -------------------------------------

@pytest.mark.parametrize("workload", ["facerec", "edgescan", "blockcipher"])
@pytest.mark.parametrize("broken", [False, True])
def test_level3_sw_programs_agree(workload, broken):
    from repro.api import CampaignSpec, Session
    from repro.flow.level3 import build_sw_program, stub_task_externals

    workload_overrides = {
        "facerec": dict(identities=2, poses=1, size=32, frames=2),
        "edgescan": dict(frames=2),
        "blockcipher": dict(frames=2, params={"block_words": 8}),
    }[workload]
    session = Session(CampaignSpec(workload=workload, **workload_overrides))
    partition = session.value("partition")["reconfigurable"]
    skip = {sorted(partition.fpga_tasks)[0]} if broken else None
    program, context_map = build_sw_program(session.graph, partition,
                                            skip_instrumentation=skip)
    outcomes = run_both(program, [3],
                        externals=stub_task_externals(program),
                        context_map=context_map,
                        max_steps=200_000)
    assert all(outcome == outcomes[0] for outcome in outcomes[1:])
    status, payload = outcomes[0]
    assert status == "ok"
    violations = payload[7]
    assert bool(violations) == broken


# -- compiler structure -------------------------------------------------------

def test_compiled_program_is_flat_with_resolved_jumps():
    """The compiled form is a flat list; jumps are numeric, pre-resolved."""
    body = [
        Assign("a", Const(1)),
        While(BinOp("<", Var("a"), Const(5)),
              [If(BinOp("&", Var("a"), Const(1)),
                  [Assign("a", BinOp("+", Var("a"), Const(2)))],
                  [Assign("a", BinOp("+", Var("a"), Const(1)))])]),
        Return(Var("a")),
    ]
    program = Program({"main": Function("main", (), body)})
    compiled = compile_program(program)
    main = compiled.functions["main"]
    assert main.code and all(callable(instr) for instr in main.code)
    listing = compiled.disassemble()
    assert "WHILE_TEST" in listing and "JUMP ->" in listing
    # Every jump target in the listing is inside the instruction list.
    import re

    targets = [int(t) for t in re.findall(r"-> (\d+)", listing)]
    assert targets and all(0 <= t <= len(main.code) for t in targets)


def test_create_engine_rejects_unknown_names():
    program = Program({"main": Function("main", (), [Return(Const(1))])})
    with pytest.raises(ValueError, match="unknown engine"):
        create_engine(program, engine="jit")
    assert isinstance(create_engine(program, "ast"), Interpreter)
    assert isinstance(create_engine(program, "compiled"), CompiledEngine)


# -- batched execution: lane semantics + the shared JIT cache -----------------

def _batch_program():
    """A program exercising calls, loops, FPGA journal and div-by-zero."""
    body = [
        Assign("a", Const(0)),
        Assign("b", Const(0)),
        While(BinOp("<", Var("b"), Var("p0")),
              [Assign("a", BinOp("+", Var("a"),
                                 Call("helper", (Var("b"),)))),
               Assign("b", BinOp("+", Var("b"), Const(1)))]),
        Reconfigure("config1"),
        FpgaCall("F0", (Var("a"),), target="c"),
        Assign("a", BinOp("/", Var("a"), Var("p1"))),
        Return(BinOp("^", Var("a"), Var("c"))),
    ]
    return Program({
        "main": Function("main", ("p0", "p1"), body),
        "helper": Function("helper", ("h",),
                           [Return(BinOp("*", Var("h"), Const(3)))]),
    })


class TestRunBatch:
    EXTERNALS = {"F0": lambda a: a + 11}

    def _engines(self, batch_width=64):
        from repro.swir.engine_batched import BatchedEngine

        program = _batch_program()
        interp = Interpreter(program, externals=dict(self.EXTERNALS),
                             context_map=CONTEXTS,
                             max_steps=FUZZ_MAX_STEPS)
        batched = BatchedEngine(program, externals=dict(self.EXTERNALS),
                                context_map=CONTEXTS,
                                max_steps=FUZZ_MAX_STEPS,
                                batch_width=batch_width)
        return interp, batched

    def _reference(self, interp, vector, fault=None):
        try:
            return ("ok", interp.run(list(vector), fault=fault).fingerprint())
        except InterpError as exc:
            return ("error", str(exc))

    def _outcome(self, outcome):
        if outcome.ok:
            return ("ok", outcome.result.fingerprint())
        return ("error", outcome.error)

    def test_lanes_match_standalone_runs(self):
        interp, batched = self._engines()
        vectors = [[n, d] for n in range(-3, 9) for d in (-2, 0, 1, 3)]
        outcomes = batched.run_batch(vectors)
        assert len(outcomes) == len(vectors)
        for vector, outcome in zip(vectors, outcomes):
            assert self._outcome(outcome) == self._reference(interp, vector)
        # Division-by-zero lanes really did error without spoiling others.
        assert any(not o.ok for o in outcomes)
        assert any(o.ok for o in outcomes)

    def test_ragged_final_block(self):
        """A batch not divisible by batch_width: every lane still exact."""
        interp, batched = self._engines(batch_width=4)
        vectors = [[n, 1] for n in range(11)]  # 11 lanes, width 4: 4+4+3
        outcomes = batched.run_batch(vectors)
        assert len(outcomes) == 11
        for vector, outcome in zip(vectors, outcomes):
            assert self._outcome(outcome) == self._reference(interp, vector)

    def test_per_lane_faults(self):
        interp, batched = self._engines()
        program = batched.program
        sids = sorted(s.sid for f in program.functions.values()
                      for s in f.walk() if isinstance(s, Assign))
        vectors = [[4, 2]] * len(sids)
        faults = [Fault(sid=sid, bit=0, stuck=1) for sid in sids]
        outcomes = batched.run_batch(vectors, faults=faults)
        for vector, fault, outcome in zip(vectors, faults, outcomes):
            assert self._outcome(outcome) == \
                self._reference(interp, vector, fault=fault)

    def test_single_fault_broadcasts(self):
        interp, batched = self._engines()
        fault = Fault(sid=1, bit=0, stuck=1)
        outcomes = batched.run_batch([[2, 1], [5, 1]], faults=fault)
        for vector, outcome in zip([[2, 1], [5, 1]], outcomes):
            assert self._outcome(outcome) == \
                self._reference(interp, vector, fault=fault)

    def test_fault_length_mismatch_rejected(self):
        __, batched = self._engines()
        with pytest.raises(ValueError, match="faults length"):
            batched.run_batch([[1, 1], [2, 1]], faults=[None])

    def test_malformed_lane_is_isolated(self):
        interp, batched = self._engines()
        outcomes = batched.run_batch([[1, 1], [1], {"p0": 1}, [2, 1]])
        assert [o.ok for o in outcomes] == [True, False, False, True]
        assert "expects 2 inputs" in outcomes[1].error
        assert "missing inputs" in outcomes[2].error
        assert self._outcome(outcomes[3]) == self._reference(interp, [2, 1])


class TestJitCache:
    def test_second_engine_reuses_in_process_source(self):
        from repro.swir.engine_batched import BatchedEngine

        program = _batch_program()
        first = BatchedEngine(program)
        second = BatchedEngine(program)
        assert second.jit_source == first.jit_source
        assert second.jit_source_origin == "memory"

    def test_store_round_trip_is_byte_identical(self, tmp_path):
        from repro.store import CampaignStore
        from repro.swir import engine_batched
        from repro.swir.engine_batched import BatchedEngine

        program = _batch_program()
        externals = {"F0": lambda a: a + 11}
        store = CampaignStore(tmp_path / "store")
        first = BatchedEngine(program, externals=dict(externals),
                              context_map=CONTEXTS, store=store)
        assert first.jit_source_origin in ("generated", "memory")
        # A fresh process has an empty in-memory memo: simulate it.
        engine_batched._SOURCE_CACHE.clear()
        second = BatchedEngine(program, externals=dict(externals),
                               context_map=CONTEXTS, store=store)
        assert second.jit_source_origin == "store"
        assert second.jit_source == first.jit_source
        assert second.run([3, 1]).fingerprint() == \
            first.run([3, 1]).fingerprint()

    def test_jit_cache_off_skips_store(self, tmp_path):
        from repro.store import CampaignStore
        from repro.swir import engine_batched
        from repro.swir.engine_batched import (
            BatchedEngine,
            jit_cache_identity,
        )

        program = _batch_program()
        store = CampaignStore(tmp_path / "store")
        engine_batched._SOURCE_CACHE.clear()
        BatchedEngine(program, store=store, jit_cache=False)
        assert store.get_stage(
            jit_cache_identity(
                engine_batched.program_fingerprint(program))) is None

    def test_cross_process_store_reuse(self, tmp_path):
        """A second *process* reuses the persisted source byte-identically.

        Two fresh subprocesses build the same program (fresh sid
        counters, identical construction order), so its fingerprint —
        and therefore the store key — match across processes; the second
        must come back with origin == "store" and the same source bytes.
        """
        import subprocess
        import sys

        script = r"""
import sys
from repro.swir.ast import (Assign, BinOp, Call, Const, FpgaCall, Function,
                            Program, Reconfigure, Return, Var, While)
from repro.store import CampaignStore
from repro.swir.engine_batched import BatchedEngine

body = [
    Assign("a", Const(0)),
    Assign("b", Const(0)),
    While(BinOp("<", Var("b"), Var("p0")),
          [Assign("a", BinOp("+", Var("a"), Call("helper", (Var("b"),)))),
           Assign("b", BinOp("+", Var("b"), Const(1)))]),
    Reconfigure("config1"),
    FpgaCall("F0", (Var("a"),), target="c"),
    Assign("a", BinOp("/", Var("a"), Var("p1"))),
    Return(BinOp("^", Var("a"), Var("c"))),
]
program = Program({
    "main": Function("main", ("p0", "p1"), body),
    "helper": Function("helper", ("h",),
                       [Return(BinOp("*", Var("h"), Const(3)))]),
})
store = CampaignStore(sys.argv[1])
engine = BatchedEngine(program, externals={"F0": lambda a: a + 11},
                       context_map={"F0": "config1"}, store=store)
print(engine.jit_source_origin)
print(engine.program_key)
print(engine.run([5, 2]).returned)
print(len(engine.jit_source))
"""
        store_dir = str(tmp_path / "store")
        outputs = []
        for __ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, store_dir],
                capture_output=True, text=True, check=True)
            outputs.append(proc.stdout.split())
        (origin1, key1, ret1, size1), (origin2, key2, ret2, size2) = outputs
        assert origin1 == "generated"
        assert origin2 == "store"
        assert key1 == key2
        assert ret1 == ret2
        assert size1 == size2


def test_batched_engine_via_create_engine_spec():
    from repro.swir import EngineSpec
    from repro.swir.engine_batched import BatchedEngine

    program = _batch_program()
    engine = create_engine(
        program, engine=EngineSpec("batched", batch_width=8))
    assert isinstance(engine, BatchedEngine)
    assert engine.batch_width == 8
    engine = create_engine(program, engine="batched:jit_cache=false")
    assert engine.jit_cache is False
