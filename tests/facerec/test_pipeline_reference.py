"""Tests for camera, database, reference model, graph and tracing."""

import numpy as np
import pytest

from repro.facerec import (
    CameraConfig,
    FaceSampler,
    FacerecConfig,
    ReferenceModel,
    Trace,
    build_graph,
    case_study_partition,
    compare_traces,
    digest_token,
    enroll_database,
    synth_face,
)
from repro.facerec.database import extract_features
from repro.facerec.pipeline import CASE_STUDY_FPGA_TASKS
from repro.platform.partition import Side

CFG = FacerecConfig(identities=4, poses=2, size=32)


@pytest.fixture(scope="module")
def db():
    return enroll_database(CFG.identities, CFG.poses, CFG.size)


class TestCamera:
    def test_faces_deterministic(self):
        assert (synth_face(3, 1, 32) == synth_face(3, 1, 32)).all()

    def test_identities_differ(self):
        a = synth_face(0, 0, 32).astype(int)
        b = synth_face(1, 0, 32).astype(int)
        assert np.abs(a - b).mean() > 1.0

    def test_poses_differ(self):
        a = synth_face(0, 0, 32).astype(int)
        b = synth_face(0, 1, 32).astype(int)
        assert np.abs(a - b).mean() > 0.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CameraConfig(size=15)
        with pytest.raises(ValueError):
            CameraConfig(noise_sigma=-1)

    def test_sampler_noise(self):
        noisy = FaceSampler(CameraConfig(size=32, noise_sigma=5.0))
        clean = FaceSampler(CameraConfig(size=32, noise_sigma=0.0))
        a = noisy.capture(0, 0).astype(int)
        b = clean.capture(0, 0).astype(int)
        assert np.abs(a - b).mean() > 0.5

    def test_frames_helper(self):
        sampler = FaceSampler(CameraConfig(size=32))
        frames = sampler.frames([(0, 0), (1, 1)])
        assert len(frames) == 2
        assert frames[0].shape == (32, 32)


class TestDatabase:
    def test_cardinality(self, db):
        assert db.entries == CFG.identities * CFG.poses
        assert db.identities == CFG.identities
        assert db.matrix.shape[0] == len(db.labels)

    def test_row_lookup(self, db):
        row = db.row(2, 1)
        assert row.shape == (db.matrix.shape[1],)
        with pytest.raises(KeyError):
            db.row(99, 0)

    def test_words(self, db):
        assert db.words == db.matrix.size

    def test_enrollment_deterministic(self, db):
        again = enroll_database(CFG.identities, CFG.poses, CFG.size)
        assert (again.matrix == db.matrix).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            enroll_database(0, 1)


class TestReferenceModel:
    def test_recognises_noiseless_database_frames(self, db):
        ref = ReferenceModel(db)
        sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=0.0))
        shots = [(i, 0) for i in range(CFG.identities)]
        accuracy = ref.accuracy(shots, sampler.frames(shots))
        assert accuracy == 1.0

    def test_tolerates_noise(self, db):
        ref = ReferenceModel(db)
        sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=2.0))
        shots = [(i, 1) for i in range(CFG.identities)]
        accuracy = ref.accuracy(shots, sampler.frames(shots))
        assert accuracy >= 0.75

    def test_trace_emission(self, db):
        ref = ReferenceModel(db)
        frame = FaceSampler(CameraConfig(size=CFG.size)).capture(0, 0)
        events = []
        ref.recognize(frame, trace=events)
        channels = {channel for __, channel, __ in events}
        assert "c_feat" in channels and "c_dist" in channels

    def test_mismatched_shots(self, db):
        ref = ReferenceModel(db)
        with pytest.raises(ValueError):
            ref.accuracy([(0, 0)], [])


class TestGraph:
    def test_thirteen_modules(self, db):
        graph = build_graph(CFG, db)
        assert len(graph.tasks) == 13
        assert len(graph.channels) == 13

    def test_functional_run_matches_reference(self, db):
        graph = build_graph(CFG, db)
        ref = ReferenceModel(db)
        sampler = FaceSampler(CameraConfig(size=CFG.size, noise_sigma=1.0))
        shots = [(0, 0), (2, 1), (3, 0)]
        frames = sampler.frames(shots)
        results = graph.run_functional({"CAMERA": frames})
        expected = [ref.recognize(f) for f in frames]
        got = results["WINNER"]
        assert [(r[0], r[1], r[2]) for r in got] == [
            (e.identity, e.pose, e.distance) for e in expected
        ]

    def test_database_mismatch_rejected(self, db):
        with pytest.raises(ValueError):
            build_graph(FacerecConfig(identities=2, poses=2, size=32), db)

    def test_extract_features_length(self):
        from repro.facerec import stages
        frame = FaceSampler(CameraConfig(size=32)).capture(0, 0)
        assert extract_features(frame).shape == (stages.FEATURES,)

    def test_case_study_partition_shape(self, db):
        graph = build_graph(CFG, db)
        partition = case_study_partition(graph, with_fpga=True)
        assert partition.fpga_tasks == set(CASE_STUDY_FPGA_TASKS)
        assert partition.side("WINNER") is Side.SW
        assert partition.side("CAMERA") is Side.HW
        # hardwired HW excludes the FPGA tasks
        assert "DISTANCE" not in partition.hardwired_tasks

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FacerecConfig(identities=0)
        with pytest.raises(ValueError):
            FacerecConfig(size=33)


class TestTracing:
    def test_digest_stable_across_types(self):
        arr = np.array([1, 2, 3], dtype=np.int32)
        assert digest_token(arr) == digest_token(arr.copy())
        assert digest_token(arr) != digest_token(arr + 1)
        assert digest_token((arr, 5)) == digest_token((arr.copy(), 5))
        assert digest_token(1) != digest_token(1.0)
        assert digest_token(None) == digest_token(None)
        assert digest_token("x") != digest_token("y")

    def test_compare_traces_match(self):
        a = Trace("a")
        b = Trace("b")
        token = np.arange(10)
        a.record("c", token)
        b.record("c", token.copy())
        assert compare_traces(a, b) == []

    def test_compare_traces_mismatch_and_missing(self):
        a = Trace("a")
        b = Trace("b")
        a.record("c", 1)
        a.record("c", 2)
        b.record("c", 1)
        mismatches = compare_traces(a, b)
        assert len(mismatches) == 1
        assert mismatches[0].index == 1
        assert "missing" in str(mismatches[0])

    def test_channel_filter(self):
        a = Trace("a")
        b = Trace("b")
        a.record("keep", 1)
        a.record("drop", 2)
        b.record("keep", 1)
        assert compare_traces(a, b, channels=["keep"]) == []
        assert compare_traces(a, b) != []

    def test_token_count(self):
        trace = Trace("t")
        trace.record("a", 1)
        trace.record("a", 2)
        trace.record("b", 3)
        assert trace.token_count() == 3
