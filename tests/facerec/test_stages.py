"""Tests for the image-processing stage algorithms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facerec import stages
from repro.facerec.camera import bayer_mosaic, synth_face


@pytest.fixture(scope="module")
def face():
    return synth_face(identity=0, pose=0, size=64)


class TestBay:
    def test_shape_and_dtype(self, face):
        mosaic = bayer_mosaic(face)
        gray = stages.bay(mosaic)
        assert gray.shape == face.shape
        assert gray.dtype == np.uint8

    def test_roughly_inverts_mosaic(self, face):
        mosaic = bayer_mosaic(face)
        gray = stages.bay(mosaic)
        # Gain-corrected demosaic should approximate a smoothed original.
        diff = np.abs(gray.astype(int) - face.astype(int)).mean()
        assert diff < 30

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            bayer_mosaic(np.zeros((4, 4, 3), dtype=np.uint8))


class TestErosion:
    def test_erosion_never_increases(self, face):
        eroded = stages.erosion(face)
        assert (eroded <= face).all()

    def test_constant_image_fixed_point(self):
        img = np.full((16, 16), 100, dtype=np.uint8)
        assert (stages.erosion(img) == img).all()

    def test_removes_salt_noise(self):
        img = np.zeros((16, 16), dtype=np.uint8)
        img[8, 8] = 255  # single bright pixel
        assert stages.erosion(img).max() == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10**6))
    def test_idempotent_on_flat_regions(self, seed):
        rng = np.random.default_rng(seed)
        img = (rng.integers(0, 2, (12, 12)) * 200).astype(np.uint8)
        once = stages.erosion(img)
        # Erosion is monotone and anti-extensive.
        assert (stages.erosion(once) <= once).all()


class TestEdge:
    def test_flat_image_no_edges(self):
        img = np.full((16, 16), 77, dtype=np.uint8)
        assert stages.edge(img).max() == 0

    def test_step_edge_detected(self):
        img = np.zeros((16, 16), dtype=np.uint8)
        img[:, 8:] = 200
        edges = stages.edge(img)
        assert edges[:, 7:9].max() == 255
        assert edges[:, :4].max() == 0

    def test_output_saturated_uint8(self, face):
        edges = stages.edge(face)
        assert edges.dtype == np.uint8


class TestEllipse:
    def test_centered_blob(self):
        img = np.zeros((32, 32), dtype=np.uint8)
        img[12:20, 10:22] = 255
        __, (cx, cy, a, b) = stages.ellipse_fit(img)
        assert 14 <= cx <= 17
        assert 14 <= cy <= 17
        assert a >= 2 and b >= 2

    def test_empty_image_fallback(self):
        img = np.zeros((32, 32), dtype=np.uint8)
        __, (cx, cy, a, b) = stages.ellipse_fit(img)
        assert (cx, cy) == (16, 16)


class TestCrtbordLines:
    def test_window_shape(self, face):
        edges = stages.edge(face)
        window = stages.crtbord(edges, (32, 32, 10, 12))
        assert window.shape == (stages.WINDOW, stages.WINDOW)

    def test_degenerate_crop_falls_back(self):
        edges = np.arange(64 * 64, dtype=np.uint8).reshape(64, 64)
        window = stages.crtbord(edges, (0, 0, 0, 0))
        assert window.shape == (stages.WINDOW, stages.WINDOW)

    def test_crtline_rows_then_columns(self):
        window = np.arange(stages.WINDOW**2, dtype=np.uint8).reshape(
            stages.WINDOW, stages.WINDOW)
        lines = stages.crtline(window)
        assert lines.shape == (2 * stages.WINDOW, stages.WINDOW)
        assert (lines[: stages.WINDOW] == window).all()
        assert (lines[stages.WINDOW:] == window.T).all()

    def test_calcline_normalised(self):
        lines = np.ones((8, 8), dtype=np.uint8) * 10
        features = stages.calcline(lines)
        assert features.max() == 255
        assert (features == 255).all()  # equal rows -> equal features

    def test_calcline_zero_input(self):
        features = stages.calcline(np.zeros((4, 4), dtype=np.uint8))
        assert (features == 0).all()


class TestMatchingChain:
    def test_distance_shape_and_sign(self):
        feat = np.array([1, 2, 3], dtype=np.int32)
        db = np.array([[1, 2, 3], [2, 3, 4]], dtype=np.int32)
        diffs = stages.distance(feat, db)
        assert diffs.shape == (2, 3)
        assert (diffs[0] == 0).all()
        assert (diffs[1] == 1).all()

    def test_distance_width_mismatch(self):
        with pytest.raises(ValueError):
            stages.distance(np.zeros(3), np.zeros((2, 4)))

    def test_calcdist_is_squared_norm(self):
        diffs = np.array([[3, 4], [0, 0]], dtype=np.int64)
        sq = stages.calcdist(diffs)
        assert list(sq) == [25, 0]

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2**40))
    def test_isqrt_matches_math(self, value):
        assert stages.isqrt(value) == math.isqrt(value)

    def test_isqrt_negative_rejected(self):
        with pytest.raises(ValueError):
            stages.isqrt(-1)

    def test_root_vector(self):
        out = stages.root(np.array([0, 1, 25, 10**6]))
        assert list(out) == [0, 1, 5, 1000]

    def test_winner(self):
        dists = np.array([5, 2, 9])
        labels = [(0, 0), (7, 1), (3, 2)]
        assert stages.winner(dists, labels) == (7, 1, 2)

    def test_winner_length_mismatch(self):
        with pytest.raises(ValueError):
            stages.winner(np.array([1]), [])


class TestOpsEstimates:
    def test_all_positive_and_scale_with_size(self, face):
        small = face[:32, :32]
        assert stages.bay_ops(face) > stages.bay_ops(small) > 0
        assert stages.erosion_ops(face) > 0
        assert stages.edge_ops(face) > 0
        assert stages.ellipse_ops(face) > 0
        assert stages.crtbord_ops(face) > 0
        assert stages.crtline_ops(face) > 0
        assert stages.calcline_ops(face) > 0
        db = np.zeros((10, 64), dtype=np.int32)
        feat = np.zeros(64, dtype=np.int32)
        assert stages.distance_ops(feat, db) == db.size * 2
        assert stages.calcdist_ops(db) > 0
        assert stages.root_ops(np.zeros(10)) == 300
        assert stages.winner_ops(np.zeros(10)) == 10
