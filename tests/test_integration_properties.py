"""Cross-cutting property-based integration tests.

The load-bearing invariants of the whole reproduction:

1. **Refinement preserves function**: for *any* legal HW/SW partition,
   the timed architecture computes exactly what the untimed functional
   model computes (the paper's per-level trace comparison, generalised).
2. **Timing monotonicity**: moving work to HW never slows the frame.
3. **LPV vs token game**: the LP deadlock verdicts agree with bounded
   explicit search on randomly generated pipeline nets.
4. **Synthesis correctness**: FSMD netlists agree with the IR
   interpreter on randomly generated straight-line datapaths.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.facerec import FacerecConfig, build_graph, enroll_database
from repro.facerec.camera import CameraConfig, FaceSampler
from repro.platform import Partition, Side, profile_graph, transformation1
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.rtl.synth import run_fsmd, synthesize
from repro.swir import BinOp, Const, FunctionBuilder, Interpreter, ProgramBuilder, Var
from repro.verify.lpv import check_deadlock_freedom, graph_to_petri

CFG = FacerecConfig(identities=2, poses=1, size=32)


@pytest.fixture(scope="module")
def workload():
    database = enroll_database(CFG.identities, CFG.poses, CFG.size)
    graph = build_graph(CFG, database)
    frames = FaceSampler(CameraConfig(size=CFG.size)).frames([(0, 0)])
    profile = profile_graph(graph, {"CAMERA": frames})
    functional = graph.run_functional({"CAMERA": frames})
    return graph, frames, profile, functional


# Movable tasks: everything except the sink (results must stay observable).
_MOVABLE = ["CAMERA", "BAY", "EROSION", "EDGE", "ELLIPSE", "CRTBORD",
            "CRTLINE", "CALCLINE", "DATABASE", "DISTANCE", "CALCDIST", "ROOT"]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(hw_mask=st.integers(min_value=0, max_value=(1 << len(_MOVABLE)) - 1))
def test_any_partition_preserves_function(workload, hw_mask):
    """Property 1: refinement to any architecture is function-preserving."""
    graph, frames, profile, functional = workload
    assignment = {"WINNER": Side.SW}
    for i, name in enumerate(_MOVABLE):
        assignment[name] = Side.HW if (hw_mask >> i) & 1 else Side.SW
    partition = Partition(graph, assignment)
    arch = transformation1(partition, profile)
    metrics = arch.run({"CAMERA": frames})
    assert metrics.results["WINNER"] == functional["WINNER"]


def test_hw_monotone_speedup(workload):
    """Property 2: growing the HW side never increases frame latency."""
    graph, frames, profile, __ = workload
    partition = Partition.all_sw(graph)
    last = transformation1(partition, profile).run({"CAMERA": frames})
    ranking = [t for t in profile.heaviest(13) if t != "WINNER"]
    for task in ranking[:4]:
        partition = partition.moved(task, Side.HW)
        metrics = transformation1(partition, profile).run({"CAMERA": frames})
        assert metrics.elapsed_ps <= last.elapsed_ps * 1.02  # 2% tolerance
        last = metrics


@settings(max_examples=15, deadline=None)
@given(
    stages=st.integers(min_value=2, max_value=5),
    capacities=st.lists(st.integers(min_value=1, max_value=3),
                        min_size=5, max_size=5),
    feedback_credit=st.integers(min_value=0, max_value=1),
)
def test_lpv_agrees_with_token_game(stages, capacities, feedback_credit):
    """Property 3: LP deadlock verdicts match bounded explicit search.

    Random pipeline with a feedback credit channel from last to first
    stage: live iff the credit channel starts non-empty.
    """
    graph = AppGraph("rand")
    names = [f"S{i}" for i in range(stages)]
    for i, name in enumerate(names):
        reads = []
        writes = []
        if i > 0:
            reads.append(f"c{i - 1}")
        if i < stages - 1:
            writes.append(f"c{i}")
        if i == 0:
            reads.append("fb")
        if i == stages - 1:
            writes.append("fb")
        graph.add_task(TaskSpec(
            name, lambda s, inputs: {}, reads=tuple(reads),
            writes=tuple(writes)))
    for i in range(stages - 1):
        graph.add_channel(ChannelSpec(f"c{i}", names[i], names[i + 1], 1,
                                      capacity=capacities[i]))
    graph.add_channel(ChannelSpec("fb", names[-1], names[0], 1,
                                  capacity=max(1, capacities[-1])))
    net = graph_to_petri(graph,
                         initial_tokens={"fb": feedback_credit})
    report = check_deadlock_freedom(net, confirm=True)
    if feedback_credit == 0:
        # No credit: the cycle is token-free, so the net is dead at M0.
        assert not report.deadlock_free
        assert report.confirmed
    else:
        assert report.deadlock_free


_OPS = ["+", "-", "&", "|", "^"]


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_synth_matches_interpreter_on_random_datapaths(data):
    """Property 4: synthesised FSMDs agree with the interpreter."""
    n_stmts = data.draw(st.integers(min_value=1, max_value=5))
    fb = FunctionBuilder("dut", ["a", "b"])
    available = ["a", "b"]
    for i in range(n_stmts):
        op = data.draw(st.sampled_from(_OPS))
        left = Var(data.draw(st.sampled_from(available)))
        use_const = data.draw(st.booleans())
        right = (Const(data.draw(st.integers(min_value=0, max_value=255)))
                 if use_const else Var(data.draw(st.sampled_from(available))))
        name = f"t{i}"
        fb.assign(name, BinOp(op, left, right))
        available.append(name)
    fb.ret(Var(available[-1]))
    function = fb.build()

    netlist = synthesize(function, width=16)
    program = ProgramBuilder("dut").add(function).build()
    interp = Interpreter(program)
    a = data.draw(st.integers(min_value=0, max_value=1000))
    b = data.draw(st.integers(min_value=0, max_value=1000))
    expected = interp.run([a, b]).returned & 0xFFFF
    got, __ = run_fsmd(netlist, {"a": a, "b": b})
    assert got == expected
