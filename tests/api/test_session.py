"""Tests for Session: dependency resolution, caching, spec derivation."""

import pytest

from repro.api import CampaignSpec, Session

SMALL = CampaignSpec(identities=2, poses=1, size=32, frames=1)


@pytest.fixture(scope="module")
def session():
    """One session with levels 1-3 run (module-scoped: results are cached)."""
    session = Session(SMALL)
    session.run("level2")
    session.run("level3")
    return session


class TestCaching:
    def test_level3_reuses_cached_prerequisites(self):
        """The acceptance criterion: running level 3 after level 2 must not
        recompute levels 1-2's shared prerequisites."""
        session = Session(SMALL)
        session.run("level2")
        counts_after_level2 = dict(session.compute_counts)
        assert counts_after_level2 == {
            "reference": 1, "level1": 1, "profile": 1, "partition": 1,
            "level2": 1,
        }
        result = session.run("level3")
        assert result.from_cache is False
        # Everything level 3 shares with level 2 came from the cache.
        assert session.compute_counts == dict(counts_after_level2, level3=1)

    def test_cache_hit_marked(self, session):
        first = session.run("level1")
        assert first.from_cache is True  # computed by the fixture already
        assert first.value is session.run("level1").value

    def test_force_recomputes(self):
        session = Session(SMALL)
        session.run("profile")
        session.run("profile")
        assert session.compute_counts["profile"] == 1
        session.run("profile", force=True)
        assert session.compute_counts["profile"] == 2

    def test_force_bypasses_level4_memo(self, monkeypatch):
        """Level 4 is memoized process-wide, but force must recompute."""
        from repro.api.stages import Level4Stage

        calls = []

        def fake_verify(self, run_pcc):
            calls.append(run_pcc)
            return len(calls)

        monkeypatch.setattr(Level4Stage, "_verify", fake_verify)
        monkeypatch.setattr(Level4Stage, "_memo", {})
        first = Session(SMALL).run("level4").value
        other = Session(SMALL)
        assert other.run("level4").value == first  # memo shared
        assert len(calls) == 1
        assert other.run("level4", force=True).value != first
        assert len(calls) == 2

    def test_put_seeds_cache(self):
        session = Session(SMALL)
        donor = Session(SMALL)
        session.put("profile", donor.value("profile"))
        assert session.has("profile")
        session.run("profile")
        assert session.compute_counts.get("profile") is None

    def test_invalidate_cascades(self):
        session = Session(SMALL)
        session.run("level2")
        session.invalidate("level1")
        assert not session.has("level1")
        assert not session.has("level2")   # depends on level1
        assert session.has("profile")      # independent of level1

    def test_run_levels_subset(self):
        session = Session(SMALL)
        out = session.run_levels([4])
        assert set(out) == {4}
        assert "level1" not in session.compute_counts

    def test_value_shortcut(self, session):
        assert session.value("level1").matches_reference


class TestReport:
    def test_report_assembles_all_levels(self, session):
        report = session.report()
        assert report.passed
        assert report.recognition_accuracy == 1.0
        assert report.sim_speed_ratio > 1.0

    def test_report_reuses_session_cache(self, session):
        session.report()
        session.report()
        assert session.compute_counts["level1"] == 1


class TestWithSpec:
    def test_workload_change_drops_everything(self, session):
        derived = session.with_spec(frames=2)
        assert not derived.has("level1")
        assert not derived.has("level2")

    def test_cpu_change_keeps_untimed_stages(self, session):
        derived = session.with_spec(cpu="ARM9TDMI")
        # Untimed artifacts are CPU-independent: carried over.
        for kept in ("reference", "level1", "profile", "partition"):
            assert derived.has(kept), kept
        # Timed simulations depend on the CPU: recomputed.
        assert not derived.has("level2")
        assert not derived.has("level3")

    def test_deadline_change_only_drops_level2(self, session):
        derived = session.with_spec(deadline_ms=100.0)
        assert derived.has("level1")
        assert derived.has("level3")
        assert not derived.has("level2")

    def test_capacity_change_only_drops_level3(self, session):
        derived = session.with_spec(capacity_gates=20_000)
        assert derived.has("level2")
        assert not derived.has("level3")

    def test_derived_session_artifacts_shared(self, session):
        derived = session.with_spec(deadline_ms=100.0)
        assert derived.graph is session.graph
        assert derived.database is session.database


class TestErrors:
    def test_unknown_cpu(self):
        with pytest.raises(KeyError, match="unknown CPU"):
            Session(SMALL.replace(cpu="Z80"))

    def test_unknown_stage(self):
        with pytest.raises(KeyError, match="unknown stage"):
            Session(SMALL).run("bogus")
