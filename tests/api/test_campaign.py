"""Tests for CampaignSpec serialization and Campaign runs/sweeps."""

import json

import pytest

from repro.api import Campaign, CampaignSpec, SweepPointError, SweepResult
from repro.swir import EngineSpec

SMALL = CampaignSpec(name="t", identities=2, poses=1, size=32, frames=1)


class TestSpecRoundTrip:
    def test_default_round_trip(self):
        spec = CampaignSpec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_custom_round_trip(self):
        spec = CampaignSpec(
            name="sweep-point", identities=4, poses=2, size=32, frames=2,
            noise_sigma=1.0, seed=7, cpu="ARM9TDMI", capacity_gates=20_000,
            deadline_ms=None, levels=(2, 3), run_pcc=True,
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json(self):
        spec = SMALL.replace(levels=(1, 4))
        recovered = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        assert isinstance(recovered.levels, tuple)

    def test_schema_tag(self):
        assert SMALL.to_dict()["schema"] == "repro.campaign_spec/v2"

    def test_rejects_wrong_schema(self):
        payload = dict(SMALL.to_dict(), schema="repro.campaign_spec/v999")
        with pytest.raises(ValueError, match="unsupported spec schema"):
            CampaignSpec.from_dict(payload)

    def test_accepts_v1_documents(self):
        """Pre-workload spec files keep loading, read as facerec."""
        payload = dict(SMALL.to_dict(), schema="repro.campaign_spec/v1")
        del payload["workload"]
        del payload["params"]
        spec = CampaignSpec.from_dict(payload)
        assert spec == SMALL
        assert spec.workload == "facerec"

    def test_v1_documents_cannot_carry_v2_fields(self):
        payload = dict(SMALL.to_dict(), schema="repro.campaign_spec/v1")
        with pytest.raises(ValueError, match="v1 spec documents"):
            CampaignSpec.from_dict(payload)

    def test_workload_round_trip(self):
        spec = CampaignSpec(name="e", workload="edgescan", frames=1,
                            params={"shapes": 2, "scales": 1, "size": 32})
        recovered = CampaignSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert recovered == spec
        assert recovered.params == {"scales": 1, "shapes": 2, "size": 32}

    def test_unknown_workload_lists_registered(self):
        with pytest.raises(KeyError, match="edgescan"):
            CampaignSpec(workload="holographic")

    def test_workload_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="unknown params"):
            CampaignSpec(workload="edgescan", params={"turbo": 1})

    def test_spec_stays_hashable(self):
        """Frozen specs are values: usable as dict/set keys even though
        params is a dict."""
        a = CampaignSpec(workload="edgescan", params={"shapes": 2})
        b = CampaignSpec(workload="edgescan", params={"shapes": 2})
        assert a == b and hash(a) == hash(b)
        assert len({a, b, SMALL}) == 2

    def test_rejects_unknown_fields(self):
        payload = dict(SMALL.to_dict(), turbo=True)
        with pytest.raises(ValueError, match="unknown spec fields"):
            CampaignSpec.from_dict(payload)

    def test_validates_levels(self):
        with pytest.raises(ValueError, match="levels"):
            CampaignSpec(levels=(0, 5))
        with pytest.raises(ValueError, match="levels"):
            CampaignSpec(levels=())

    def test_validates_workload(self):
        with pytest.raises(ValueError):
            CampaignSpec(size=31)  # odd frame size
        with pytest.raises(ValueError):
            CampaignSpec(frames=0)


class TestCampaignRun:
    def test_full_run_produces_report(self):
        outcome = Campaign(SMALL).run()
        assert outcome.passed
        assert outcome.gates == {1: True, 2: True, 3: True, 4: True}
        assert outcome.report is not None and outcome.report.passed

    def test_subset_run_has_no_report(self):
        outcome = Campaign(SMALL.replace(levels=(1, 2))).run()
        assert outcome.passed
        assert set(outcome.results) == {"level1", "level2"}
        assert outcome.report is None

    def test_outcome_serializes(self):
        outcome = Campaign(SMALL.replace(levels=(1,))).run()
        document = json.loads(json.dumps(outcome.to_dict()))
        assert document["schema"] == "repro.campaign_outcome/v1"
        assert document["gates"] == {"1": True}
        assert document["spec"]["name"] == "t"

    def test_describe_mentions_verdict(self):
        outcome = Campaign(SMALL.replace(levels=(1,))).run()
        assert "PASSED" in outcome.describe()

    def test_accuracy_rides_on_level1_gate(self):
        outcome = Campaign(SMALL.replace(levels=(1,))).run()
        assert outcome.accuracy == 1.0
        assert outcome.to_dict()["accuracy"] == 1.0
        # Levels without a level-1 run don't score the workload.
        outcome = Campaign(SMALL.replace(levels=(4,))).run()
        assert outcome.accuracy is None


class TestSweep:
    def test_grid_expansion_and_order(self):
        sweep = Campaign.sweep(
            SMALL.replace(levels=(1, 2)),
            {"cpu": ["ARM7TDMI", "ARM9TDMI"], "frames": [1, 2]},
        )
        assert isinstance(sweep, SweepResult)
        assert len(sweep.outcomes) == 4
        points = [(o.spec.cpu, o.spec.frames) for o in sweep.outcomes]
        assert points == [("ARM7TDMI", 1), ("ARM7TDMI", 2),
                          ("ARM9TDMI", 1), ("ARM9TDMI", 2)]
        assert sweep.passed

    def test_point_names_carry_grid_values(self):
        sweep = Campaign.sweep(SMALL.replace(levels=(1,)),
                               {"seed": [1, 2]})
        names = [o.spec.name for o in sweep.outcomes]
        assert names == ["t[seed=1]", "t[seed=2]"]

    def test_ranked_by_level2_latency(self):
        sweep = Campaign.sweep(SMALL.replace(levels=(1, 2)),
                               {"cpu": ["ARM7TDMI", "ARM9TDMI"]})
        ranked = sweep.ranked()
        latencies = [o.results["level2"].value.metrics.frame_latency_ps
                     for o in ranked]
        assert latencies == sorted(latencies)
        assert ranked[0].spec.cpu == "ARM9TDMI"  # faster CPU, lower latency

    def test_sweep_reuses_insensitive_stages_across_points(self):
        """Grid points chain through with_spec: stages not sensitive to
        the swept fields are computed once and carried, sensitive ones
        are recomputed per point."""
        sweep = Campaign.sweep(SMALL.replace(levels=(1, 2)),
                               {"cpu": ["ARM7TDMI", "ARM9TDMI"]})
        level1 = [o.results["level1"].value for o in sweep.outcomes]
        assert level1[0] is level1[1]  # CPU-insensitive: carried over
        level2 = [o.results["level2"].value for o in sweep.outcomes]
        assert level2[0] is not level2[1]  # CPU-sensitive: recomputed

    def test_sweep_serializes(self):
        sweep = Campaign.sweep(SMALL.replace(levels=(1,)), {"seed": [1, 2]})
        document = json.loads(json.dumps(sweep.to_dict()))
        assert document["schema"] == "repro.campaign_sweep/v1"
        assert document["grid"] == {"seed": [1, 2]}
        assert len(document["runs"]) == 2


class TestGridOrder:
    """Cartesian-product ordering is part of the sweep contract."""

    GRID = {"cpu": ["ARM7TDMI", "ARM9TDMI"], "seed": [1, 2, 3]}

    def test_last_key_varies_fastest(self):
        specs = Campaign.sweep_specs(SMALL, self.GRID)
        points = [(s.cpu, s.seed) for s in specs]
        assert points == [
            ("ARM7TDMI", 1), ("ARM7TDMI", 2), ("ARM7TDMI", 3),
            ("ARM9TDMI", 1), ("ARM9TDMI", 2), ("ARM9TDMI", 3),
        ]

    def test_point_names_match_spec_order(self):
        specs = Campaign.sweep_specs(SMALL, {"seed": [2, 1]})
        assert [s.name for s in specs] == ["t[seed=2]", "t[seed=1]"]

    def test_serial_and_parallel_order_identical(self):
        base = SMALL.replace(levels=(1,))
        grid = {"seed": [3, 1, 2]}
        serial = Campaign.sweep(base, grid)
        parallel = Campaign.sweep(base, grid, jobs=2)
        names = [run["spec"]["name"] for run in serial.runs()]
        assert names == ["t[seed=3]", "t[seed=1]", "t[seed=2]"]
        assert [run["spec"]["name"] for run in parallel.runs()] == names


class TestParallelSweep:
    def test_matches_serial_results(self):
        """jobs=N must produce exactly the serial results (canonically:
        everything except wall-clock measurements is byte-identical)."""
        from repro.serialize import canonical_json

        base = SMALL.replace(levels=(1, 2))
        grid = {"cpu": ["ARM7TDMI", "ARM9TDMI"]}
        serial = Campaign.sweep(base, grid)
        parallel = Campaign.sweep(base, grid, jobs=2)
        assert canonical_json(serial.to_dict()) == \
            canonical_json(parallel.to_dict())
        assert parallel.passed
        assert parallel.jobs == 2

    def test_parallel_holds_payloads_not_outcomes(self):
        sweep = Campaign.sweep(SMALL.replace(levels=(1,)),
                               {"seed": [1, 2]}, jobs=2)
        assert sweep.outcomes == []
        assert len(sweep.payloads) == 2
        with pytest.raises(RuntimeError, match="ranked_runs"):
            sweep.ranked()

    def test_ranked_runs_on_payloads(self):
        sweep = Campaign.sweep(SMALL.replace(levels=(1, 2)),
                               {"cpu": ["ARM7TDMI", "ARM9TDMI"]}, jobs=2)
        ranked = sweep.ranked_runs()
        latencies = [run["stages"]["level2"]["value"]["metrics"]
                     ["frame_latency_ps"] for run in ranked]
        assert latencies == sorted(latencies)

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            Campaign.sweep(SMALL, {"seed": [1]}, jobs=0)


class TestEngineField:
    def test_default_engine_not_serialized(self):
        """Default-engine documents are byte-identical to pre-engine ones."""
        assert "engine" not in CampaignSpec().to_dict()

    def test_non_default_engine_round_trips(self):
        spec = SMALL.replace(engine="ast")
        payload = spec.to_dict()
        assert payload["engine"] == "ast"
        assert CampaignSpec.from_dict(json.loads(json.dumps(payload))) == spec

    def test_documents_without_engine_default_compiled(self):
        spec = CampaignSpec.from_dict(SMALL.to_dict())
        assert spec.engine == EngineSpec("compiled")
        assert spec.engine.name == "compiled"

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SMALL.replace(engine="jit")

    def test_v1_documents_cannot_carry_engine(self):
        payload = dict(SMALL.to_dict(), schema="repro.campaign_spec/v1",
                       engine="ast")
        del payload["workload"]
        del payload["params"]
        with pytest.raises(ValueError, match="v1 spec documents"):
            CampaignSpec.from_dict(payload)

    def test_engine_ab_outcomes_identical(self):
        """The A/B contract from the campaign layer: same documents."""
        from repro.serialize import canonical_json

        spec = SMALL.replace(levels=(1, 3))
        runs = {
            engine: Campaign(spec.replace(engine=engine)).run().to_dict()
            for engine in ("ast", "compiled")
        }
        # The spec documents differ only in the engine field itself.
        for engine, payload in runs.items():
            payload["spec"].pop("engine", None)
            for stage in payload["stages"].values():
                assert "engine" not in stage["value"].get("spec", {})
        assert canonical_json(runs["ast"]) == canonical_json(runs["compiled"])

    def test_level3_dynamic_journal_recorded(self):
        outcome = Campaign(SMALL.replace(levels=(1, 3))).run()
        level3 = outcome.results["level3"].value
        assert level3.dynamic_checked
        assert EngineSpec.coerce(level3.engine).name == "compiled"
        assert level3.dynamic_journal  # FPGA calls actually executed
        assert level3.dynamic_consistency_violations == []
        # The dynamic shadow agrees with SymbC's static certificate.
        assert level3.symbc.consistent


class TestSweepPointError:
    #: capacity_gates=2 passes spec validation but makes the level-3
    #: context mapper infeasible at run time.
    BAD_GRID = {"capacity_gates": [16_000, 2]}

    def test_serial_sweep_names_failing_point(self):
        base = SMALL.replace(levels=(1, 3))
        with pytest.raises(SweepPointError) as excinfo:
            Campaign.sweep(base, self.BAD_GRID)
        message = str(excinfo.value)
        assert "t[capacity_gates=2]" in message
        assert "workload='facerec'" in message
        assert "ContextError" in message

    def test_parallel_sweep_names_failing_point(self):
        base = SMALL.replace(levels=(1, 3))
        with pytest.raises(SweepPointError) as excinfo:
            Campaign.sweep(base, self.BAD_GRID, jobs=2)
        message = str(excinfo.value)
        assert "t[capacity_gates=2]" in message
        assert "params={}" in message
        assert "ContextError" in message


class TestAvailableCpus:
    """The REPRO_JOBS override on CPU detection (cgroup-limited CI)."""

    def test_env_override_wins(self, monkeypatch):
        from repro.api.campaign import _available_cpus

        monkeypatch.setenv("REPRO_JOBS", "3")
        assert _available_cpus() == 3

    def test_override_clamps_to_one(self, monkeypatch):
        from repro.api.campaign import _available_cpus

        monkeypatch.setenv("REPRO_JOBS", "0")
        assert _available_cpus() == 1
        monkeypatch.setenv("REPRO_JOBS", "-4")
        assert _available_cpus() == 1

    def test_blank_override_is_ignored(self, monkeypatch):
        from repro.api.campaign import _available_cpus

        monkeypatch.setenv("REPRO_JOBS", "  ")
        assert _available_cpus() >= 1

    def test_garbage_override_is_a_clean_error(self, monkeypatch):
        from repro.api.campaign import _available_cpus

        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            _available_cpus()

    def test_pool_honours_the_override(self, monkeypatch):
        """A 1-pinned pool runs a 2-point sweep in one worker process."""
        monkeypatch.setenv("REPRO_JOBS", "1")
        base = SMALL.replace(levels=(1,))
        result = Campaign.sweep(base, {"frames": [1, 2]}, jobs=8)
        assert result.passed and len(result.runs()) == 2


class TestResumeLogging:
    """``sweep(resume=True)`` leaves one auditable summary line."""

    def test_resumed_sweep_logs_hits_and_executed(self, tmp_path, caplog):
        from repro.api import CampaignStore

        store = CampaignStore(tmp_path / "store")
        base = SMALL.replace(levels=(1,))
        grid = {"frames": [1, 2]}
        Campaign.sweep(base, grid, store=store)
        with caplog.at_level("INFO", logger="repro.campaign"):
            Campaign.sweep(base, grid, store=store, resume=True)
        lines = [rec.message for rec in caplog.records
                 if rec.name == "repro.campaign"]
        assert len(lines) == 1
        assert "2/2 points merged from store" in lines[0]
        assert "0 executed" in lines[0]

    def test_cold_resume_logs_executed_count(self, tmp_path, caplog):
        from repro.api import CampaignStore

        store = CampaignStore(tmp_path / "store")
        base = SMALL.replace(levels=(1,))
        with caplog.at_level("INFO", logger="repro.campaign"):
            Campaign.sweep(base, {"frames": [1, 2]}, store=store,
                           resume=True)
        assert any("0/2 points merged from store" in rec.message
                   and "2 executed" in rec.message
                   for rec in caplog.records)

    def test_unresumed_sweep_is_silent(self, tmp_path, caplog):
        from repro.api import CampaignStore

        store = CampaignStore(tmp_path / "store")
        base = SMALL.replace(levels=(1,))
        with caplog.at_level("INFO", logger="repro.campaign"):
            Campaign.sweep(base, {"frames": [1]}, store=store)
        assert [rec for rec in caplog.records
                if rec.name == "repro.campaign"] == []
