"""Tests for the stage protocol and registry."""

import pytest

from repro.api import (
    FlowStage,
    LEVEL_STAGES,
    Stage,
    StageResult,
    get_stage,
    register,
    stage_names,
)


class TestRegistry:
    def test_builtin_stages_registered(self):
        assert set(stage_names()) >= {
            "reference", "profile", "partition",
            "level1", "level2", "level3", "level4",
        }

    def test_level_stage_mapping(self):
        for level, name in LEVEL_STAGES.items():
            stage = get_stage(name)
            assert stage.name == name
            assert isinstance(stage, Stage)

    def test_unknown_stage(self):
        with pytest.raises(KeyError, match="unknown stage"):
            get_stage("nope")

    def test_duplicate_rejected(self):
        class Dup(FlowStage):
            name = "level1"

        with pytest.raises(ValueError, match="already registered"):
            register(Dup)

    def test_anonymous_rejected(self):
        class NoName(FlowStage):
            pass

        with pytest.raises(ValueError, match="no name"):
            register(NoName)

    def test_dependencies_are_registered_stages(self):
        for name in stage_names():
            for dep in get_stage(name).requires:
                assert dep in stage_names()


class TestProtocol:
    def test_stage_protocol_shape(self):
        for name in stage_names():
            stage = get_stage(name)
            assert isinstance(stage.requires, tuple)
            assert isinstance(stage.sensitive_to, tuple)
            assert callable(stage.run)

    def test_custom_stage_runs_through_session(self):
        from repro.api import CampaignSpec, Session

        class Heaviest(FlowStage):
            name = "test-heaviest"
            requires = ("profile",)

            def compute(self, ctx):
                return ctx.value("profile").heaviest(3)

        try:
            register(Heaviest)
            session = Session(CampaignSpec(
                identities=2, poses=1, size=32, frames=1))
            result = session.run("test-heaviest")
            assert isinstance(result, StageResult)
            assert len(result.value) == 3
            assert session.has("profile")  # dependency resolved and cached
        finally:
            from repro.api import stages as stages_module
            stages_module._REGISTRY.pop("test-heaviest", None)

    def test_stage_result_to_dict(self):
        result = StageResult(stage="x", value={"a": (1, 2)}, wall_seconds=0.5)
        document = result.to_dict()
        assert document["schema"] == "repro.stage_result/v1"
        assert document["value"] == {"a": [1, 2]}
        assert document["from_cache"] is False
