"""Session-level store persistence: the level-4 memo made durable.

With a :class:`repro.store.CampaignStore` configured on the session,
the level-4 verification result persists on disk and reloads across
*fresh sessions* (standing in for fresh processes — the entry is read
back from disk, nothing in-memory is shared), replacing the
process-local class memo.  The reloaded artifact must gate, serialize
and describe identically to the live one.

One real level-4 verification seeds a module-scoped store; the tests
around it assert reload/force/derivation semantics against that entry
(cheap), and memo-interaction tests stub the verification out entirely.
"""

import pytest

from repro.api import Campaign, CampaignSpec, CampaignStore, Session
from repro.api.stages import Level4Stage
from repro.serialize import canonical_json
from repro.store import StoredLevel4Result

SPEC = CampaignSpec(name="session-store", identities=2, poses=1, size=32,
                    frames=1)

LEVEL4_IDENTITY = {"stage": "level4", "run_pcc": False,
                   "workload": "facerec", "workload_revision": 1}


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return CampaignStore(tmp_path_factory.mktemp("session-store") / "store")


@pytest.fixture(scope="module")
def seeded(store):
    """One real level-4 verification persisted into the shared store."""
    session = Session(SPEC, store=store)
    result = session.run("level4")
    return {"session": session, "result": result}


class TestLevel4Persistence:
    def test_first_run_computes_and_persists(self, store, seeded):
        assert not seeded["result"].from_store
        assert seeded["session"].compute_counts.get("level4") == 1
        assert store.get_stage(LEVEL4_IDENTITY) is not None

    def test_fresh_session_reloads_from_disk(self, store, seeded):
        session = Session(SPEC, store=store)
        reloaded = session.run("level4")
        assert reloaded.from_store
        assert isinstance(reloaded.value, StoredLevel4Result)
        assert session.compute_counts.get("level4") is None
        assert session.store_hits == {"level4": 1}

    def test_reloaded_result_gates_serializes_describes_identically(
            self, store, seeded):
        live = seeded["result"].value
        stored = Session(SPEC, store=store).run("level4").value
        assert stored.verified is live.verified is True
        assert stored.to_dict() == live.to_dict()
        # entry files are written sort_keys=True, so module *order* may
        # differ from insertion order — the described lines may not.
        assert sorted(stored.describe().splitlines()) == \
            sorted(live.describe().splitlines())
        assert set(stored.modules) == set(live.modules)

    def test_with_spec_carries_the_store(self, store, seeded):
        session = Session(SPEC, store=store)
        session.run("level4")
        derived = session.with_spec(frames=2)
        assert derived.store is store
        # The carried cache already holds level4; dropping it reloads
        # from the store rather than recomputing.
        derived.invalidate("level4")
        assert derived.run("level4").from_store

    def test_run_pcc_addresses_a_distinct_entry(self, store, seeded):
        """A run_pcc=True session must not reload the run_pcc=False
        verification (its identity — and so its key — differs)."""
        pcc_session = Session(SPEC.replace(run_pcc=True), store=store)
        identity = Level4Stage().store_identity(pcc_session)
        assert identity["run_pcc"] is True
        assert store.stage_key(identity) != store.stage_key(LEVEL4_IDENTITY)
        assert store.get_stage(identity) is None

    def test_campaign_report_byte_identical_from_store(self, store,
                                                       seeded):
        cold = Campaign(SPEC).run(store=store).to_dict()
        warm = Campaign(SPEC).run(store=store).to_dict()
        assert cold["stages"]["level4"]["value"] == \
            seeded["result"].value.to_dict()
        assert canonical_json(cold) == canonical_json(warm)

    def test_run_rejects_session_and_store_together(self, store):
        with pytest.raises(ValueError, match="not both"):
            Campaign(SPEC).run(session=Session(SPEC), store=store)


class _FakeLevel4:
    """Stand-in verification artifact (just enough surface to persist)."""

    def __init__(self, tag):
        self.tag = tag
        self.verified = True

    def to_dict(self):
        return {"schema": "repro.level4/v1", "verified": True,
                "modules": {}, "tag": self.tag}


class TestMemoInteraction:
    """Store-vs-memo precedence, with the verification stubbed out."""

    @pytest.fixture
    def stubbed(self, monkeypatch):
        calls = []

        def fake_verify(self, ctx):
            calls.append(ctx.spec.name)
            return _FakeLevel4(tag=len(calls))

        monkeypatch.setattr(Level4Stage, "_verify", fake_verify)
        monkeypatch.setattr(Level4Stage, "_memo", {})
        return calls

    def test_store_bypasses_the_process_memo(self, tmp_path, stubbed):
        local = CampaignStore(tmp_path / "store")
        Session(SPEC, store=local).run("level4")
        assert Level4Stage._memo == {}  # never touched
        # ... while a storeless session still memoizes process-wide.
        Session(SPEC).run("level4")
        assert (SPEC.workload, SPEC.run_pcc) in Level4Stage._memo
        assert len(stubbed) == 2

    def test_memo_does_not_leak_into_the_store_path(self, tmp_path,
                                                    stubbed):
        """A memoized storeless result must not shadow the store."""
        Session(SPEC).run("level4")  # fills the memo (call 1)
        local = CampaignStore(tmp_path / "store")
        result = Session(SPEC, store=local).run("level4")
        assert not result.from_store
        assert len(stubbed) == 2  # store path recomputed (call 2)
        # ... and persisted: the next store session reloads.
        again = Session(SPEC, store=local).run("level4")
        assert again.from_store and len(stubbed) == 2

    def test_force_recomputes_and_overwrites(self, tmp_path, stubbed):
        local = CampaignStore(tmp_path / "store")
        session = Session(SPEC, store=local)
        session.run("level4")
        key = local.stage_key(LEVEL4_IDENTITY)
        assert local.get(key)["attempts"] == 1
        forced = session.run("level4", force=True)
        assert not forced.from_store
        assert local.get(key)["attempts"] == 2
        assert len(stubbed) == 2
