"""Unit tests for the blockcipher workload's algebra and graph."""

import numpy as np
import pytest

from repro.workloads.blockcipher import (
    CipherReference,
    build_cipher_graph,
    derive_env,
    inv_mix_bytes,
    mix_bytes,
    sub_byte,
    sub_bytes,
    xtime,
)


class TestByteAlgebra:
    def test_xtime_matches_aes_examples(self):
        # Known GF(2^8) doublings (AES MixColumns arithmetic).
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47
        assert xtime(0x47) == 0x8E
        assert xtime(0x8E) == 0x07

    def test_sub_byte_is_invertible(self):
        seen = {sub_byte(x) for x in range(256)}
        assert len(seen) == 256  # a bijection over bytes

    def test_sub_bytes_vector_matches_scalar(self):
        block = np.arange(256, dtype=np.uint8)
        expected = np.array([sub_byte(int(b)) for b in block], dtype=np.uint8)
        assert np.array_equal(sub_bytes(block), expected)

    def test_mix_round_trips(self):
        rng = np.random.default_rng(7)
        block = rng.integers(0, 256, 16, dtype=np.uint8)
        assert np.array_equal(inv_mix_bytes(mix_bytes(block)), block)

    def test_env_inverse_table(self):
        env = derive_env(8, key_seed=1, rotation=3)
        block = np.arange(256, dtype=np.uint8)
        assert np.array_equal(env.inv_sub[sub_bytes(block)], block)


class TestReferenceAndGraph:
    def test_reference_round_trips_every_block(self):
        env = derive_env(16, key_seed=5, rotation=3)
        model = CipherReference(env)
        rng = np.random.default_rng(11)
        for __ in range(5):
            block = rng.integers(0, 256, 16, dtype=np.uint8)
            ok, mismatches = model.recognize(block)
            assert ok and mismatches == 0

    def test_reference_detects_corruption(self):
        # A corrupted inverse-substitution table must break the
        # round-trip for every byte — the CHECK sink sees it.
        env = derive_env(8, key_seed=5, rotation=1)
        corrupted = env.__class__(k0=env.k0, k1=env.k1,
                                  inv_sub=np.roll(env.inv_sub, 1),
                                  rotation=env.rotation,
                                  block_words=env.block_words)
        block = np.arange(8, dtype=np.uint8)
        ok, mismatches = CipherReference(corrupted).recognize(block)
        assert not ok and mismatches == 8

    def test_graph_matches_reference_functionally(self):
        env = derive_env(8, key_seed=2, rotation=3)
        graph = build_cipher_graph(env)
        block = np.arange(8, dtype=np.uint8)
        results = graph.run_functional({"SOURCE": [block]})
        assert results["CHECK"] == [CipherReference(env).recognize(block)]

    def test_graph_shape(self):
        env = derive_env(8, key_seed=2, rotation=3)
        graph = build_cipher_graph(env)
        assert len(graph.tasks) == 12
        assert {t.name for t in graph.sources()} == {"SOURCE"}
        assert {t.name for t in graph.sinks()} == {"CHECK"}

    def test_block_words_validation(self):
        from repro.api import CampaignSpec

        with pytest.raises(ValueError, match="block_words"):
            CampaignSpec(workload="blockcipher", params={"block_words": 7})
