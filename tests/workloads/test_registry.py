"""Tests for the workload registry and the protocol plumbing."""

import pytest

from repro.api import CampaignSpec, Session
from repro.workloads import (
    Workload,
    get_workload,
    register_workload,
    validated_params,
    workload_names,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"facerec", "edgescan", "blockcipher"} <= set(workload_names())

    def test_instances_satisfy_protocol(self):
        for name in workload_names():
            assert isinstance(get_workload(name), Workload), name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="facerec"):
            get_workload("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_workload(get_workload("facerec"))

    def test_anonymous_registration_rejected(self):
        class Nameless:
            name = ""

        with pytest.raises(ValueError, match="no name"):
            register_workload(Nameless())


class TestValidatedParams:
    def test_defaults_fill_in(self):
        assert validated_params("w", {}, {"a": 1, "b": 2}) == {"a": 1, "b": 2}

    def test_overrides_apply(self):
        assert validated_params("w", {"a": 9}, {"a": 1, "b": 2}) == \
            {"a": 9, "b": 2}

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown params"):
            validated_params("w", {"c": 3}, {"a": 1})


class TestSessionWorkloadPlumbing:
    def test_session_binds_named_workload(self):
        spec = CampaignSpec(workload="blockcipher", frames=1,
                            params={"block_words": 8})
        session = Session(spec)
        assert session.workload.name == "blockcipher"
        assert session.stimuli().keys() == {"SOURCE"}
        assert session.graph.name == "blockcipher"

    def test_environment_database_alias(self):
        session = Session(CampaignSpec(identities=2, poses=1, size=32,
                                       frames=1))
        assert session.database is session.environment

    def test_workload_change_invalidates_cache(self):
        facerec = Session(CampaignSpec(identities=2, poses=1, size=32,
                                       frames=1))
        facerec.run("profile")
        derived = facerec.with_spec(
            workload="edgescan",
            params={"shapes": 2, "scales": 1, "size": 32})
        assert not derived.has("profile")
        assert derived.graph.name == "edgescan"

    def test_facerec_rejects_params(self):
        with pytest.raises(ValueError, match="no free-form params"):
            CampaignSpec(params={"shapes": 2})
