"""Unit tests for the edgescan workload's algorithms and graph."""

import numpy as np
import pytest

from repro.workloads.edgescan import (
    EdgeScanReference,
    binarize,
    build_edgescan_graph,
    classify,
    edge_profile,
    enroll_signatures,
    grad_mag,
    mag_step_reference,
    render_shape,
    smooth,
    sobel_x,
    sobel_y,
    thresh_step_reference,
)


class TestAlgorithms:
    def test_render_is_deterministic_and_distinct(self):
        a = render_shape(0, 0, 32)
        assert np.array_equal(a, render_shape(0, 0, 32))
        assert not np.array_equal(a, render_shape(1, 0, 32))

    def test_grad_mag_saturates(self):
        gx = np.array([[300, -300], [0, 10]], dtype=np.int32)
        gy = np.array([[300, 0], [0, 20]], dtype=np.int32)
        mag = grad_mag(gx, gy)
        assert mag.dtype == np.uint8
        assert mag[0, 0] == 255 and mag[0, 1] == 255
        assert mag[1, 1] == 30

    def test_binarize_threshold_edge(self):
        mag = np.array([[63, 64, 65]], dtype=np.uint8)
        assert binarize(mag, 64).tolist() == [[0, 255, 255]]

    def test_edge_profile_counts_set_pixels(self):
        binary = np.zeros((4, 4), dtype=np.uint8)
        binary[1, :] = 255
        sig = edge_profile(binary)
        assert sig.shape == (8,)
        assert sig[:4].tolist() == [0, 4, 0, 0]   # row counts
        assert sig[4:].tolist() == [1, 1, 1, 1]   # column counts

    def test_classify_argmin(self):
        labels = [(0, 0), (1, 0), (2, 0)]
        assert classify(np.array([9, 2, 5]), labels) == (1, 0, 2)
        with pytest.raises(ValueError):
            classify(np.array([1]), labels)

    def test_step_references_match_numpy_path(self):
        gx, gy = sobel_x(smooth(render_shape(2, 0, 32))), \
            sobel_y(smooth(render_shape(2, 0, 32)))
        mag = grad_mag(gx, gy)
        ax, ay = int(abs(gx[7, 9])), int(abs(gy[7, 9]))
        assert mag_step_reference(ax, ay) == int(mag[7, 9])
        assert thresh_step_reference(int(mag[7, 9]), 64) == \
            int(binarize(mag, 64)[7, 9])


class TestEnrollmentAndReference:
    def test_enrollment_shape(self):
        db = enroll_signatures(3, 2, 32, 64)
        assert db.matrix.shape == (6, 64)
        assert db.labels[0] == (0, 0) and db.labels[-1] == (2, 1)

    def test_reference_recognizes_clean_renders(self):
        db = enroll_signatures(4, 1, 32, 64)
        model = EdgeScanReference(db)
        for shape in range(4):
            got = model.recognize(render_shape(shape, 0, 32))
            assert got[0] == shape

    def test_reference_trace_channels(self):
        db = enroll_signatures(2, 1, 32, 64)
        trace: list = []
        EdgeScanReference(db).recognize(render_shape(0, 0, 32), trace=trace)
        channels = [channel for __, channel, __ in trace]
        assert channels == ["c_gx", "c_gy", "c_mag", "c_bin", "c_sig",
                            "c_absdiff", "c_score"]


class TestGraph:
    def test_graph_matches_reference_functionally(self):
        db = enroll_signatures(2, 1, 32, 64)
        graph = build_edgescan_graph(db, 32)
        frame = render_shape(1, 0, 32)
        results = graph.run_functional({"CAMERA": [frame]})
        expected = EdgeScanReference(db).recognize(frame)
        assert results["CLASSIFY"] == [expected]

    def test_graph_shape(self):
        db = enroll_signatures(2, 1, 32, 64)
        graph = build_edgescan_graph(db, 32)
        assert len(graph.tasks) == 11
        assert {t.name for t in graph.sources()} == {"CAMERA"}
        assert {t.name for t in graph.sinks()} == {"CLASSIFY"}
