"""Cross-workload conformance suite.

Every registered workload must behave identically under the flow's
contract: a reduced-size campaign runs through all four refinement
levels, every level's gate fields are populated, the campaign passes,
and the whole result document is deterministic — the same seed produces
a byte-identical canonical ``to_dict`` across two fresh sessions (only
the wall-clock keys in :data:`repro.serialize.VOLATILE_KEYS` may
differ).

A workload added to the registry is automatically picked up here; if it
cannot satisfy this suite it does not belong in the registry.
"""

import json

import pytest

from repro.api import Campaign, CampaignSpec, get_workload, workload_names
from repro.serialize import canonical_json

ALL_WORKLOADS = workload_names()


def conformance_spec(name: str) -> CampaignSpec:
    """The workload's reduced-size campaign, all four levels."""
    workload = get_workload(name)
    return CampaignSpec(name=f"conformance-{name}", workload=name,
                        levels=(1, 2, 3, 4),
                        **dict(workload.conformance_overrides))


@pytest.fixture(scope="module")
def outcomes():
    """One full campaign per workload (module-scoped: they are slow)."""
    return {name: Campaign(conformance_spec(name)).run()
            for name in ALL_WORKLOADS}


def test_at_least_three_workloads_registered():
    assert len(ALL_WORKLOADS) >= 3
    assert {"facerec", "edgescan", "blockcipher"} <= set(ALL_WORKLOADS)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestConformance:
    def test_all_four_levels_pass(self, outcomes, name):
        outcome = outcomes[name]
        assert outcome.gates == {1: True, 2: True, 3: True, 4: True}
        assert outcome.passed

    def test_level_gate_fields_populated(self, outcomes, name):
        results = outcomes[name].results
        level1 = results["level1"].value
        assert level1.reference_checked
        assert level1.matches_reference
        level2 = results["level2"].value
        assert level2.consistency_checked
        assert level2.deadline is not None and level2.deadline.holds
        assert level2.metrics.elapsed_ps > 0
        level3 = results["level3"].value
        assert level3.consistency_checked
        assert level3.symbc.consistent
        assert len(level3.contexts) >= 1
        level4 = results["level4"].value
        assert level4.modules and level4.verified

    def test_accuracy_meets_workload_threshold(self, outcomes, name):
        outcome = outcomes[name]
        assert outcome.accuracy is not None
        assert outcome.accuracy >= get_workload(name).min_accuracy

    def test_report_assembled_and_serializable(self, outcomes, name):
        report = outcomes[name].report
        assert report is not None and report.passed
        document = json.loads(json.dumps(report.to_dict()))
        assert document["schema"] == "repro.flow_report/v2"
        assert document["workload"]["name"] == name

    def test_deterministic_across_fresh_sessions(self, outcomes, name):
        """Same seed => byte-identical canonical document, fresh session."""
        rerun = Campaign(conformance_spec(name)).run()
        assert canonical_json(rerun.to_dict()) == \
            canonical_json(outcomes[name].to_dict())

    def test_reconfiguration_exercised(self, outcomes, name):
        """Level 3 must actually download bitstreams for every workload."""
        metrics = outcomes[name].results["level3"].value.metrics
        assert metrics.fpga_report["reconfigurations"] >= 1
