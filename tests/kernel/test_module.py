"""Tests for hierarchical modules and ports."""

import pytest

from repro.kernel import Fifo, Module, NS, Port, PortBindingError, Simulator, wait
from repro.kernel.module import MappingTarget


class TestPort:
    def test_unbound_use_raises(self):
        port = Port("p")
        assert not port.bound
        with pytest.raises(PortBindingError):
            port.channel

    def test_single_binding(self):
        sim = Simulator()
        port = Port("p")
        fifo = Fifo("f", sim)
        port.bind(fifo)
        assert port.bound
        assert port.channel is fifo
        with pytest.raises(PortBindingError):
            port.bind(fifo)

    def test_rebind_allows_replacement(self):
        sim = Simulator()
        port = Port("p")
        a, b = Fifo("a", sim), Fifo("b", sim)
        port.bind(a)
        port.rebind(b)
        assert port.channel is b

    def test_interface_check(self):
        sim = Simulator()
        port = Port("p", interface=Fifo)
        with pytest.raises(PortBindingError):
            port.bind("not a fifo")
        port.bind(Fifo("f", sim))

    def test_attribute_forwarding(self):
        sim = Simulator()
        port = Port("p")
        port.bind(Fifo("f", sim, capacity=3))
        assert port.capacity == 3
        port.try_put(1)
        assert port.try_get() == 1


class TestModule:
    def test_hierarchy(self):
        sim = Simulator()
        top = Module("top", sim)
        a = Module("a", sim, parent=top)
        b = Module("b", sim, parent=top)
        leaf = Module("leaf", sim, parent=a)
        assert top.children == [a, b]
        assert leaf.full_name == "top.a.leaf"
        assert [m.name for m in top.walk()] == ["top", "a", "leaf", "b"]
        assert set(m.name for m in top.leaves()) == {"leaf", "b"}
        assert top.find("leaf") is leaf
        assert top.find("missing") is None

    def test_duplicate_port_rejected(self):
        sim = Simulator()
        mod = Module("m", sim)
        mod.add_port("out")
        with pytest.raises(ValueError):
            mod.add_port("out")

    def test_default_mapping_unmapped(self):
        sim = Simulator()
        mod = Module("m", sim)
        assert mod.mapping is MappingTarget.UNMAPPED

    def test_spawn_registers_process(self):
        sim = Simulator()
        mod = Module("m", sim)
        ran = []

        def behaviour():
            yield wait(1, NS)
            ran.append(True)

        proc = mod.spawn("main", behaviour())
        assert proc in mod.processes
        assert proc.name == "m.main"
        sim.run()
        assert ran == [True]

    def test_module_pipeline_end_to_end(self):
        """Two modules talking through ports bound to a FIFO."""
        sim = Simulator()

        class Producer(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim)
                self.out = self.add_port("out")
                self.spawn("run", self.run())

            def run(self):
                for i in range(5):
                    yield from self.out.channel.put(i * i)

        class Consumer(Module):
            def __init__(self, name, sim):
                super().__init__(name, sim)
                self.inp = self.add_port("in")
                self.received = []
                self.spawn("run", self.run())

            def run(self):
                for _ in range(5):
                    item = yield from self.inp.channel.get()
                    self.received.append(item)

        producer = Producer("producer", sim)
        consumer = Consumer("consumer", sim)
        link = Fifo("link", sim, capacity=2)
        producer.out.bind(link)
        consumer.inp.bind(link)
        sim.run()
        assert consumer.received == [0, 1, 4, 9, 16]
