"""Unit tests for the simulation time type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.simtime import MS, NS, PS, SEC, US, SimTime, format_time, time_ps


class TestTimePs:
    def test_basic_units(self):
        assert time_ps(1, PS) == 1
        assert time_ps(1, NS) == 1_000
        assert time_ps(1, US) == 1_000_000
        assert time_ps(1, MS) == 1_000_000_000
        assert time_ps(1, SEC) == 1_000_000_000_000

    def test_fractional_rounds(self):
        assert time_ps(1.5, NS) == 1500
        assert time_ps(0.0001, NS) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            time_ps(-1, NS)


class TestSimTime:
    def test_construction_and_conversion(self):
        t = SimTime.of(5, NS)
        assert t.picoseconds == 5000
        assert t.to(NS) == 5.0
        assert int(t) == 5000

    def test_arithmetic(self):
        a = SimTime.of(10, NS)
        b = SimTime.of(3, NS)
        assert (a + b).picoseconds == 13_000
        assert (a - b).picoseconds == 7_000
        assert (a + 500).picoseconds == 10_500

    def test_ordering(self):
        assert SimTime.of(1, NS) < SimTime.of(2, NS)
        assert SimTime.of(1, US) > SimTime.of(999, NS)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimTime(-1)
        with pytest.raises(ValueError):
            SimTime.of(1, NS) - SimTime.of(2, NS)

    @given(st.integers(min_value=0, max_value=10**15), st.integers(min_value=0, max_value=10**15))
    def test_addition_commutes(self, a, b):
        assert (SimTime(a) + SimTime(b)) == (SimTime(b) + SimTime(a))


class TestFormatTime:
    def test_zero(self):
        assert format_time(0) == "0s"

    def test_exact_units(self):
        assert format_time(1000) == "1ns"
        assert format_time(2_000_000) == "2us"
        assert format_time(3_000_000_000) == "3ms"
        assert format_time(1_000_000_000_000) == "1s"

    def test_fractional(self):
        assert format_time(1500) == "1.5ns"

    def test_sub_ns(self):
        assert format_time(999) == "999ps"

    @given(st.integers(min_value=1, max_value=10**15))
    def test_always_nonempty_with_unit(self, ps):
        rendered = format_time(ps)
        assert rendered
        assert any(rendered.endswith(u) for u in ("ps", "ns", "us", "ms", "s"))
