"""Unit and property tests for signals and FIFO channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import (
    Fifo,
    FifoEmptyError,
    FifoFullError,
    NS,
    Signal,
    Simulator,
    wait,
)


class TestSignal:
    def test_initial_value(self):
        sim = Simulator()
        sig = Signal("s", sim, initial=7)
        assert sig.read() == 7

    def test_write_commits_at_update_phase(self):
        sim = Simulator()
        sig = Signal("s", sim, initial=0)
        observed = []

        def writer():
            sig.write(1)
            observed.append(("in-phase", sig.read()))
            yield wait(0)
            observed.append(("after-delta", sig.read()))

        sim.spawn("w", writer())
        sim.run()
        assert observed == [("in-phase", 0), ("after-delta", 1)]

    def test_changed_event_only_on_change(self):
        sim = Simulator()
        sig = Signal("s", sim, initial=5)
        wakeups = []

        def watcher():
            while True:
                yield wait(sig.changed)
                wakeups.append(sig.read())

        def writer():
            sig.write(5)  # no change: no event
            yield wait(10, NS)
            sig.write(6)
            yield wait(10, NS)

        sim.spawn("watch", watcher())
        sim.spawn("write", writer())
        sim.run()
        assert wakeups == [6]

    def test_last_write_wins_within_delta(self):
        sim = Simulator()
        sig = Signal("s", sim, initial=0)

        def writer():
            sig.write(1)
            sig.write(2)
            yield wait(0)
            assert sig.read() == 2

        sim.spawn("w", writer())
        sim.run()


class TestFifoNonBlocking:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Fifo("f", sim, capacity=0)

    def test_try_put_get(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=2)
        fifo.try_put("a")
        fifo.try_put("b")
        assert len(fifo) == 2
        assert fifo.free == 0
        with pytest.raises(FifoFullError):
            fifo.try_put("c")
        assert fifo.try_get() == "a"
        assert fifo.try_get() == "b"
        with pytest.raises(FifoEmptyError):
            fifo.try_get()

    def test_stats(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=4)
        for i in range(3):
            fifo.try_put(i)
        fifo.try_get()
        stats = fifo.stats()
        assert stats["puts"] == 3
        assert stats["gets"] == 1
        assert stats["max_occupancy"] == 3


class TestFifoBlocking:
    def test_producer_consumer_order(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=3)
        received = []

        def producer():
            for i in range(10):
                yield from fifo.put(i)

        def consumer():
            for _ in range(10):
                item = yield from fifo.get()
                received.append(item)
                yield wait(5, NS)

        sim.spawn("p", producer())
        sim.spawn("c", consumer())
        sim.run()
        assert received == list(range(10))

    def test_put_blocks_on_full(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=1)
        times = []

        def producer():
            yield from fifo.put("x")
            times.append(("put-x", sim.now_ps))
            yield from fifo.put("y")  # blocks until consumer reads
            times.append(("put-y", sim.now_ps))

        def consumer():
            yield wait(100, NS)
            item = yield from fifo.get()
            times.append(("got", item, sim.now_ps))

        sim.spawn("p", producer())
        sim.spawn("c", consumer())
        sim.run()
        put_y = [t for t in times if t[0] == "put-y"][0]
        assert put_y[1] == 100_000
        assert fifo.blocked_put_ps == 100_000

    def test_get_blocks_on_empty(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=1)
        got = []

        def consumer():
            item = yield from fifo.get()
            got.append((item, sim.now_ps))

        def producer():
            yield wait(42, NS)
            yield from fifo.put("late")

        sim.spawn("c", consumer())
        sim.spawn("p", producer())
        sim.run()
        assert got == [("late", 42_000)]
        assert fifo.blocked_get_ps == 42_000

    def test_max_occupancy_bounded_by_capacity(self):
        sim = Simulator()
        fifo = Fifo("f", sim, capacity=2)

        def producer():
            for i in range(20):
                yield from fifo.put(i)

        def consumer():
            for _ in range(20):
                yield from fifo.get()
                yield wait(1, NS)

        sim.spawn("p", producer())
        sim.spawn("c", consumer())
        sim.run()
        assert fifo.max_occupancy <= 2


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    items=st.lists(st.integers(), min_size=0, max_size=50),
    consumer_delay=st.integers(min_value=0, max_value=20),
)
def test_fifo_preserves_order_and_content(capacity, items, consumer_delay):
    """Property: any FIFO delivers exactly the produced sequence, in order."""
    sim = Simulator()
    fifo = Fifo("f", sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield from fifo.put(item)

    def consumer():
        for _ in items:
            got = yield from fifo.get()
            received.append(got)
            if consumer_delay:
                yield wait(consumer_delay, NS)

    sim.spawn("p", producer())
    sim.spawn("c", consumer())
    sim.run()
    assert received == items
    assert fifo.max_occupancy <= capacity
    assert not sim.starved_processes
