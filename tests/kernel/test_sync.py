"""Tests for mutex and semaphore synchronisation channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Mutex, NS, Semaphore, Simulator, wait


class TestMutex:
    def test_try_lock(self):
        sim = Simulator()
        mutex = Mutex("m", sim)
        assert mutex.try_lock()
        assert mutex.locked
        assert not mutex.try_lock()
        mutex.unlock()
        assert not mutex.locked

    def test_unlock_when_free_raises(self):
        sim = Simulator()
        mutex = Mutex("m", sim)
        with pytest.raises(RuntimeError):
            mutex.unlock()

    def test_mutual_exclusion(self):
        sim = Simulator()
        mutex = Mutex("m", sim)
        in_critical = [0]
        max_seen = [0]

        def worker(idx, hold_ns):
            for __ in range(3):
                yield from mutex.lock()
                in_critical[0] += 1
                max_seen[0] = max(max_seen[0], in_critical[0])
                yield wait(hold_ns, NS)
                in_critical[0] -= 1
                mutex.unlock()

        for i in range(4):
            sim.spawn(f"w{i}", worker(i, 5 + i))
        sim.run()
        assert max_seen[0] == 1  # never two holders at once
        assert mutex.lock_count == 12
        assert mutex.contended_count > 0

    def test_fifo_grant_order(self):
        sim = Simulator()
        mutex = Mutex("m", sim)
        order = []

        def holder():
            yield from mutex.lock()
            yield wait(100, NS)
            mutex.unlock()

        def contender(name, delay_ns):
            yield wait(delay_ns, NS)
            yield from mutex.lock()
            order.append(name)
            mutex.unlock()

        sim.spawn("h", holder())
        sim.spawn("a", contender("a", 10))
        sim.spawn("b", contender("b", 20))
        sim.spawn("c", contender("c", 30))
        sim.run()
        assert order == ["a", "b", "c"]


class TestSemaphore:
    def test_negative_value_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore("s", sim, -1)

    def test_try_wait(self):
        sim = Simulator()
        sem = Semaphore("s", sim, 2)
        assert sem.try_wait()
        assert sem.try_wait()
        assert not sem.try_wait()
        sem.release()
        assert sem.value == 1

    def test_bounded_concurrency(self):
        sim = Simulator()
        sem = Semaphore("pool", sim, 2)
        active = [0]
        max_active = [0]

        def worker():
            yield from sem.acquire()
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield wait(10, NS)
            active[0] -= 1
            sem.release()

        for i in range(6):
            sim.spawn(f"w{i}", worker())
        sim.run()
        assert max_active[0] <= 2
        assert sem.wait_count == 6
        assert sem.post_count == 6

    def test_release_wakes_waiter(self):
        sim = Simulator()
        sem = Semaphore("s", sim, 0)
        got = []

        def waiter():
            yield from sem.acquire()
            got.append(sim.now_ps)

        def poster():
            yield wait(50, NS)
            sem.release()

        sim.spawn("w", waiter())
        sim.spawn("p", poster())
        sim.run()
        assert got == [50_000]

    @settings(max_examples=20, deadline=None)
    @given(
        pool=st.integers(min_value=1, max_value=4),
        workers=st.integers(min_value=1, max_value=10),
        hold_ns=st.integers(min_value=1, max_value=20),
    )
    def test_concurrency_never_exceeds_pool(self, pool, workers, hold_ns):
        sim = Simulator()
        sem = Semaphore("pool", sim, pool)
        active = [0]
        max_active = [0]

        def worker():
            yield from sem.acquire()
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            yield wait(hold_ns, NS)
            active[0] -= 1
            sem.release()

        for i in range(workers):
            sim.spawn(f"w{i}", worker())
        sim.run()
        assert max_active[0] <= pool
        assert sem.value == pool  # all returned
        assert not sim.starved_processes
