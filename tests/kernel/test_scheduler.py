"""Unit tests for the DES scheduler: processes, events, delta cycles."""

import pytest

from repro.kernel import (
    NS,
    US,
    Simulator,
    SimulationError,
    wait,
    wait_all,
    wait_any,
)
from repro.kernel.process import ProcessState


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn("notagen", lambda: None)


def test_timed_wait_advances_clock():
    sim = Simulator()
    seen = []

    def proc():
        yield wait(10, NS)
        seen.append(sim.now_ps)
        yield wait(5, NS)
        seen.append(sim.now_ps)

    sim.spawn("p", proc())
    end = sim.run()
    assert seen == [10_000, 15_000]
    assert end == 15_000


def test_zero_time_wait_is_one_delta():
    sim = Simulator()
    order = []

    def first():
        order.append("first-start")
        yield wait(0)
        order.append("first-resume")

    def second():
        order.append("second-start")
        yield wait(0)
        order.append("second-resume")

    sim.spawn("a", first())
    sim.spawn("b", second())
    sim.run()
    # Both processes run their first segment before either resumes.
    assert order == ["first-start", "second-start", "first-resume", "second-resume"]


def test_event_notification_wakes_waiter():
    sim = Simulator()
    event = sim.event("go")
    seen = []

    def waiter():
        got = yield wait(event)
        seen.append((got, sim.now_ps))

    def notifier():
        yield wait(7, NS)
        event.notify()

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    assert seen == [(event, 7_000)]


def test_timed_event_notification():
    sim = Simulator()
    event = sim.event("later")
    seen = []

    def waiter():
        yield wait(event)
        seen.append(sim.now_ps)

    def notifier():
        event.notify(100 * NS)
        yield wait(1, NS)

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    assert seen == [100_000]


def test_earliest_notification_wins():
    sim = Simulator()
    event = sim.event("e")
    seen = []

    def waiter():
        yield wait(event)
        seen.append(sim.now_ps)

    def notifier():
        event.notify(100 * NS)
        event.notify(10 * NS)  # earlier: supersedes
        event.notify(50 * NS)  # later than pending: ignored
        yield wait(1, NS)

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    assert seen == [10_000]


def test_event_cancel():
    sim = Simulator()
    event = sim.event("e")
    seen = []

    def waiter():
        got = yield wait(event, timeout_ps=50_000)
        seen.append(got)

    def notifier():
        event.notify(10 * NS)
        event.cancel()
        yield wait(1, NS)

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    # Notification cancelled: waiter resumed by timeout with None.
    assert seen == [None]


def test_wait_any():
    sim = Simulator()
    e1, e2 = sim.event("e1"), sim.event("e2")
    seen = []

    def waiter():
        got = yield wait_any([e1, e2])
        seen.append(got)

    def notifier():
        yield wait(5, NS)
        e2.notify()

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    assert seen == [e2]


def test_wait_all():
    sim = Simulator()
    e1, e2 = sim.event("e1"), sim.event("e2")
    seen = []

    def waiter():
        yield wait_all([e1, e2])
        seen.append(sim.now_ps)

    def notifier():
        yield wait(5, NS)
        e1.notify()
        yield wait(5, NS)
        e2.notify()

    sim.spawn("w", waiter())
    sim.spawn("n", notifier())
    sim.run()
    assert seen == [10_000]


def test_wait_timeout_returns_none():
    sim = Simulator()
    event = sim.event("never")
    seen = []

    def waiter():
        got = yield wait(event, timeout_ps=20_000)
        seen.append((got, sim.now_ps))

    sim.spawn("w", waiter())
    sim.run()
    assert seen == [(None, 20_000)]


def test_run_until_stops_time():
    sim = Simulator()

    def proc():
        while True:
            yield wait(10, NS)

    sim.spawn("p", proc())
    end = sim.run(until_ps=95_000)
    assert end == 95_000


def test_process_failure_raises_simulation_error():
    sim = Simulator()

    def bad():
        yield wait(1, NS)
        raise ValueError("boom")

    sim.spawn("bad", bad())
    with pytest.raises(SimulationError, match="bad"):
        sim.run()


def test_starved_processes_reported():
    sim = Simulator()
    event = sim.event("never")

    def waiter():
        yield wait(event)

    proc = sim.spawn("w", waiter())
    sim.run()
    assert sim.starved_processes == [proc]
    assert proc.state is ProcessState.WAITING


def test_kill_process():
    sim = Simulator()
    seen = []

    def proc():
        yield wait(10, NS)
        seen.append("resumed")

    p = sim.spawn("p", proc())

    def killer():
        yield wait(1, NS)
        p.kill()

    sim.spawn("k", killer())
    sim.run()
    assert seen == []
    assert p.state is ProcessState.FINISHED


def test_finished_event_fires():
    sim = Simulator()
    seen = []

    def worker():
        yield wait(10, NS)

    p = sim.spawn("worker", worker())

    def joiner():
        yield wait(p.finished)
        seen.append(sim.now_ps)

    sim.spawn("joiner", joiner())
    sim.run()
    assert seen == [10_000]


def test_yielding_garbage_fails_fast():
    sim = Simulator()

    def bad():
        yield 42  # not a wait request

    sim.spawn("bad", bad())
    with pytest.raises(SimulationError, match="wait"):
        sim.run()


def test_stop_mid_run():
    sim = Simulator()
    ticks = []

    def ticker():
        while True:
            yield wait(1, US)
            ticks.append(sim.now_ps)
            if len(ticks) == 3:
                sim.stop()

    sim.spawn("t", ticker())
    sim.run()
    assert len(ticks) == 3


def test_stop_mid_evaluate_keeps_remaining_ready_queued():
    """stop() during an evaluate phase must not run the rest of the batch."""
    sim = Simulator()
    ran = []

    def stopper():
        ran.append("stopper")
        sim.stop()
        yield wait(1, NS)

    def bystander():
        ran.append("bystander")
        yield wait(1, NS)

    sim.spawn("stopper", stopper())
    proc = sim.spawn("bystander", bystander())
    sim.run()
    assert ran == ["stopper"]
    # The bystander is still queued ready, not silently dropped.
    assert proc.state is ProcessState.READY


def test_same_timestamp_actions_preserve_schedule_order():
    """Actions filed at one timestamp run in scheduling order (bucket FIFO)."""
    sim = Simulator()
    order = []

    def worker(tag, delay_ns):
        yield wait(delay_ns, NS)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(tag, worker(tag, 5))
    sim.spawn("later", worker("later", 7))
    sim.run()
    assert order == ["a", "b", "c", "later"]


def test_activation_and_delta_counters():
    sim = Simulator()

    def proc():
        for _ in range(5):
            yield wait(1, NS)

    sim.spawn("p", proc())
    sim.run()
    assert sim.activation_count >= 6  # initial + 5 resumes
    assert sim.delta_count >= 5
    assert "t=" in sim.describe()


def test_many_processes_order_deterministic():
    """Two identical runs produce identical event orderings."""

    def run_once():
        sim = Simulator()
        trace = []

        def worker(idx):
            for step in range(10):
                yield wait(1 + (idx % 3), NS)
                trace.append((idx, step, sim.now_ps))

        for i in range(20):
            sim.spawn(f"w{i}", worker(i))
        sim.run()
        return trace

    assert run_once() == run_once()
