"""Tests for TLM transactions."""

import pytest

from repro.tlm import Command, Response, Transaction


class TestConstruction:
    def test_read_constructor(self):
        txn = Transaction.read(0x1000, burst_len=4, origin="cpu")
        assert txn.command is Command.READ
        assert txn.address == 0x1000
        assert txn.burst_len == 4
        assert txn.data is None
        assert txn.origin == "cpu"
        assert txn.response is Response.INCOMPLETE

    def test_write_constructor(self):
        txn = Transaction.write(0x2000, [1, 2, 3])
        assert txn.command is Command.WRITE
        assert txn.burst_len == 3
        assert txn.data == [1, 2, 3]

    def test_write_data_copied(self):
        data = [1, 2]
        txn = Transaction.write(0, data)
        data.append(3)
        assert txn.data == [1, 2]

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Transaction.read(-4)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            Transaction(Command.READ, 0, burst_len=0)

    def test_write_without_matching_data_rejected(self):
        with pytest.raises(ValueError):
            Transaction(Command.WRITE, 0, burst_len=2, data=[1])

    def test_txn_ids_unique(self):
        a = Transaction.read(0)
        b = Transaction.read(0)
        assert a.txn_id != b.txn_id

    def test_kind_tags(self):
        txn = Transaction.read(0, kind="bitstream")
        assert txn.kind == "bitstream"


class TestLifecycle:
    def test_latency(self):
        txn = Transaction.read(0)
        txn.issue_ps = 100
        txn.complete_ps = 350
        assert txn.latency_ps == 250

    def test_ok_flag(self):
        txn = Transaction.read(0)
        assert not txn.ok
        txn.response = Response.OK
        assert txn.ok
