"""Tests for sockets and address decoding."""

import pytest

from repro.kernel import NS, Simulator, wait
from repro.tlm import (
    AddressMap,
    AddressRange,
    DecodeError,
    InitiatorSocket,
    Response,
    TargetSocket,
    Transaction,
    TransportError,
)


class TestAddressMap:
    def test_basic_decode(self):
        amap = AddressMap()
        amap.add(0x1000, 0x100, "ram")
        amap.add(0x2000, 0x100, "hw")
        assert amap.decode(0x1000).slave_name == "ram"
        assert amap.decode(0x10FF).slave_name == "ram"
        assert amap.decode(0x1100) is None
        assert amap.decode(0x2050).slave_name == "hw"

    def test_overlap_rejected(self):
        amap = AddressMap()
        amap.add(0x1000, 0x100, "a")
        with pytest.raises(DecodeError):
            amap.add(0x10FF, 0x10, "b")

    def test_adjacent_ranges_ok(self):
        amap = AddressMap()
        amap.add(0x1000, 0x100, "a")
        amap.add(0x1100, 0x100, "b")  # starts exactly at a's end
        assert amap.decode(0x1100).slave_name == "b"

    def test_invalid_ranges(self):
        with pytest.raises(DecodeError):
            AddressRange(-1, 10, "x")
        with pytest.raises(DecodeError):
            AddressRange(0, 0, "x")

    def test_burst_must_fit_one_range(self):
        amap = AddressMap()
        amap.add(0x0, 0x10, "a")  # 4 words
        assert amap.decode_burst(0x0, 4) is not None
        assert amap.decode_burst(0x0, 5) is None
        assert amap.decode_burst(0x8, 2) is not None

    def test_describe_lists_ranges(self):
        amap = AddressMap()
        amap.add(0x1000, 0x100, "ram")
        assert "ram" in amap.describe()

    def test_ranges_sorted(self):
        amap = AddressMap()
        amap.add(0x2000, 0x10, "b")
        amap.add(0x1000, 0x10, "a")
        assert [r.slave_name for r in amap.ranges] == ["a", "b"]


class TestSockets:
    def test_point_to_point_transport(self):
        sim = Simulator()
        served = []

        def transport(txn):
            yield wait(10, NS)
            served.append(txn.address)
            txn.data = [42] * txn.burst_len
            txn.response = Response.OK
            return txn

        target = TargetSocket("mem", transport)
        initiator = InitiatorSocket("cpu")
        initiator.bind(target)
        results = []

        def master():
            txn = Transaction.read(0x100, burst_len=2)
            yield from initiator.transport(txn)
            results.append((txn.data, txn.response, sim.now_ps))

        sim.spawn("m", master())
        sim.run()
        assert served == [0x100]
        assert results == [([42, 42], Response.OK, 10_000)]
        assert initiator.issued_count == 1
        assert target.served_count == 1

    def test_unbound_initiator_raises(self):
        initiator = InitiatorSocket("cpu")
        with pytest.raises(TransportError):
            list(initiator.transport(Transaction.read(0)))

    def test_double_bind_rejected(self):
        def transport(txn):
            yield wait(1)
            return txn

        target = TargetSocket("t", transport)
        initiator = InitiatorSocket("cpu")
        initiator.bind(target)
        with pytest.raises(TransportError):
            initiator.bind(target)

    def test_rebind_allows_retargeting(self):
        def transport(txn):
            yield wait(1)
            return txn

        a = TargetSocket("a", transport)
        b = TargetSocket("b", transport)
        initiator = InitiatorSocket("cpu")
        initiator.bind(a)
        initiator.rebind(b)
        sim = Simulator()

        def master():
            yield from initiator.transport(Transaction.read(0))

        sim.spawn("m", master())
        sim.run()
        assert b.served_count == 1
        assert a.served_count == 0

    def test_bind_requires_transport(self):
        initiator = InitiatorSocket("cpu")
        with pytest.raises(TransportError):
            initiator.bind(object())

    def test_default_ok_response(self):
        """Initiator marks INCOMPLETE transactions OK after transport."""
        def transport(txn):
            yield wait(1)
            return txn  # forgets to set response

        target = TargetSocket("t", transport)
        initiator = InitiatorSocket("cpu")
        initiator.bind(target)
        sim = Simulator()
        txn = Transaction.read(0)

        def master():
            yield from initiator.transport(txn)

        sim.spawn("m", master())
        sim.run()
        assert txn.response is Response.OK
