"""Tests for the RTL substrate: netlists, synthesis, wrappers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import Simulator
from repro.rtl import (
    BinExpr,
    ConstExpr,
    MuxExpr,
    Netlist,
    NetlistError,
    RtlWrapper,
    SigExpr,
    SynthError,
    UnExpr,
    WrapperError,
    synthesize,
)
from repro.rtl.synth import run_fsmd
from repro.facerec.swmodels import (
    distance_step_function,
    distance_step_reference,
    root_function,
)
from repro.swir import BinOp, Const, FunctionBuilder, Interpreter, ProgramBuilder, Var


class TestNetlist:
    def test_declarations(self):
        net = Netlist("n")
        net.add_input("a", 4)
        net.add_register("r", 4, reset=3)
        net.add_wire("w", 4, BinExpr("+", SigExpr("a"), SigExpr("r")))
        with pytest.raises(NetlistError):
            net.add_input("a", 4)  # duplicate
        with pytest.raises(NetlistError):
            net.add_wire("z", 0, ConstExpr(0, 1))  # zero width

    def test_validation_catches_unknown_refs(self):
        net = Netlist("n")
        net.add_register("r", 2)
        net.set_next("r", SigExpr("ghost"))
        with pytest.raises(NetlistError, match="ghost"):
            net.validate()

    def test_validation_catches_undriven_register(self):
        net = Netlist("n")
        net.add_register("r", 2)
        with pytest.raises(NetlistError, match="next-value"):
            net.validate()

    def test_combinational_cycle_detected(self):
        net = Netlist("n")
        net.add_wire("a", 1, SigExpr("b"))
        net.add_wire("b", 1, SigExpr("a"))
        with pytest.raises(NetlistError, match="cycle"):
            net.wire_order()

    def test_step_semantics(self):
        net = Netlist("n")
        net.add_input("inc", 1)
        net.add_register("cnt", 4, reset=0)
        net.set_next("cnt", MuxExpr(SigExpr("inc"),
                                    BinExpr("+", SigExpr("cnt"), ConstExpr(1, 4)),
                                    SigExpr("cnt")))
        net.add_wire("msb", 1, BinExpr(">>", SigExpr("cnt"), ConstExpr(3, 4)))
        net.validate()
        state = net.reset_state()
        for __ in range(9):
            state, __v = net.step(state, {"inc": 1})
        assert state["cnt"] == 9
        __, values = net.step(state, {"inc": 0})
        assert values["msb"] == 1
        assert net.word_width == 4

    def test_width_masking(self):
        net = Netlist("n")
        net.add_register("r", 4, reset=0)
        net.set_next("r", BinExpr("+", SigExpr("r"), ConstExpr(15, 4)))
        net.validate()
        state = net.reset_state()
        state, __ = net.step(state, {})
        state, __ = net.step(state, {})
        assert state["r"] == 14  # 30 mod 16

    def test_missing_input_rejected(self):
        net = Netlist("n")
        net.add_input("a", 1)
        net.add_register("r", 1)
        net.set_next("r", SigExpr("a"))
        net.validate()
        with pytest.raises(NetlistError, match="missing input"):
            net.step(net.reset_state(), {})

    def test_unary_ops(self):
        net = Netlist("n")
        net.add_input("a", 4)
        net.add_wire("inv", 4, UnExpr("~", SigExpr("a")))
        net.add_wire("nz", 1, UnExpr("!", SigExpr("a")))
        net.validate()
        values = net.eval_combinational({}, {"a": 0b0101})
        assert values["inv"] == 0b1010
        assert values["nz"] == 0

    def test_stats(self):
        net = Netlist("n")
        net.add_input("a", 8)
        net.add_register("r", 8)
        net.set_next("r", SigExpr("a"))
        stats = net.stats()
        assert stats == {"inputs": 1, "registers": 1, "wires": 0,
                         "state_bits": 8}


class TestSynthesis:
    def test_straight_line(self):
        fb = FunctionBuilder("f", ["a", "b"])
        fb.assign("s", BinOp("+", Var("a"), Var("b")))
        fb.ret(BinOp("*", Var("s"), Const(2)))
        net = synthesize(fb.build(), width=16)
        result, cycles = run_fsmd(net, {"a": 3, "b": 4})
        assert result == 14
        assert cycles >= 2

    def test_division_by_power_of_two(self):
        fb = FunctionBuilder("f", ["a"])
        fb.ret(BinOp("/", Var("a"), Const(8)))
        net = synthesize(fb.build())
        assert run_fsmd(net, {"a": 100})[0] == 12

    def test_modulo_power_of_two(self):
        fb = FunctionBuilder("f", ["a"])
        fb.ret(BinOp("%", Var("a"), Const(8)))
        net = synthesize(fb.build())
        assert run_fsmd(net, {"a": 100})[0] == 4

    def test_general_division_rejected(self):
        fb = FunctionBuilder("f", ["a", "b"])
        fb.ret(BinOp("/", Var("a"), Var("b")))
        with pytest.raises(SynthError):
            synthesize(fb.build())

    def test_fpga_statement_rejected(self):
        fb = FunctionBuilder("f", ["a"])
        fb.fpga_call("X", (), target="r")
        fb.ret(Var("r"))
        with pytest.raises(SynthError):
            synthesize(fb.build())

    def test_negative_constant_rejected(self):
        fb = FunctionBuilder("f", [])
        fb.ret(Const(-1))
        with pytest.raises(SynthError):
            synthesize(fb.build())

    def test_if_else(self):
        fb = FunctionBuilder("f", ["a", "b"])
        with fb.if_else(BinOp(">=", Var("a"), Var("b"))) as orelse:
            fb.assign("m", Var("a"))
        with orelse():
            fb.assign("m", Var("b"))
        fb.ret(Var("m"))
        net = synthesize(fb.build())
        assert run_fsmd(net, {"a": 9, "b": 4})[0] == 9
        assert run_fsmd(net, {"a": 4, "b": 9})[0] == 9

    def test_while_loop(self):
        fb = FunctionBuilder("f", ["n"])
        fb.assign("acc", Const(0))
        fb.assign("i", Const(0))
        with fb.while_(BinOp("<", Var("i"), Var("n"))):
            fb.assign("acc", BinOp("+", Var("acc"), Var("i")))
            fb.assign("i", BinOp("+", Var("i"), Const(1)))
        fb.ret(Var("acc"))
        net = synthesize(fb.build())
        assert run_fsmd(net, {"n": 6})[0] == 15

    def test_reusable_across_calls(self):
        net = synthesize(root_function(16), width=16)
        for n in (4, 16, 81):
            assert run_fsmd(net, {"n": n})[0] == math.isqrt(n)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 32767))
    def test_root_fsmd_matches_isqrt(self, n):
        net = synthesize(root_function(16), width=16)
        assert run_fsmd(net, {"n": n})[0] == math.isqrt(n)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    def test_distance_step_matches_reference(self, acc, a, b):
        net = synthesize(distance_step_function(), width=16)
        expected = distance_step_reference(acc, a, b, 16)
        assert run_fsmd(net, {"acc": acc, "a": a, "b": b})[0] == expected

    def test_fsmd_matches_interpreter(self):
        """Synthesised hardware computes exactly what the IR interpreter does."""
        function = root_function(16)
        net = synthesize(function, width=16)
        program = ProgramBuilder("root").add(function).build()
        interp = Interpreter(program)
        for n in (0, 1, 7, 100, 4095):
            assert run_fsmd(net, {"n": n})[0] == interp.run([n]).returned


class TestWrapper:
    def test_call_protocol(self):
        sim = Simulator()
        net = synthesize(root_function(16), width=16)
        wrapper = RtlWrapper("root", sim, net, clock_ps=10_000)
        results = []

        def driver():
            for n in (25, 144):
                value = yield from wrapper.call({"n": n})
                results.append((value, sim.now_ps))

        sim.spawn("d", driver())
        sim.run()
        assert [v for v, __ in results] == [5, 12]
        assert results[1][1] > results[0][1]
        assert wrapper.stats()["calls"] == 2

    def test_missing_argument(self):
        sim = Simulator()
        net = synthesize(root_function(16), width=16)
        wrapper = RtlWrapper("root", sim, net)

        def driver():
            yield from wrapper.call({})

        sim.spawn("d", driver())
        with pytest.raises(Exception):
            sim.run()

    def test_requires_handshake_signals(self):
        net = Netlist("nohandshake")
        net.add_register("r", 1)
        net.set_next("r", SigExpr("r"))
        sim = Simulator()
        with pytest.raises(WrapperError):
            RtlWrapper("w", sim, net)

    def test_bus_traffic_accounted(self):
        from repro.platform import Bus, Memory
        from repro.tlm import InitiatorSocket
        sim = Simulator()
        bus = Bus("amba", sim)
        ram = Memory("ram", sim, base=0x0, size_words=64)
        bus.attach("ram", 0x0, 256, ram)
        socket = InitiatorSocket("acc")
        socket.bind(bus)
        net = synthesize(root_function(16), width=16)
        wrapper = RtlWrapper("root", sim, net, bus_socket=socket, bus_base=0x10)

        def driver():
            yield from wrapper.call({"n": 81})

        sim.spawn("d", driver())
        sim.run()
        assert bus.stats.words == 2  # one arg word + one result word
