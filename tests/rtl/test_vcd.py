"""Tests for the VCD waveform writer."""

import io

import pytest

from repro.facerec.swmodels import root_function
from repro.rtl.synth import synthesize
from repro.rtl.vcd import VcdWriter, _identifier, dump_fsmd_run


class TestIdentifiers:
    def test_unique_for_many_variables(self):
        idents = {_identifier(i) for i in range(2000)}
        assert len(idents) == 2000

    def test_short_for_small_indices(self):
        assert len(_identifier(0)) == 1


class TestVcdWriter:
    def _writer(self):
        stream = io.StringIO()
        vcd = VcdWriter(stream, timescale="1ns", module="dut")
        return stream, vcd

    def test_header_structure(self):
        stream, vcd = self._writer()
        vcd.declare("clk", 1)
        vcd.declare("bus", 8)
        vcd.begin()
        text = stream.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$scope module dut $end" in text
        assert "$var wire 1" in text and "$var wire 8" in text
        assert "$enddefinitions $end" in text

    def test_change_encoding(self):
        stream, vcd = self._writer()
        vcd.declare("clk", 1)
        vcd.declare("bus", 8)
        vcd.begin()
        vcd.change(0, "clk", 1)
        vcd.change(0, "bus", 0xA5)
        vcd.change(10, "clk", 0)
        vcd.close()
        text = stream.getvalue()
        assert "#0\n" in text and "#10\n" in text
        assert "b10100101 " in text  # multi-bit value
        # Single-bit values use the compact form.
        lines = text.splitlines()
        assert any(line.startswith("1") and len(line) <= 3 for line in lines)

    def test_no_redundant_changes(self):
        stream, vcd = self._writer()
        vcd.declare("sig", 4)
        vcd.begin()
        vcd.change(0, "sig", 5)
        before = stream.getvalue()
        vcd.change(1, "sig", 5)  # unchanged: suppressed
        assert stream.getvalue() == before

    def test_time_must_be_monotone(self):
        stream, vcd = self._writer()
        vcd.declare("sig", 1)
        vcd.begin()
        vcd.change(10, "sig", 1)
        with pytest.raises(ValueError):
            vcd.change(5, "sig", 0)

    def test_declare_after_begin_rejected(self):
        __, vcd = self._writer()
        vcd.begin()
        with pytest.raises(RuntimeError):
            vcd.declare("late", 1)

    def test_change_before_begin_rejected(self):
        __, vcd = self._writer()
        vcd.declare("sig", 1)
        with pytest.raises(RuntimeError):
            vcd.change(0, "sig", 1)

    def test_undeclared_variable_rejected(self):
        __, vcd = self._writer()
        vcd.declare("sig", 1)
        vcd.begin()
        with pytest.raises(KeyError):
            vcd.change(0, "ghost", 1)

    def test_duplicate_declaration_rejected(self):
        __, vcd = self._writer()
        vcd.declare("sig", 1)
        with pytest.raises(ValueError):
            vcd.declare("sig", 2)

    def test_snapshot_records_known_names(self):
        stream, vcd = self._writer()
        vcd.declare("a", 4)
        vcd.declare("b", 4)
        vcd.begin()
        vcd.snapshot(0, {"a": 1, "b": 2, "ignored": 3})
        text = stream.getvalue()
        assert "b1 " in text and "b10 " in text


class TestDumpFsmdRun:
    def test_dump_root_run(self):
        netlist = synthesize(root_function(16), width=16)
        stimulus = [{"start": 1, "arg_n": 81}]
        stimulus += [{"start": 0, "arg_n": 0}] * 40
        stream = io.StringIO()
        cycles = dump_fsmd_run(netlist, stimulus, stream)
        assert cycles == 41
        text = stream.getvalue()
        assert "fsmd_root" in text
        assert "result_reg" in text
        # The final result (isqrt(81) = 9 = 0b1001) must appear.
        assert "b1001 " in text

    def test_signal_selection(self):
        netlist = synthesize(root_function(16), width=16)
        stream = io.StringIO()
        dump_fsmd_run(netlist, [{"start": 1, "arg_n": 4}], stream,
                      signals=["state", "done"])
        text = stream.getvalue()
        assert "state" in text and "done" in text
        assert "v_x" not in text
