"""Golden-schema regression tests.

Every serialized result kind has a frozen *schema outline* fixture under
``tests/golden/``: the recursive key structure, scalar types and literal
``schema`` version tags of its ``to_dict`` document.  Any drift — a key
added, removed, retyped, or a document reshaped — fails here unless the
producer bumped its ``repro.<kind>/vN`` schema tag (and this fixture was
regenerated), enforcing the versioning contract in
:mod:`repro.serialize`.

To regenerate after an *intentional, versioned* change::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/golden -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.api import Campaign, CampaignSpec

GOLDEN_DIR = Path(__file__).parent

SPEC = CampaignSpec(name="golden", identities=2, poses=1, size=32, frames=1)


def outline(value):
    """The schema outline of a document: structure and types, not data.

    ``schema`` keys keep their literal value (the version tag is the
    contract); every other scalar collapses to its JSON type name; lists
    collapse to the sorted set of their distinct element outlines.
    """
    if isinstance(value, dict):
        return {
            key: (child if key == "schema" else outline(child))
            for key, child in value.items()
        }
    if isinstance(value, list):
        distinct = {json.dumps(outline(v), sort_keys=True) for v in value}
        return {"<list>": sorted(json.loads(d) for d in distinct)}
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    raise TypeError(f"non-JSON value in document: {value!r}")


@pytest.fixture(scope="module")
def documents(tmp_path_factory):
    """One serialized document per result kind, from a tiny campaign."""
    outcome = Campaign(SPEC).run()
    sweep = Campaign.sweep(SPEC.replace(levels=(1,)), {"seed": [1, 2]})
    report = outcome.report.to_dict()
    # The persisted-record kinds reuse the already-computed outcome (no
    # recompute): one store entry, one claimed job, a one-runner fleet.
    from repro.ledger import Ledger, export_bundle
    from repro.service.queue import JobQueue
    from repro.store import CampaignStore

    root = tmp_path_factory.mktemp("golden-store")
    store = CampaignStore(root / "store")
    key = store.put_campaign(SPEC, outcome.to_dict())
    queue = JobQueue(root / "queue")
    job, _ = queue.submit(SPEC, sweep={"seed": [1]}, tenant="golden")
    queue.claim("runner-golden", ttl=60.0)
    fleet = {"runners": {"runner-golden": {
        "first_seen": 1.0, "claims": 1, "heartbeats": 0, "uploads": 0,
        "last_seen": 2.0}}}
    ledger = Ledger.from_store(store, queue=queue, fleet=fleet)
    export_bundle(store, SPEC.to_dict(), root / "bundle")
    manifest = json.loads((root / "bundle" / "manifest.json").read_text())
    from repro import telemetry

    spans_dir = telemetry.spans_dir_for(root / "store")
    telemetry.configure(spans_dir=spans_dir)
    try:
        with telemetry.span("golden.stage", stage="golden",
                            passed=True) as tspan:
            tspan.set_attr("coverage", 1.0)
    finally:
        telemetry.disable()
    span_record = telemetry.read_spans(spans_dir)[0]
    return {
        "campaign_spec": SPEC.to_dict(),
        "level1": report["levels"]["level1"],
        "level2": report["levels"]["level2"],
        "level3": report["levels"]["level3"],
        "level4": report["levels"]["level4"],
        "flow_report": report,
        "campaign_outcome": outcome.to_dict(),
        "campaign_sweep": sweep.to_dict(),
        "store_entry": store.get(key),
        "job_record": queue.get(job["id"]),
        "ledger": ledger.to_dict(),
        "export_manifest": manifest,
        "span": span_record,
    }


KINDS = ["campaign_spec", "level1", "level2", "level3", "level4",
         "flow_report", "campaign_outcome", "campaign_sweep",
         "store_entry", "job_record", "ledger", "export_manifest",
         "span"]


@pytest.mark.parametrize("kind", KINDS)
def test_schema_outline_frozen(documents, kind):
    fixture = GOLDEN_DIR / f"{kind}.json"
    got = outline(json.loads(json.dumps(documents[kind])))
    if os.environ.get("GOLDEN_REGEN"):
        fixture.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
    assert fixture.exists(), (
        f"missing golden fixture {fixture.name}; generate it with "
        "GOLDEN_REGEN=1 pytest tests/golden"
    )
    want = json.loads(fixture.read_text())
    assert got == want, (
        f"serialized schema of {kind!r} drifted from tests/golden/"
        f"{fixture.name}. If the change is intentional, bump the "
        "document's repro.<kind>/vN schema tag and regenerate fixtures "
        "with GOLDEN_REGEN=1 pytest tests/golden"
    )


@pytest.mark.parametrize("kind", KINDS)
def test_documents_carry_schema_tags(documents, kind):
    document = documents[kind]
    assert isinstance(document.get("schema"), str)
    assert document["schema"].startswith("repro.")
    assert "/v" in document["schema"]
