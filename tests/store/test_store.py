"""Unit tests for the content-addressed campaign store.

Covers the durability contract of :mod:`repro.store`: content keys,
entry envelopes, atomic-write hygiene, corruption-tolerant reads
(truncated/garbage/foreign files degrade to misses, never exceptions)
and the ``ls``/``show``/``gc`` maintenance surface.
"""

import json
import os
import time

import pytest

from repro.api import CampaignSpec
from repro.store import (
    CampaignStore,
    ENTRY_SCHEMA,
    STORE_SCHEMA,
    STORE_VERSION,
    campaign_identity,
    campaign_key,
    stage_key,
)

SPEC = CampaignSpec(name="store-unit", identities=2, poses=1, size=32,
                    frames=1, levels=(1,))
OTHER = SPEC.replace(frames=2)

#: A stand-in outcome document (entries don't validate payload schemas).
PAYLOAD = {"schema": "repro.campaign_outcome/v1", "passed": True,
           "wall_seconds": 1.25, "stages": {}}


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


class TestKeys:
    def test_campaign_key_is_deterministic(self):
        assert campaign_key(SPEC) == campaign_key(SPEC)
        assert len(campaign_key(SPEC)) == 64
        int(campaign_key(SPEC), 16)  # hex digest

    def test_key_changes_with_the_spec(self):
        assert campaign_key(SPEC) != campaign_key(OTHER)
        assert campaign_key(SPEC) != campaign_key(SPEC.replace(seed=7))

    def test_key_ignores_params_insertion_order(self):
        a = CampaignSpec(name="k", workload="blockcipher", frames=1,
                         levels=(1,),
                         params={"block_words": 8, "key_seed": 1})
        b = CampaignSpec(name="k", workload="blockcipher", frames=1,
                         levels=(1,),
                         params={"key_seed": 1, "block_words": 8})
        assert campaign_key(a) == campaign_key(b)

    def test_identity_carries_store_and_revisions(self):
        identity = campaign_identity(SPEC)
        assert identity["store_version"] == STORE_VERSION
        assert identity["workload"] == "facerec"
        assert identity["workload_revision"] == 1
        assert identity["engine"] == SPEC.engine.name
        assert identity["engine_options"] == SPEC.engine.options()
        assert identity["engine_revision"] >= 1

    def test_engine_revision_shifts_the_key(self, monkeypatch):
        """Bumping the engine revision retires every stored entry."""
        import repro.swir.engine as engine_mod

        before = campaign_key(SPEC)
        monkeypatch.setattr(engine_mod, "ENGINE_REVISION", 999)
        assert campaign_key(SPEC) != before

    def test_stage_key_separates_identities(self):
        base = {"stage": "level4", "workload": "facerec",
                "workload_revision": 1, "run_pcc": False}
        assert stage_key(base) == stage_key(dict(base))
        assert stage_key(base) != stage_key({**base, "run_pcc": True})
        assert stage_key(base) != campaign_key(SPEC)


class TestRoundTrip:
    def test_put_get_campaign(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        envelope = store.get_campaign(SPEC)
        assert envelope["schema"] == ENTRY_SCHEMA
        assert envelope["key"] == key == store.campaign_key(SPEC)
        assert envelope["kind"] == "campaign"
        assert envelope["status"] == "ok"
        assert envelope["payload"] == PAYLOAD
        assert envelope["error"] is None
        assert envelope["attempts"] == 1
        assert envelope["spec"] == SPEC.to_dict()

    def test_miss_returns_none_and_counts(self, store):
        assert store.get_campaign(SPEC) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put_campaign(SPEC, PAYLOAD)
        assert store.get_campaign(SPEC) is not None
        assert (store.hits, store.misses) == (1, 1)

    def test_failure_envelope(self, store):
        store.put_campaign_failure(SPEC, RuntimeError("boom at point 3"))
        envelope = store.get_campaign(SPEC)
        assert envelope["status"] == "error"
        assert envelope["payload"] is None
        assert envelope["error"] == {"type": "RuntimeError",
                                     "message": "boom at point 3"}

    def test_attempts_count_across_overwrites(self, store):
        store.put_campaign_failure(SPEC, RuntimeError("first"))
        store.put_campaign_failure(SPEC, RuntimeError("second"))
        assert store.get_campaign(SPEC)["attempts"] == 2
        store.put_campaign(SPEC, PAYLOAD)  # the retry that succeeded
        envelope = store.get_campaign(SPEC)
        assert envelope["status"] == "ok"
        assert envelope["attempts"] == 3

    def test_stage_entries(self, store):
        identity = {"stage": "level4", "workload": "facerec",
                    "workload_revision": 1, "run_pcc": False}
        assert store.get_stage(identity) is None
        store.put_stage(identity, {"schema": "repro.level4/v1",
                                   "verified": True, "modules": {}})
        assert store.get_stage(identity)["verified"] is True

    def test_entries_survive_reopening(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        reopened = CampaignStore(store.root)
        assert reopened.get_campaign(SPEC)["payload"] == PAYLOAD

    def test_envelopes_equal_minus_volatile_keys(self, store):
        """Two runs of the same spec write equal envelopes: only the
        volatile keys (created_at, payload wall-clock) may differ."""
        from repro.serialize import documents_equal

        store.put_campaign(SPEC, PAYLOAD)
        first = store.get_campaign(SPEC)
        store.put_campaign(SPEC, dict(PAYLOAD, wall_seconds=99.0))
        second = store.get_campaign(SPEC)
        assert first != second  # created_at / wall_seconds moved...
        second = dict(second, attempts=first["attempts"])
        assert documents_equal(first, second)  # ...but the results agree
        assert not documents_equal(
            first, dict(second, payload=dict(PAYLOAD, passed=False)))

    def test_open_without_create_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no campaign store"):
            CampaignStore(tmp_path / "nowhere", create=False)
        assert not (tmp_path / "nowhere").exists()  # nothing left behind

    def test_delete(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        assert store.delete(key) is True
        assert store.delete(key) is False
        assert store.get(key) is None


class TestCorruptionTolerance:
    def corrupt(self, store, key, text):
        path = store._entry_path(key)
        with open(path, "w") as stream:
            stream.write(text)

    def test_truncated_entry_is_a_miss(self, store):
        """A partial write (crash mid-dump) degrades to a cache miss."""
        key = store.put_campaign(SPEC, PAYLOAD)
        full = store._entry_path(key).read_text()
        self.corrupt(store, key, full[: len(full) // 2])
        assert store.get(key) is None
        assert store.corrupt  # remembered for gc

    def test_garbage_entry_is_a_miss(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        self.corrupt(store, key, "\x00\xff not json at all")
        assert store.get(key) is None

    def test_wrong_key_entry_is_a_miss(self, store):
        """An envelope copied under the wrong name does not resolve."""
        key = store.put_campaign(SPEC, PAYLOAD)
        envelope = json.loads(store._entry_path(key).read_text())
        other = store.campaign_key(OTHER)
        path = store._entry_path(other)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(envelope))  # still says key=<key>
        assert store.get(other) is None
        assert store.get(key) is not None

    def test_foreign_schema_is_a_miss(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        self.corrupt(store, key, json.dumps({"schema": "other/v1",
                                             "key": key}))
        assert store.get(key) is None

    def test_corrupt_entry_can_be_overwritten(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        self.corrupt(store, key, "{broken")
        assert store.get(key) is None
        store.put_campaign(SPEC, PAYLOAD)
        assert store.get(key)["payload"] == PAYLOAD

    def test_version_mismatch_refuses_to_open(self, tmp_path):
        root = tmp_path / "old"
        CampaignStore(root)
        manifest = json.loads((root / "store.json").read_text())
        manifest["version"] = STORE_VERSION + 1
        (root / "store.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            CampaignStore(root)

    def test_corrupt_manifest_is_rewritten_on_open(self, tmp_path):
        root = tmp_path / "mangled"
        CampaignStore(root)
        (root / "store.json").write_text("{not json")
        CampaignStore(root)  # tolerated — and repaired:
        manifest = json.loads((root / "store.json").read_text())
        assert manifest == {"schema": STORE_SCHEMA,
                            "version": STORE_VERSION}


class TestMaintenance:
    def test_ls_rows(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        store.put_campaign_failure(OTHER, RuntimeError("x"))
        store.put_stage({"stage": "level4", "workload": "facerec",
                         "workload_revision": 1, "run_pcc": False},
                        {"verified": True})
        rows = store.ls()
        assert len(rows) == 3
        campaigns = [row for row in rows if row["kind"] == "campaign"]
        assert {row["status"] for row in campaigns} == {"ok", "error"}
        assert all(row["name"] == "store-unit" for row in campaigns)
        assert all(row["workload"] == "facerec" for row in campaigns)
        (stage_row,) = [row for row in rows if row["kind"] == "stage"]
        assert stage_row["name"] == "level4"
        assert all(row["bytes"] > 0 for row in rows)

    def test_show_accepts_unique_prefix(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        assert store.show(key[:10])["key"] == key
        with pytest.raises(KeyError):
            store.show("ffffffffffff" if not key.startswith("f") else "000")

    def test_show_rejects_ambiguous_prefix(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        store.put_campaign(OTHER, PAYLOAD)
        with pytest.raises(ValueError, match="ambiguous"):
            store.show("")

    def test_gc_reclaims_stale_tmp_and_corrupt(self, store):
        from repro.store import STALE_TMP_SECONDS

        key = store.put_campaign(SPEC, PAYLOAD)
        # stale atomic-write temp files from crashed writers: one next
        # to the entries, one from a manifest write in the store root
        stale = time.time() - STALE_TMP_SECONDS - 60
        litter = store._entry_path(key).parent / ".dead.json.tmp.999"
        litter.write_text("{")
        os.utime(litter, (stale, stale))
        manifest_tmp = store.root / ".store.json.tmp.999"
        manifest_tmp.write_text("{")
        os.utime(manifest_tmp, (stale, stale))
        # a fresh temp file: may belong to a live concurrent writer
        live = store._entry_path(key).parent / ".live.json.tmp.123"
        live.write_text("{")
        # a corrupt sibling entry
        bad = store.entries_dir / "zz" / ("f" * 64 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("garbage")
        stats = store.gc()
        assert stats == {"removed_tmp": 2, "removed_corrupt": 1,
                         "removed_failed": 0, "removed_policy": 0,
                         "kept": 1, "protected": 0,
                         "dry_run": False, "candidates": [],
                         "protected_keys": []}
        assert not litter.exists() and not bad.exists()
        assert not manifest_tmp.exists()
        assert live.exists()  # young temps are never touched
        assert store.get(key) is not None

    def test_gc_dry_run_reports_but_deletes_nothing(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        store.put_campaign_failure(OTHER, RuntimeError("x"))
        bad = store.entries_dir / "zz" / ("f" * 64 + ".json")
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_text("garbage")
        stats = store.gc(failed=True, dry_run=True)
        assert stats["dry_run"]
        assert stats["removed_corrupt"] == 1
        assert stats["removed_failed"] == 1 and stats["kept"] == 1
        assert stats["candidates"] and str(bad) in stats["candidates"]
        # ... but everything is still there, and a real gc then agrees.
        assert bad.exists()
        assert store.get_campaign(OTHER) is not None
        real = store.gc(failed=True)
        assert real["removed_corrupt"] == 1 and real["removed_failed"] == 1
        assert not bad.exists()

    def test_gc_failed_removes_error_entries_only(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        store.put_campaign_failure(OTHER, RuntimeError("x"))
        assert store.gc()["kept"] == 2  # failures kept by default
        stats = store.gc(failed=True)
        assert stats["removed_failed"] == 1 and stats["kept"] == 1
        assert store.get_campaign(OTHER) is None
        assert store.get_campaign(SPEC) is not None

    def test_atomic_write_leaves_no_litter(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        leftovers = [p for p in store.entries_dir.rglob("*")
                     if p.is_file() and p.name.startswith(".")]
        assert leftovers == []

    def test_describe_mentions_counts(self, store):
        store.put_campaign(SPEC, PAYLOAD)
        store.put_campaign_failure(OTHER, RuntimeError("x"))
        text = store.describe()
        assert "2 entries (1 ok, 1 failed)" in text
        assert STORE_SCHEMA in text

    def test_manifest_written_once(self, store):
        manifest = json.loads((store.root / "store.json").read_text())
        assert manifest == {"schema": STORE_SCHEMA,
                            "version": STORE_VERSION}
        before = os.stat(store.root / "store.json").st_mtime_ns
        CampaignStore(store.root)
        assert os.stat(store.root / "store.json").st_mtime_ns == before
