"""Resumable-sweep semantics against a campaign store.

The acceptance contract: a sweep run cold against a store, then re-run
with ``resume=True`` against the same store, produces **byte-identical**
merged results (per ``canonical_json`` minus ``VOLATILE_KEYS`` — in
fact identical including the per-point volatile keys, since stored
payloads merge verbatim) while executing **zero** already-completed grid
points; recorded *failures* are retried, recorded *successes* never.
"""

import pytest

from repro.api import (
    Campaign,
    CampaignSpec,
    CampaignStore,
    SweepPointError,
)
from repro.serialize import canonical_json

#: Fast grid: levels 1-2 only (no BMC), tiny facerec.
FAST = CampaignSpec(name="resume", identities=2, poses=1, size=32,
                    frames=1, levels=(1, 2))
GRID = {"frames": [1, 2], "cpu": ["ARM7TDMI", "ARM9TDMI"]}
POINTS = [spec.name for spec in Campaign.sweep_specs(FAST, GRID)]


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


def forbid_recompute(monkeypatch):
    """After this, any Campaign.run means resume failed to skip."""
    def bomb(self, session=None, store=None):
        raise AssertionError(
            f"resume recomputed an already-completed point: "
            f"{self.spec.name!r}")
    monkeypatch.setattr(Campaign, "run", bomb)


class TestResume:
    def test_cold_then_warm_is_byte_identical_with_zero_recomputes(
            self, store, monkeypatch):
        cold = Campaign.sweep(FAST, GRID, store=store)
        assert cold.executed == POINTS and cold.store_hits == []
        assert cold.passed

        # Store hits vs recomputes: the warm run must take every point
        # from the store and compute none (Campaign.run is a bomb).
        forbid_recompute(monkeypatch)
        warm = Campaign.sweep(FAST, GRID, store=store, resume=True)
        assert warm.store_hits == POINTS
        assert warm.executed == [] and warm.retried == []
        assert canonical_json(warm.to_dict()) == canonical_json(cold.to_dict())
        # Stored payloads merge verbatim: identical even before
        # stripping the volatile keys.
        assert warm.runs() == cold.runs()

    def test_cold_without_resume_recomputes_but_persists(self, store):
        Campaign.sweep(FAST, {"frames": [1]}, store=store)
        again = Campaign.sweep(FAST, {"frames": [1]}, store=store)
        # resume not requested: executed again (and overwritten)...
        assert again.executed == ["resume[frames=1]"]
        entry = store.get_campaign(FAST.replace(name="resume[frames=1]"))
        assert entry["attempts"] == 2

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="resume"):
            Campaign.sweep(FAST, GRID, resume=True)

    def test_partial_store_runs_only_missing_points(self, store,
                                                    monkeypatch):
        small_grid = {"frames": [1, 2]}
        specs = Campaign.sweep_specs(FAST, small_grid)
        # Only the first point is in the store (simulating a sweep that
        # was killed mid-grid).
        Campaign.sweep(FAST, {"frames": [1]}, store=store)
        real_run = Campaign.run
        ran = []

        def counting(self, session=None, store=None):
            ran.append(self.spec.name)
            return real_run(self, session=session, store=store)
        monkeypatch.setattr(Campaign, "run", counting)
        result = Campaign.sweep(FAST, small_grid, store=store, resume=True)
        assert ran == [specs[1].name]
        assert result.store_hits == [specs[0].name]
        assert result.executed == [specs[1].name]
        assert [run["spec"]["name"] for run in result.runs()] == \
            [spec.name for spec in specs]

    def test_failures_are_recorded_and_retried_never_successes(
            self, store, monkeypatch):
        small_grid = {"frames": [1, 2]}
        fail_name = "resume[frames=2]"
        real_run = Campaign.run

        def failing(self, session=None, store=None):
            if self.spec.name == fail_name:
                raise RuntimeError("injected point failure")
            return real_run(self, session=session, store=store)

        monkeypatch.setattr(Campaign, "run", failing)
        with pytest.raises(SweepPointError, match="injected point failure"):
            Campaign.sweep(FAST, small_grid, store=store)
        # The completed point and the failure envelope both persisted.
        ok_entry = store.get_campaign(FAST.replace(name="resume[frames=1]",
                                                   frames=1))
        bad_entry = store.get_campaign(FAST.replace(name=fail_name,
                                                    frames=2))
        assert ok_entry["status"] == "ok"
        assert bad_entry["status"] == "error"
        assert bad_entry["error"]["type"] == "RuntimeError"

        # Resume: the success is never re-run, the failure is retried.
        ran = []

        def counting(self, session=None, store=None):
            ran.append(self.spec.name)
            return real_run(self, session=session, store=store)
        monkeypatch.setattr(Campaign, "run", counting)
        result = Campaign.sweep(FAST, small_grid, store=store, resume=True)
        assert ran == [fail_name]
        assert result.store_hits == ["resume[frames=1]"]
        assert result.retried == [fail_name]
        assert result.executed == [fail_name]
        assert result.passed
        # The retried point's envelope now records the second attempt.
        healed = store.get_campaign(FAST.replace(name=fail_name, frames=2))
        assert healed["status"] == "ok" and healed["attempts"] == 2

    def test_corrupted_entry_is_recomputed_on_resume(self, store):
        """A truncated entry (partial write) degrades to re-execution."""
        grid = {"frames": [1]}
        cold = Campaign.sweep(FAST, grid, store=store)
        key = store.campaign_key(FAST.replace(name="resume[frames=1]"))
        path = store._entry_path(key)
        path.write_text(path.read_text()[:100])  # simulate a torn write
        warm = Campaign.sweep(FAST, grid, store=store, resume=True)
        assert warm.executed == ["resume[frames=1]"]
        assert canonical_json(warm.to_dict()) == canonical_json(cold.to_dict())
        # ... and the healthy entry is back for the next resume.
        assert store.get(key)["status"] == "ok"

    def test_persistent_failure_keeps_its_envelope(self, store,
                                                   monkeypatch):
        def always_failing(self, session=None, store=None):
            raise RuntimeError("still broken")
        monkeypatch.setattr(Campaign, "run", always_failing)
        grid = {"frames": [1]}
        for _ in range(2):
            with pytest.raises(SweepPointError):
                Campaign.sweep(FAST, grid, store=store, resume=True)
        entry = store.get_campaign(FAST.replace(name="resume[frames=1]"))
        assert entry["status"] == "error"
        assert entry["attempts"] == 2


class TestParallelResume:
    def test_pool_workers_share_the_store(self, store, monkeypatch):
        cold = Campaign.sweep(FAST, GRID, jobs=2, store=store)
        assert cold.executed == POINTS
        # Every point persisted by its worker process.
        assert len([r for r in store.ls()
                    if r["kind"] == "campaign"]) == len(POINTS)

        forbid_recompute(monkeypatch)
        warm = Campaign.sweep(FAST, GRID, jobs=2, store=store, resume=True)
        assert warm.store_hits == POINTS and warm.executed == []
        assert canonical_json(warm.to_dict()) == canonical_json(cold.to_dict())

    def test_serial_and_parallel_store_sweeps_agree(self, tmp_path):
        serial = Campaign.sweep(
            FAST, {"frames": [1, 2]},
            store=CampaignStore(tmp_path / "serial"))
        parallel = Campaign.sweep(
            FAST, {"frames": [1, 2]}, jobs=2,
            store=CampaignStore(tmp_path / "parallel"))
        assert canonical_json(serial.to_dict()) == \
            canonical_json(parallel.to_dict())


class TestFullFlowResume:
    """The all-four-levels acceptance run (slow: one real level 4)."""

    def test_full_campaign_resumes_byte_identically(self, tmp_path,
                                                    monkeypatch):
        store = CampaignStore(tmp_path / "store")
        spec = CampaignSpec(name="full", identities=2, poses=1, size=32,
                            frames=1)
        grid = {"frames": [1, 2]}
        cold = Campaign.sweep(spec, grid, store=store)
        assert cold.passed
        # Both campaign entries and the shared level-4 stage entry.
        kinds = {row["kind"] for row in store.ls()}
        assert kinds == {"campaign", "stage"}

        forbid_recompute(monkeypatch)
        warm = Campaign.sweep(spec, grid, store=store, resume=True)
        assert warm.executed == []
        assert canonical_json(warm.to_dict()) == canonical_json(cold.to_dict())
