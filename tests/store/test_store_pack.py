"""The packed store layout: pack/index round-trips, precedence, migration.

The contract under test: ``store pack`` may change *where* entries live
but never *what* they say — every envelope reads back byte-identical
through ``get()``, loose rewrites shadow their packed copies, and a
pre-shard (flat) store migrates without any key changing.
"""

import json

import pytest

from repro.api import CampaignSpec
from repro.store import CampaignStore, PACK_SCHEMA, campaign_key

SPEC = CampaignSpec(name="pack-unit", identities=2, poses=1, size=32,
                    frames=1, levels=(1,))

PAYLOAD = {"schema": "repro.campaign_outcome/v1", "passed": True,
           "wall_seconds": 1.25, "stages": {}}


@pytest.fixture
def store(tmp_path):
    return CampaignStore(tmp_path / "store")


def fill(store, count=4):
    """``count`` distinct campaign entries; returns their keys."""
    keys = []
    for frames in range(1, count + 1):
        keys.append(store.put_campaign(SPEC.replace(frames=frames),
                                       PAYLOAD))
    return keys


class TestPackRoundTrip:
    def test_packed_entries_read_back_byte_identical(self, store):
        keys = fill(store)
        before = {key: store.get(key) for key in keys}
        report = store.pack()
        assert report["packed"] == len(keys) and report["packs"] == 1
        # The loose files are gone; every read now comes from the pack.
        assert not list(store.entries_dir.glob("*/*.json"))
        fresh = CampaignStore(store.root)
        for key in keys:
            assert fresh.get(key) == before[key]
        assert sorted(fresh.keys()) == sorted(keys)

    def test_pack_name_is_content_derived_and_index_is_valid(self, store):
        keys = fill(store)
        report = store.pack()
        index_path = next(store.packs_dir.glob("*.idx.json"))
        index = json.loads(index_path.read_text())
        assert index["schema"] == PACK_SCHEMA
        assert sorted(index["entries"]) == sorted(keys)
        # Offsets/lengths slice the pack file exactly.
        raw = (store.packs_dir / index["pack"]).read_bytes()
        for key, (offset, length) in index["entries"].items():
            envelope = json.loads(raw[offset:offset + length])
            assert envelope["key"] == key
        assert report["pack"] == index["pack"]

    def test_pack_is_idempotent_and_dry_run_writes_nothing(self, store):
        fill(store)
        dry = store.pack(dry_run=True)
        assert dry["packed"] == 4 and not list(store.packs_dir.glob("*"))
        store.pack()
        again = store.pack()  # nothing loose left to pack
        assert again["packed"] == 0

    def test_loose_rewrite_shadows_packed_copy(self, store):
        (key,) = fill(store, count=1)
        store.pack()
        spec = SPEC.replace(frames=1)
        store.put_campaign(spec, dict(PAYLOAD, wall_seconds=9.0))
        assert store.get(key)["payload"]["wall_seconds"] == 9.0
        # A later pack folds the rewrite in, and the new copy wins.
        store.pack()
        fresh = CampaignStore(store.root)
        assert fresh.get(key)["payload"]["wall_seconds"] == 9.0
        assert len(fresh.keys()) == 1

    def test_delete_drops_packed_entry_from_its_index(self, store):
        keys = fill(store)
        store.pack()
        assert store.delete(keys[0])
        fresh = CampaignStore(store.root)
        assert fresh.get(keys[0]) is None
        assert sorted(fresh.keys()) == sorted(keys[1:])

    def test_ls_reports_packed_entries(self, store):
        fill(store, count=2)
        store.pack()
        rows = store.ls()
        assert len(rows) == 2 and all(row["packed"] for row in rows)


class TestFlatMigration:
    def test_flat_legacy_entries_read_and_pack(self, store):
        """A pre-shard store (``entries/<key>.json``) keeps working and
        migrates into packs with every key unchanged."""
        key = campaign_key(SPEC)
        flat = store.entries_dir / f"{key}.json"
        envelope = {"schema": "repro.store_entry/v1", "key": key,
                    "kind": "campaign", "status": "ok",
                    "spec": SPEC.to_dict(), "identity": {},
                    "attempts": 1, "created_at": "2026-01-01T00:00:00Z",
                    "payload": PAYLOAD}
        flat.write_text(json.dumps(envelope))
        assert store.get(key) == envelope
        assert key in store.keys()
        report = store.pack()
        assert report["packed"] == 1
        assert not flat.exists()
        assert CampaignStore(store.root).get(key) == envelope

    def test_sharded_copy_wins_over_flat_duplicate(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        stale = dict(store.get(key))
        stale["payload"] = dict(PAYLOAD, wall_seconds=777.0)
        (store.entries_dir / f"{key}.json").write_text(json.dumps(stale))
        assert store.get(key)["payload"]["wall_seconds"] == 1.25
        store.pack()
        fresh = CampaignStore(store.root)
        assert fresh.get(key)["payload"]["wall_seconds"] == 1.25
        assert len(fresh.keys()) == 1


class TestAdopt:
    def test_adopt_is_idempotent_and_validates(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        envelope = store.get(key)
        assert store.adopt(key, envelope) is False  # already held
        store.delete(key)
        assert store.adopt(key, envelope) is True
        assert store.get(key) == envelope
        with pytest.raises(ValueError):
            store.adopt(key, {"schema": "bogus"})
        with pytest.raises(ValueError):
            store.adopt("0" * 64, envelope)  # key/envelope mismatch

    def test_adopted_error_never_shadows_an_ok_entry(self, store):
        key = store.put_campaign(SPEC, PAYLOAD)
        failure = dict(store.get(key), status="error",
                       error={"type": "X", "message": "boom"})
        failure.pop("payload")
        assert store.adopt(key, failure) is False
        assert store.get(key)["status"] == "ok"


class TestPackGC:
    """gc over packed entries: rewrite the pack, don't just forget keys."""

    def _pack_pair(self, store):
        idx = list(store.packs_dir.glob("*.idx.json"))
        packs = list(store.packs_dir.glob("*.pack"))
        return idx, packs

    def test_failed_gc_rewrites_the_pack_without_dead_bytes(self, store):
        keys = fill(store, count=3)
        doomed_spec = SPEC.replace(frames=9)
        doomed = store.put_campaign_failure(doomed_spec,
                                            RuntimeError("boom"))
        store.pack()
        (old_idx,), (old_pack,) = self._pack_pair(store)
        stats = store.gc(failed=True)
        assert stats["removed_failed"] == 1 and stats["kept"] == 3
        # Old pair retired, fresh pair named after the survivor set.
        assert not old_idx.exists() and not old_pack.exists()
        (new_idx,), (new_pack,) = self._pack_pair(store)
        import hashlib
        expected = hashlib.sha256(
            "".join(sorted(keys)).encode("ascii")).hexdigest()[:16]
        assert new_pack.name == f"{expected}.pack"
        # The dead entry's bytes are actually gone from disk.
        assert doomed.encode("ascii") not in new_pack.read_bytes()
        fresh = CampaignStore(store.root)
        assert fresh.get(doomed) is None
        for key in keys:
            assert fresh.get(key)["status"] == "ok"

    def test_policy_drop_is_counted_separately(self, store):
        keys = fill(store, count=3)
        store.pack()
        stats = store.gc(drop=frozenset(keys[:2]))
        assert stats["removed_policy"] == 2 and stats["kept"] == 1
        fresh = CampaignStore(store.root)
        assert sorted(fresh.keys()) == sorted(keys[2:])

    def test_emptying_a_pack_removes_the_pair(self, store):
        keys = fill(store, count=2)
        store.pack()
        store.gc(drop=frozenset(keys))
        assert self._pack_pair(store) == ([], [])
        assert CampaignStore(store.root).keys() == []

    def test_dry_run_names_packed_victims_and_touches_nothing(self, store):
        keys = fill(store, count=2)
        store.pack()
        (idx,), (pack,) = self._pack_pair(store)
        before = pack.read_bytes()
        stats = store.gc(drop=frozenset(keys[:1]), dry_run=True)
        assert stats["removed_policy"] == 1
        assert f"packed:{keys[0]}" in stats["candidates"]
        assert pack.read_bytes() == before and idx.exists()
        assert sorted(CampaignStore(store.root).keys()) == sorted(keys)

    def test_protect_beats_drop_for_packed_entries(self, store):
        keys = fill(store, count=2)
        store.pack()
        stats = store.gc(drop=frozenset(keys),
                         protect=frozenset(keys[:1]))
        assert stats["removed_policy"] == 1 and stats["protected"] == 1
        assert CampaignStore(store.root).keys() == [keys[0]]

    def test_corrupt_packed_bytes_are_repacked_away(self, store):
        keys = fill(store, count=2)
        store.pack()
        (idx,), (pack,) = self._pack_pair(store)
        index = json.loads(idx.read_text())
        # Flip the first byte of one packed envelope in place.
        offset, _length = index["entries"][keys[0]]
        raw = bytearray(pack.read_bytes())
        raw[offset] = ord("X")
        pack.write_bytes(bytes(raw))
        stats = CampaignStore(store.root).gc()
        assert stats["removed_corrupt"] == 1 and stats["kept"] == 1
        fresh = CampaignStore(store.root)
        assert fresh.keys() == [keys[1]]
        assert fresh.get(keys[1])["status"] == "ok"

    def test_gc_converges_to_idempotence(self, store):
        fill(store, count=3)
        store.pack()
        first = store.gc(drop=frozenset(store.keys()[:1]))
        assert first["removed_policy"] == 1
        again = store.gc()
        assert again == dict(again, removed_policy=0, removed_failed=0,
                             removed_corrupt=0, kept=2)
