"""Store content-address stability, pinned by a golden fixture.

The content address of a campaign entry is an API: CI warm caches and
long-lived stores depend on the same spec hashing to the same key across
commits.  ``tests/golden/store_key.json`` pins the address of a
canonical facerec spec entry (plus the level-4 stage entry identity);
any drift — a reordered key document, a changed hash input, an
accidental volatile key leaking into the address — fails here.

To regenerate after an *intentional* keying change (which must come
with a ``STORE_VERSION`` or revision bump, retiring old entries)::

    GOLDEN_REGEN=1 PYTHONPATH=src python -m pytest tests/store -q
"""

import json
import os
from pathlib import Path

from repro.api import CampaignSpec
from repro.store import STORE_VERSION, campaign_identity, campaign_key, stage_key

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "store_key.json"

#: The canonical facerec spec whose content address is pinned.  All
#: fields are explicit so the fixture does not drift with spec defaults
#: (changing a default is a real keying change and should fail here).
CANONICAL = CampaignSpec(
    name="golden-store",
    workload="facerec",
    identities=2,
    poses=1,
    size=32,
    frames=1,
    noise_sigma=2.0,
    seed=2004,
    cpu="ARM7TDMI",
    capacity_gates=16_000,
    deadline_ms=500.0,
    levels=(1, 2, 3, 4),
    run_pcc=False,
)

LEVEL4_IDENTITY = {"stage": "level4", "run_pcc": False,
                   "workload": "facerec", "workload_revision": 1}


def current_document() -> dict:
    return {
        "schema": "repro.store_key/v1",
        "store_version": STORE_VERSION,
        "spec": CANONICAL.to_dict(),
        "identity": campaign_identity(CANONICAL),
        "campaign_key": campaign_key(CANONICAL),
        "level4_stage_key": stage_key(LEVEL4_IDENTITY),
    }


def test_content_address_matches_golden():
    document = current_document()
    if os.environ.get("GOLDEN_REGEN") == "1":
        GOLDEN_PATH.write_text(json.dumps(document, indent=2,
                                          sort_keys=True) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert document == golden, (
        "store content address drifted from tests/golden/store_key.json. "
        "If the keying change is intentional, bump STORE_VERSION (or the "
        "engine/workload revision that moved) and regenerate with "
        "GOLDEN_REGEN=1 pytest tests/store"
    )


def test_key_is_stable_across_spec_reserialization():
    """to_dict -> from_dict -> to_dict must not move the address."""
    round_tripped = CampaignSpec.from_dict(CANONICAL.to_dict())
    assert campaign_key(round_tripped) == campaign_key(CANONICAL)


def test_key_independent_of_handle_and_process_state():
    """Two computations in one process agree (no hidden global state)."""
    assert campaign_key(CANONICAL) == campaign_key(CANONICAL)
    assert stage_key(LEVEL4_IDENTITY) == stage_key(dict(
        sorted(LEVEL4_IDENTITY.items(), reverse=True)))
