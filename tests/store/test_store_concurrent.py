"""Concurrent writers: the atomic temp+rename contract under real races.

Two (or more) processes writing the same content address must leave
exactly one complete, valid envelope behind — never a torn file, never a
mixture of both writers' bytes.  This is the property the service's
worker pool and ``Campaign.sweep(jobs=N, store=...)`` both stand on.
"""

import json
import multiprocessing

import pytest

from repro.api import CampaignSpec, CampaignStore
from repro.store import ENTRY_SCHEMA

SPEC = CampaignSpec(name="raced", workload="blockcipher", frames=1,
                    levels=(1,), params={"block_words": 4})


def _write_entry(store_root, barrier, marker, repeats):
    """Child: wait at the barrier, then hammer the same key."""
    store = CampaignStore(store_root)
    barrier.wait()
    for index in range(repeats):
        store.put_campaign(SPEC, {"passed": True, "writer": marker,
                                  "iteration": index})


def _race(tmp_path, writers, repeats):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(writers)
    processes = [
        ctx.Process(target=_write_entry,
                    args=(str(tmp_path / "store"), barrier, marker, repeats))
        for marker in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    return CampaignStore(tmp_path / "store")


class TestConcurrentWriters:
    def test_two_processes_same_key_leave_one_valid_entry(self, tmp_path):
        store = _race(tmp_path, writers=2, repeats=1)
        key = store.campaign_key(SPEC)
        assert store.keys() == [key]
        envelope = store.get(key)
        assert envelope is not None, "entry unreadable after the race"
        assert envelope["schema"] == ENTRY_SCHEMA
        assert envelope["status"] == "ok"
        # The surviving payload is exactly one writer's document, intact.
        assert envelope["payload"]["writer"] in (0, 1)
        assert store.corrupt == []

    def test_many_writers_many_rounds_never_tear(self, tmp_path):
        store = _race(tmp_path, writers=4, repeats=5)
        key = store.campaign_key(SPEC)
        assert store.keys() == [key]
        # Read the file raw: it must parse as one complete envelope.
        raw = json.loads((store._entry_path(key)).read_text())
        assert raw["key"] == key
        assert raw["payload"]["iteration"] == 4  # a *last* write, complete
        # No stray temp files left behind by any writer.
        litter = [path for path in store.entries_dir.glob("*/.*")]
        assert litter == []

    def test_reader_during_race_sees_valid_or_miss_never_garbage(
            self, tmp_path):
        """A reader concurrent with the writers gets an envelope or None."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        writers = [
            ctx.Process(target=_write_entry,
                        args=(str(tmp_path / "store"), barrier, marker, 10))
            for marker in range(2)
        ]
        for process in writers:
            process.start()
        reader = CampaignStore(tmp_path / "store")
        barrier.wait()
        for _ in range(50):
            envelope = reader.get(reader.campaign_key(SPEC))
            if envelope is not None:
                assert envelope["schema"] == ENTRY_SCHEMA
        for process in writers:
            process.join(timeout=60)
            assert process.exitcode == 0
        assert reader.corrupt == []


@pytest.mark.parametrize("status", ["ok", "error"])
def test_failure_and_success_writers_settle_on_one_envelope(tmp_path,
                                                            status):
    """ok-vs-error races settle on whichever write renamed last — but
    always on a *complete* envelope of one of the two kinds."""
    store = CampaignStore(tmp_path / "store")
    if status == "ok":
        store.put_campaign(SPEC, {"passed": True})
        store.put_campaign_failure(SPEC, RuntimeError("late failure"))
    else:
        store.put_campaign_failure(SPEC, RuntimeError("early failure"))
        store.put_campaign(SPEC, {"passed": True})
    envelope = store.get(store.campaign_key(SPEC))
    assert envelope["status"] in ("ok", "error")
    assert envelope["attempts"] == 2
