"""Synchronisation channels: mutex and semaphore.

SystemC ships ``sc_mutex`` and ``sc_semaphore`` alongside the FIFO; the
platform layer uses the same primitives to model exclusive resources
(the bus grant is a specialised mutex) and pooled resources (DMA
channels, bus-bridge credits).  Blocking operations are generators used
with ``yield from``, like the FIFO's.
"""

from __future__ import annotations

from collections import deque

from repro.kernel.events import wait
from repro.kernel.scheduler import Simulator


class Mutex:
    """An exclusive lock with FIFO granting.

    >>> # inside a process:
    >>> # yield from mutex.lock()
    >>> # ... critical section ...
    >>> # mutex.unlock()
    """

    def __init__(self, name: str, sim: Simulator):
        self.name = name
        self.sim = sim
        self._locked = False
        self._waiters: deque = deque()
        self.lock_count = 0
        self.contended_count = 0

    def try_lock(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._locked:
            return False
        self._locked = True
        self.lock_count += 1
        return True

    def lock(self):
        """Blocking acquire (generator; use with ``yield from``).

        Granting is FIFO and by *direct hand-off*: the lock is never
        observably free between a release and the next waiter's resume,
        so a concurrent :meth:`try_lock` cannot barge in.
        """
        if self._locked or self._waiters:
            self.contended_count += 1
            gate = self.sim.event(f"{self.name}.grant")
            self._waiters.append(gate)
            yield wait(gate)
            # Ownership was handed to us by unlock(); _locked stayed True.
            self.lock_count += 1
            return
        self._locked = True
        self.lock_count += 1

    def unlock(self) -> None:
        """Release; hands the lock to the oldest waiter, if any."""
        if not self._locked:
            raise RuntimeError(f"mutex {self.name!r} unlocked while free")
        if self._waiters:
            # Direct hand-off: the lock remains held, ownership transfers.
            self._waiters.popleft().notify_immediate()
        else:
            self._locked = False

    @property
    def locked(self) -> bool:
        return self._locked


class Semaphore:
    """A counting semaphore with FIFO wakeup.

    ``value`` is the number of concurrently available resources.
    """

    def __init__(self, name: str, sim: Simulator, value: int):
        if value < 0:
            raise ValueError(f"semaphore {name!r}: negative initial value")
        self.name = name
        self.sim = sim
        self._value = value
        self._waiters: deque = deque()
        self.wait_count = 0
        self.post_count = 0

    def try_wait(self) -> bool:
        """Non-blocking P(); True on success."""
        if self._value == 0:
            return False
        self._value -= 1
        self.wait_count += 1
        return True

    def acquire(self):
        """Blocking P() (generator; use with ``yield from``)."""
        while self._value == 0:
            gate = self.sim.event(f"{self.name}.post")
            self._waiters.append(gate)
            yield wait(gate)
        self._value -= 1
        self.wait_count += 1

    def release(self) -> None:
        """V(): return one unit and wake the oldest waiter."""
        self._value += 1
        self.post_count += 1
        if self._waiters:
            self._waiters.popleft().notify_immediate()

    @property
    def value(self) -> int:
        return self._value
