"""Cooperative processes.

A process wraps a Python generator.  The scheduler resumes the generator;
the generator yields :class:`~repro.kernel.events.WaitRequest` descriptors
to suspend.  This mirrors SystemC's ``SC_THREAD`` model: straight-line
code with blocking waits, no explicit state machines.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional

from repro.kernel.events import Event, EventWait, TimeWait, WaitRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.scheduler import Simulator


class ProcessState(enum.Enum):
    """Lifecycle of a process."""

    READY = "ready"
    WAITING = "waiting"
    FINISHED = "finished"
    FAILED = "failed"


class Process:
    """A schedulable cooperative process.

    Created by :meth:`Simulator.spawn` or :meth:`Module.spawn`; user code
    normally never instantiates this directly.
    """

    __slots__ = (
        "name",
        "sim",
        "generator",
        "state",
        "exception",
        "_wait_events",
        "_pending_all",
        "_timeout_event",
        "_resume_value",
        "finished",
    )

    def __init__(self, name: str, sim: "Simulator", generator: Generator):
        self.name = name
        self.sim = sim
        self.generator = generator
        self.state = ProcessState.READY
        self.exception: Optional[BaseException] = None
        self._wait_events: tuple[Event, ...] = ()
        self._pending_all: set[Event] = set()
        self._timeout_event: Optional[Event] = None
        self._resume_value = None
        #: notified when the process terminates (normally or not)
        self.finished = Event(f"{name}.finished", sim)

    # -- scheduler interface -------------------------------------------------

    def _step(self) -> None:
        """Advance the generator until it suspends or terminates."""
        if self.state in (ProcessState.FINISHED, ProcessState.FAILED):
            return
        try:
            request = self.generator.send(self._resume_value)
        except StopIteration:
            self._finish(ProcessState.FINISHED)
            return
        except Exception as exc:
            self.exception = exc
            self._finish(ProcessState.FAILED)
            self.sim._on_process_failure(self, exc)
            return
        self._resume_value = None
        try:
            self._handle_request(request)
        except Exception as exc:
            self.exception = exc
            self._finish(ProcessState.FAILED)
            self.sim._on_process_failure(self, exc)

    def _handle_request(self, request) -> None:
        if isinstance(request, TimeWait):
            self.state = ProcessState.WAITING
            self.sim._schedule_resume(self, request.duration_ps)
            return
        if isinstance(request, EventWait):
            self.state = ProcessState.WAITING
            self._wait_events = request.events
            for event in request.events:
                event._subscribe(self)
            if request.mode == "all":
                self._pending_all = set(request.events)
            else:
                self._pending_all = set()
            if request.timeout_ps is not None:
                self._timeout_event = Event(f"{self.name}.timeout", self.sim)
                self._timeout_event._subscribe(self)
                self._timeout_event.notify(request.timeout_ps)
            return
        if isinstance(request, WaitRequest):  # pragma: no cover - future kinds
            raise TypeError(f"unhandled wait request {request!r}")
        raise TypeError(
            f"process {self.name!r} yielded {request!r}; processes must yield "
            "wait()/wait_any()/wait_all() requests (did you forget 'yield from' "
            "on a channel operation?)"
        )

    def _on_event(self, event: Event) -> None:
        """Called by an event this process subscribed to."""
        if self.state is not ProcessState.WAITING:
            return
        if event is self._timeout_event:
            self._clear_subscriptions()
            self._resume_value = None
            self._make_ready()
            return
        if self._pending_all:
            self._pending_all.discard(event)
            if self._pending_all:
                return
        self._clear_subscriptions()
        self._resume_value = event
        self._make_ready()

    def _make_ready(self) -> None:
        self.state = ProcessState.READY
        self.sim._schedule_run(self)

    def _clear_subscriptions(self) -> None:
        for event in self._wait_events:
            event._unsubscribe(self)
        self._wait_events = ()
        self._pending_all = set()
        if self._timeout_event is not None:
            self._timeout_event._unsubscribe(self)
            self._timeout_event.cancel()
            self._timeout_event = None

    def _finish(self, state: ProcessState) -> None:
        self.state = state
        self._clear_subscriptions()
        self.finished.notify(0)

    # -- public --------------------------------------------------------------

    def kill(self) -> None:
        """Terminate the process without running it further."""
        if self.state in (ProcessState.FINISHED, ProcessState.FAILED):
            return
        self.generator.close()
        self._finish(ProcessState.FINISHED)

    @property
    def is_alive(self) -> bool:
        return self.state in (ProcessState.READY, ProcessState.WAITING)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Process({self.name!r}, {self.state.value})"
