"""Primitive channels: delta-buffered signals and blocking FIFOs.

``Signal`` follows SystemC's ``sc_signal`` update semantics: writes are
buffered during the evaluate phase and applied in the update phase, so
every reader in a delta cycle observes the same value.

``Fifo`` is the bounded blocking queue (``sc_fifo``) that carries all
point-to-point traffic in the level-1 face-recognition model.  Its
blocking operations are generators, used with ``yield from`` inside a
process::

    frame = yield from camera_out.get()
    yield from edges_out.put(result)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Optional, TypeVar

from repro.kernel.events import wait
from repro.kernel.scheduler import Simulator

T = TypeVar("T")


class FifoFullError(RuntimeError):
    """Non-blocking write on a full FIFO."""


class FifoEmptyError(RuntimeError):
    """Non-blocking read on an empty FIFO."""


class Signal(Generic[T]):
    """A single-driver signal with evaluate/update semantics."""

    def __init__(self, name: str, sim: Simulator, initial: T = None):
        self.name = name
        self.sim = sim
        self._current: T = initial
        self._next: T = initial
        self._dirty = False
        #: fires (delta) whenever the committed value changes
        self.changed = sim.event(f"{name}.changed")
        self.write_count = 0

    def read(self) -> T:
        """Current committed value."""
        return self._current

    def write(self, value: T) -> None:
        """Buffer ``value``; committed at the next update phase."""
        self._next = value
        self.write_count += 1
        if not self._dirty:
            self._dirty = True
            self.sim._request_update(self)

    def _update(self) -> None:
        self._dirty = False
        if self._next != self._current:
            self._current = self._next
            self.changed.notify(0)

    @property
    def value(self) -> T:
        return self._current

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}={self._current!r})"


class Fifo(Generic[T]):
    """Bounded blocking FIFO channel.

    Blocking ``put``/``get`` are generator methods (use ``yield from``);
    ``try_put``/``try_get`` are their non-blocking counterparts.  The
    channel records occupancy statistics consumed by the LPV
    FIFO-dimensioning experiment (V-LPV-RT).
    """

    def __init__(self, name: str, sim: Simulator, capacity: int = 16):
        if capacity < 1:
            raise ValueError(f"fifo {name!r}: capacity must be >= 1")
        self.name = name
        self.sim = sim
        self.capacity = capacity
        self._items: deque[T] = deque()
        self._data_written = sim.event(f"{name}.data_written")
        self._data_read = sim.event(f"{name}.data_read")
        self.put_count = 0
        self.get_count = 0
        self.max_occupancy = 0
        self.blocked_put_ps = 0
        self.blocked_get_ps = 0

    # -- non-blocking ------------------------------------------------------------

    def try_put(self, item: T) -> None:
        if len(self._items) >= self.capacity:
            raise FifoFullError(f"fifo {self.name!r} full (capacity {self.capacity})")
        self._items.append(item)
        self.put_count += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        self._data_written.notify(0)

    def try_get(self) -> T:
        if not self._items:
            raise FifoEmptyError(f"fifo {self.name!r} empty")
        item = self._items.popleft()
        self.get_count += 1
        self._data_read.notify(0)
        return item

    # -- blocking (generator) ------------------------------------------------------

    def put(self, item: T):
        """Blocking write; suspends the caller while the FIFO is full."""
        start_ps = self.sim.now_ps
        while len(self._items) >= self.capacity:
            yield wait(self._data_read)
        self.blocked_put_ps += self.sim.now_ps - start_ps
        self.try_put(item)

    def get(self):
        """Blocking read; suspends the caller while the FIFO is empty.

        Returns the item read (via the generator's return value).
        """
        start_ps = self.sim.now_ps
        while not self._items:
            yield wait(self._data_written)
        self.blocked_get_ps += self.sim.now_ps - start_ps
        return self.try_get()

    # -- introspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def stats(self) -> dict[str, Any]:
        """Occupancy statistics for performance reports and FIFO sizing."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "puts": self.put_count,
            "gets": self.get_count,
            "max_occupancy": self.max_occupancy,
            "blocked_put_ps": self.blocked_put_ps,
            "blocked_get_ps": self.blocked_get_ps,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Fifo({self.name!r}, {len(self._items)}/{self.capacity})"
