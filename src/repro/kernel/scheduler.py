"""The event-driven simulation scheduler.

Implements SystemC's two-phase (evaluate/update) delta-cycle semantics:

1. *Evaluate*: run every ready process until it suspends.
2. *Update*: apply buffered primitive-channel writes (signals).
3. Delta notifications produced by 1-2 start the next delta cycle at the
   same simulated time; when no deltas remain, time advances to the next
   timed notification.

The scheduler also keeps the activity counters (process activations,
delta cycles, simulated time) that the Vista-style performance layer and
the level benchmarks read out.

Fast paths (semantics — including every observable counter — are
unchanged; the BENCH trajectory guards the speedups):

- **Time-bucketed event queue**: timed actions are grouped per
  timestamp (a dict of insertion-ordered buckets keyed by a heap of
  distinct times), so draining N same-timestamp actions is one heap pop
  plus a list walk instead of N ``heappop`` re-siftings, and no
  per-action sequence counter is needed — bucket order *is* schedule
  order.
- **Batched ready activation**: the evaluate phase swaps the whole
  ready list out and iterates it, instead of popping one process at a
  time through a deque; processes readied mid-phase land in the fresh
  list and still run within the same evaluate phase.
- **Skipped delta bookkeeping**: update/delta structures are only
  touched when something is actually buffered in them.
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Optional

from repro.kernel.events import Event
from repro.kernel.process import Process, ProcessState
from repro.kernel.simtime import format_time
from repro.telemetry import metrics as _metrics

# Published once per run() call, after the loop finishes — never from
# inside the delta loop, which is the hottest path in the repo.
_RUNS = _metrics.counter("repro_scheduler_runs_total",
                         "Completed Simulator.run() calls")
_ACTIVATIONS = _metrics.counter("repro_scheduler_activations_total",
                                "Process activations across all runs")
_DELTAS = _metrics.counter("repro_scheduler_deltas_total",
                           "Delta cycles across all runs")


class SimulationError(RuntimeError):
    """Raised when a process fails or the kernel detects an invalid state."""


class Simulator:
    """Event-driven simulator with delta-cycle semantics.

    Typical use::

        sim = Simulator()
        fifo = Fifo("pipe", sim, capacity=4)
        sim.spawn("producer", producer(sim, fifo))
        sim.spawn("consumer", consumer(sim, fifo))
        sim.run()
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self.now_ps: int = 0
        self.delta_count: int = 0
        self.activation_count: int = 0
        #: heap of distinct timestamps with pending timed actions
        self._timed: list[int] = []
        #: timestamp -> actions scheduled there, in schedule order
        self._timed_buckets: dict[int, list[Callable[[], None]]] = {}
        #: processes ready in the current evaluate phase
        self._ready: list[Process] = []
        #: callables to run at the next delta cycle (event fires)
        self._next_delta: list[Callable[[], None]] = []
        #: channels with buffered writes awaiting the update phase
        self._update_queue: list = []
        self._update_set: set[int] = set()
        self.processes: list[Process] = []
        self._failure: Optional[tuple[Process, BaseException]] = None
        self._running = False
        self._stop_requested = False

    # -- construction helpers --------------------------------------------------

    def event(self, name: str = "event") -> Event:
        """Create an :class:`Event` attached to this simulator."""
        return Event(name, self)

    def spawn(self, name: str, generator: Generator) -> Process:
        """Register a new process; it first runs at time zero (or now)."""
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn({name!r}) expects a generator; got {type(generator).__name__}. "
                "Process functions must contain at least one yield."
            )
        proc = Process(name, self, generator)
        self.processes.append(proc)
        self._schedule_run(proc)
        return proc

    # -- scheduler internals -----------------------------------------------------

    def _schedule_run(self, proc: Process) -> None:
        self._ready.append(proc)

    def _schedule_timed(self, time_ps: int, action: Callable[[], None]) -> None:
        """File ``action`` under its timestamp bucket (heap of times)."""
        bucket = self._timed_buckets.get(time_ps)
        if bucket is None:
            self._timed_buckets[time_ps] = [action]
            heapq.heappush(self._timed, time_ps)
        else:
            bucket.append(action)

    def _schedule_resume(self, proc: Process, delay_ps: int) -> None:
        if delay_ps == 0:
            # A zero-time wait still yields to the next delta cycle.
            self._next_delta.append(lambda: self._resume(proc))
        else:
            self._schedule_timed(self.now_ps + delay_ps,
                                 lambda: self._resume(proc))

    def _resume(self, proc: Process) -> None:
        if proc.state is ProcessState.WAITING:
            proc._resume_value = None
            proc._make_ready()

    def _schedule_event_fire(self, event: Event, delay_ps: int) -> None:
        expected = self.now_ps + delay_ps

        def fire() -> None:
            # Skip stale notifications (cancelled or superseded by an
            # earlier one; SystemC earliest-wins semantics).
            if event._pending_ps == expected:
                event._fire()

        if delay_ps == 0:
            self._next_delta.append(fire)
        else:
            self._schedule_timed(expected, fire)

    def _request_update(self, channel) -> None:
        if id(channel) not in self._update_set:
            self._update_set.add(id(channel))
            self._update_queue.append(channel)

    def _on_process_failure(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)
        self._stop_requested = True

    # -- run loop ------------------------------------------------------------------

    def run(self, until_ps: Optional[int] = None, max_deltas_per_step: int = 100_000) -> int:
        """Run until no activity remains or simulated time exceeds ``until_ps``.

        Returns the final simulated time in picoseconds.  Raises
        :class:`SimulationError` if a process raised, or if a single
        timestep spins for more than ``max_deltas_per_step`` delta cycles
        (a combinational loop / livelock guard).
        """
        self._running = True
        self._stop_requested = False
        ready_state = ProcessState.READY
        activations_before = self.activation_count
        deltas_before = self.delta_count
        try:
            while not self._stop_requested:
                deltas_here = 0
                # Delta loop at the current time point.
                while self._ready or self._next_delta or self._update_queue:
                    if self._stop_requested:
                        break
                    # Evaluate phase: swap the ready list out and walk it;
                    # processes readied mid-phase land in the fresh list
                    # and run before this phase ends.
                    while self._ready:
                        batch = self._ready
                        self._ready = []
                        for index, proc in enumerate(batch):
                            if proc.state is ready_state:
                                self.activation_count += 1
                                proc._step()
                                if self._stop_requested:
                                    # Keep not-yet-run processes queued,
                                    # ahead of any newly readied ones.
                                    self._ready[:0] = batch[index + 1:]
                                    break
                        if self._stop_requested:
                            break
                    # Update phase.
                    if self._update_queue:
                        updates, self._update_queue = self._update_queue, []
                        self._update_set.clear()
                        for channel in updates:
                            channel._update()
                    # Delta notifications begin the next delta cycle.
                    if self._next_delta:
                        fires, self._next_delta = self._next_delta, []
                        for fire in fires:
                            fire()
                    self.delta_count += 1
                    deltas_here += 1
                    if deltas_here > max_deltas_per_step:
                        raise SimulationError(
                            f"more than {max_deltas_per_step} delta cycles at "
                            f"t={format_time(self.now_ps)}: livelock or "
                            "combinational loop"
                        )
                if self._stop_requested:
                    break
                # Advance time: one heap pop drains the whole timestamp.
                if not self._timed:
                    break
                next_ps = self._timed[0]
                if until_ps is not None and next_ps > until_ps:
                    self.now_ps = until_ps
                    break
                self.now_ps = next_ps
                while self._timed and self._timed[0] == next_ps:
                    heapq.heappop(self._timed)
                    for action in self._timed_buckets.pop(next_ps):
                        action()
        finally:
            self._running = False
            if _metrics.enabled:
                _RUNS.inc()
                _ACTIVATIONS.inc(self.activation_count - activations_before)
                _DELTAS.inc(self.delta_count - deltas_before)
        if self._failure is not None:
            proc, exc = self._failure
            raise SimulationError(
                f"process {proc.name!r} failed at t={format_time(self.now_ps)}: {exc!r}"
            ) from exc
        return self.now_ps

    def stop(self) -> None:
        """Request the run loop to stop at the next opportunity (sc_stop)."""
        self._stop_requested = True

    # -- introspection ------------------------------------------------------------

    @property
    def starved_processes(self) -> list[Process]:
        """Processes still waiting when the simulation ran out of events.

        A non-empty list after :meth:`run` returns (without ``until_ps``)
        indicates a deadlock or starvation; the LPV verification layer
        proves the absence of these situations statically.
        """
        return [p for p in self.processes if p.state is ProcessState.WAITING]

    def describe(self) -> str:
        """One-line activity summary used by the flow reports."""
        return (
            f"{self.name}: t={format_time(self.now_ps)} deltas={self.delta_count} "
            f"activations={self.activation_count} processes={len(self.processes)}"
        )
