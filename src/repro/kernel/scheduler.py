"""The event-driven simulation scheduler.

Implements SystemC's two-phase (evaluate/update) delta-cycle semantics:

1. *Evaluate*: run every ready process until it suspends.
2. *Update*: apply buffered primitive-channel writes (signals).
3. Delta notifications produced by 1-2 start the next delta cycle at the
   same simulated time; when no deltas remain, time advances to the next
   timed notification.

The scheduler also keeps the activity counters (process activations,
delta cycles, simulated time) that the Vista-style performance layer and
the level benchmarks read out.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Generator, Optional

from repro.kernel.events import Event
from repro.kernel.process import Process, ProcessState
from repro.kernel.simtime import format_time


class SimulationError(RuntimeError):
    """Raised when a process fails or the kernel detects an invalid state."""


class Simulator:
    """Event-driven simulator with delta-cycle semantics.

    Typical use::

        sim = Simulator()
        fifo = Fifo("pipe", sim, capacity=4)
        sim.spawn("producer", producer(sim, fifo))
        sim.spawn("consumer", consumer(sim, fifo))
        sim.run()
    """

    def __init__(self, name: str = "sim"):
        self.name = name
        self.now_ps: int = 0
        self.delta_count: int = 0
        self.activation_count: int = 0
        self._seq = 0
        #: timed actions: (time_ps, seq, callable)
        self._timed: list[tuple[int, int, Callable[[], None]]] = []
        #: processes ready in the current evaluate phase
        self._ready: deque[Process] = deque()
        #: callables to run at the next delta cycle (event fires)
        self._next_delta: deque[Callable[[], None]] = deque()
        #: channels with buffered writes awaiting the update phase
        self._update_queue: list = []
        self._update_set: set[int] = set()
        self.processes: list[Process] = []
        self._failure: Optional[tuple[Process, BaseException]] = None
        self._running = False
        self._stop_requested = False

    # -- construction helpers --------------------------------------------------

    def event(self, name: str = "event") -> Event:
        """Create an :class:`Event` attached to this simulator."""
        return Event(name, self)

    def spawn(self, name: str, generator: Generator) -> Process:
        """Register a new process; it first runs at time zero (or now)."""
        if not hasattr(generator, "send"):
            raise TypeError(
                f"spawn({name!r}) expects a generator; got {type(generator).__name__}. "
                "Process functions must contain at least one yield."
            )
        proc = Process(name, self, generator)
        self.processes.append(proc)
        self._schedule_run(proc)
        return proc

    # -- scheduler internals -----------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _schedule_run(self, proc: Process) -> None:
        self._ready.append(proc)

    def _schedule_resume(self, proc: Process, delay_ps: int) -> None:
        if delay_ps == 0:
            # A zero-time wait still yields to the next delta cycle.
            self._next_delta.append(lambda: self._resume(proc))
        else:
            heapq.heappush(
                self._timed, (self.now_ps + delay_ps, self._next_seq(), lambda: self._resume(proc))
            )

    def _resume(self, proc: Process) -> None:
        if proc.state is ProcessState.WAITING:
            proc._resume_value = None
            proc._make_ready()

    def _schedule_event_fire(self, event: Event, delay_ps: int) -> None:
        expected = self.now_ps + delay_ps

        def fire() -> None:
            # Skip stale notifications (cancelled or superseded by an
            # earlier one; SystemC earliest-wins semantics).
            if event._pending_ps == expected:
                event._fire()

        if delay_ps == 0:
            self._next_delta.append(fire)
        else:
            heapq.heappush(self._timed, (expected, self._next_seq(), fire))

    def _request_update(self, channel) -> None:
        if id(channel) not in self._update_set:
            self._update_set.add(id(channel))
            self._update_queue.append(channel)

    def _on_process_failure(self, proc: Process, exc: BaseException) -> None:
        if self._failure is None:
            self._failure = (proc, exc)
        self._stop_requested = True

    # -- run loop ------------------------------------------------------------------

    def run(self, until_ps: Optional[int] = None, max_deltas_per_step: int = 100_000) -> int:
        """Run until no activity remains or simulated time exceeds ``until_ps``.

        Returns the final simulated time in picoseconds.  Raises
        :class:`SimulationError` if a process raised, or if a single
        timestep spins for more than ``max_deltas_per_step`` delta cycles
        (a combinational loop / livelock guard).
        """
        self._running = True
        self._stop_requested = False
        try:
            while not self._stop_requested:
                deltas_here = 0
                # Delta loop at the current time point.
                while self._ready or self._next_delta or self._update_queue:
                    if self._stop_requested:
                        break
                    # Evaluate phase.
                    while self._ready:
                        proc = self._ready.popleft()
                        if proc.state is ProcessState.READY:
                            self.activation_count += 1
                            proc._step()
                            if self._stop_requested:
                                break
                    # Update phase.
                    if self._update_queue:
                        updates, self._update_queue = self._update_queue, []
                        self._update_set.clear()
                        for channel in updates:
                            channel._update()
                    # Delta notifications begin the next delta cycle.
                    if self._next_delta:
                        fires, self._next_delta = self._next_delta, deque()
                        for fire in fires:
                            fire()
                    self.delta_count += 1
                    deltas_here += 1
                    if deltas_here > max_deltas_per_step:
                        raise SimulationError(
                            f"more than {max_deltas_per_step} delta cycles at "
                            f"t={format_time(self.now_ps)}: livelock or "
                            "combinational loop"
                        )
                if self._stop_requested:
                    break
                # Advance time.
                if not self._timed:
                    break
                next_ps = self._timed[0][0]
                if until_ps is not None and next_ps > until_ps:
                    self.now_ps = until_ps
                    break
                self.now_ps = next_ps
                while self._timed and self._timed[0][0] == next_ps:
                    __, __, action = heapq.heappop(self._timed)
                    action()
        finally:
            self._running = False
        if self._failure is not None:
            proc, exc = self._failure
            raise SimulationError(
                f"process {proc.name!r} failed at t={format_time(self.now_ps)}: {exc!r}"
            ) from exc
        return self.now_ps

    def stop(self) -> None:
        """Request the run loop to stop at the next opportunity (sc_stop)."""
        self._stop_requested = True

    # -- introspection ------------------------------------------------------------

    @property
    def starved_processes(self) -> list[Process]:
        """Processes still waiting when the simulation ran out of events.

        A non-empty list after :meth:`run` returns (without ``until_ps``)
        indicates a deadlock or starvation; the LPV verification layer
        proves the absence of these situations statically.
        """
        return [p for p in self.processes if p.state is ProcessState.WAITING]

    def describe(self) -> str:
        """One-line activity summary used by the flow reports."""
        return (
            f"{self.name}: t={format_time(self.now_ps)} deltas={self.delta_count} "
            f"activations={self.activation_count} processes={len(self.processes)}"
        )
