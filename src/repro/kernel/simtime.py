"""Simulation time representation.

Time is kept as an integer number of picoseconds, mirroring SystemC's
``sc_time`` with a fixed global resolution.  Integer arithmetic avoids the
floating-point drift that plagues long multimedia simulations (a level-3
face-recognition run simulates hundreds of milliseconds at nanosecond
granularity).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Picoseconds per unit, exposed so callers can write ``wait(10, NS)``.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
SEC = 1_000_000_000_000

_UNIT_NAMES = {PS: "ps", NS: "ns", US: "us", MS: "ms", SEC: "s"}


def time_ps(value: float, unit: int = PS) -> int:
    """Convert ``value`` expressed in ``unit`` into integer picoseconds.

    Fractional picoseconds are rounded to the nearest integer; the kernel
    never deals in sub-picosecond quantities.

    >>> time_ps(10, NS)
    10000
    >>> time_ps(1.5, US)
    1500000
    """
    if value < 0:
        raise ValueError(f"negative time: {value}")
    return int(round(value * unit))


@dataclass(frozen=True, order=True)
class SimTime:
    """A point in simulated time (picoseconds since elaboration).

    Thin immutable wrapper used at module boundaries; the scheduler's hot
    path works with raw integers for speed.
    """

    picoseconds: int

    def __post_init__(self) -> None:
        if self.picoseconds < 0:
            raise ValueError(f"negative SimTime: {self.picoseconds}")

    @classmethod
    def of(cls, value: float, unit: int = PS) -> "SimTime":
        """Build a ``SimTime`` from a value and unit, e.g. ``SimTime.of(5, NS)``."""
        return cls(time_ps(value, unit))

    def to(self, unit: int) -> float:
        """Return this time expressed in ``unit`` as a float."""
        return self.picoseconds / unit

    def __add__(self, other: "SimTime | int") -> "SimTime":
        other_ps = other.picoseconds if isinstance(other, SimTime) else int(other)
        return SimTime(self.picoseconds + other_ps)

    def __sub__(self, other: "SimTime | int") -> "SimTime":
        other_ps = other.picoseconds if isinstance(other, SimTime) else int(other)
        return SimTime(self.picoseconds - other_ps)

    def __int__(self) -> int:
        return self.picoseconds

    def __str__(self) -> str:
        return format_time(self.picoseconds)


def format_time(ps: int) -> str:
    """Render a picosecond count with the largest unit that divides it nicely.

    >>> format_time(1500)
    '1.5ns'
    >>> format_time(2000000)
    '2us'
    """
    if ps == 0:
        return "0s"
    for unit in (SEC, MS, US, NS, PS):
        if ps >= unit:
            value = ps / unit
            if math.isclose(value, round(value)):
                return f"{round(value)}{_UNIT_NAMES[unit]}"
            return f"{value:g}{_UNIT_NAMES[unit]}"
    return f"{ps}ps"
