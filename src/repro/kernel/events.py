"""Events and wait requests.

An :class:`Event` is the kernel's synchronisation primitive, equivalent to
SystemC's ``sc_event``: processes suspend on it and resume when it is
notified.  Notification can be immediate (same evaluate phase), delta
(next delta cycle) or timed.

Processes do not call the scheduler directly; they *yield* wait requests,
small descriptor objects built by :func:`wait`, :func:`wait_any` and
:func:`wait_all`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.process import Process
    from repro.kernel.scheduler import Simulator


class Event:
    """A notifiable event; processes block on it via ``yield wait(event)``."""

    __slots__ = ("name", "_sim", "_waiters", "_pending_ps")

    def __init__(self, name: str = "event", sim: "Optional[Simulator]" = None):
        self.name = name
        self._sim = sim
        self._waiters: list[Process] = []
        #: absolute ps of a pending timed notification, or None
        self._pending_ps: Optional[int] = None

    def _attach(self, sim: "Simulator") -> None:
        self._sim = sim

    def notify(self, delay_ps: int = 0) -> None:
        """Notify this event after ``delay_ps`` picoseconds.

        ``delay_ps == 0`` is a *delta* notification: waiters wake in the
        next delta cycle of the current time, as in SystemC's
        ``notify(SC_ZERO_TIME)``.  A later pending notification is
        cancelled by an earlier one (SystemC's earliest-wins rule).
        """
        if self._sim is None:
            raise RuntimeError(
                f"event {self.name!r} is not attached to a simulator; "
                "create it via Simulator.event() or Module helpers"
            )
        when = self._sim.now_ps + delay_ps
        if self._pending_ps is not None and self._pending_ps <= when:
            return
        self._pending_ps = when
        self._sim._schedule_event_fire(self, delay_ps)

    def notify_immediate(self) -> None:
        """Wake waiters in the *current* evaluate phase (sc ``notify()``)."""
        if self._sim is None:
            raise RuntimeError(f"event {self.name!r} is not attached to a simulator")
        self._fire()

    def cancel(self) -> None:
        """Cancel any pending timed/delta notification."""
        self._pending_ps = None

    def _fire(self) -> None:
        self._pending_ps = None
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._on_event(self)

    def _subscribe(self, proc: "Process") -> None:
        self._waiters.append(proc)

    def _unsubscribe(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event({self.name!r}, waiters={len(self._waiters)})"


class WaitRequest:
    """Base class for the descriptors a process yields to suspend itself."""

    __slots__ = ()


class TimeWait(WaitRequest):
    """Suspend for a fixed duration."""

    __slots__ = ("duration_ps",)

    def __init__(self, duration_ps: int):
        if duration_ps < 0:
            raise ValueError(f"negative wait: {duration_ps}")
        self.duration_ps = duration_ps


class EventWait(WaitRequest):
    """Suspend until one (any-of) or all (all-of) events fire.

    ``timeout_ps`` optionally bounds the wait; on timeout the process
    resumes with ``None`` instead of the triggering event.
    """

    __slots__ = ("events", "mode", "timeout_ps")

    def __init__(self, events: tuple[Event, ...], mode: str, timeout_ps: Optional[int] = None):
        if not events:
            raise ValueError("EventWait requires at least one event")
        if mode not in ("any", "all"):
            raise ValueError(f"bad mode {mode!r}")
        self.events = events
        self.mode = mode
        self.timeout_ps = timeout_ps


def wait(duration_or_event, unit: int = 1, timeout_ps: Optional[int] = None) -> WaitRequest:
    """Build a wait request: ``yield wait(10, NS)`` or ``yield wait(event)``.

    With a numeric first argument the process sleeps for that duration
    (scaled by ``unit``).  With an :class:`Event` it blocks until the
    event is notified, optionally bounded by ``timeout_ps``.
    """
    if isinstance(duration_or_event, Event):
        return EventWait((duration_or_event,), "any", timeout_ps)
    return TimeWait(int(round(duration_or_event * unit)))


def wait_any(events: Iterable[Event], timeout_ps: Optional[int] = None) -> EventWait:
    """Block until *any* of ``events`` fires (sc ``wait(e1 | e2)``)."""
    return EventWait(tuple(events), "any", timeout_ps)


def wait_all(events: Iterable[Event], timeout_ps: Optional[int] = None) -> EventWait:
    """Block until *all* of ``events`` have fired (sc ``wait(e1 & e2)``)."""
    return EventWait(tuple(events), "all", timeout_ps)
