"""Hierarchical modules.

A :class:`Module` is the structural unit of a design — the equivalent of
``sc_module``.  It owns ports, child modules and processes, and carries
the metadata (estimated gate count, mapping target) that the architecture
exploration and FPGA mapping layers read.
"""

from __future__ import annotations

import enum
from typing import Generator, Optional

from repro.kernel.ports import Port
from repro.kernel.process import Process
from repro.kernel.scheduler import Simulator


class MappingTarget(enum.Enum):
    """Where a module is implemented after architecture mapping.

    Levels of the flow progressively refine this: at level 1 everything is
    ``UNMAPPED``; level 2 decides ``SW`` vs ``HW``; level 3 further splits
    ``HW`` into hardwired ``HW`` and reconfigurable ``FPGA``.
    """

    UNMAPPED = "unmapped"
    SW = "sw"
    HW = "hw"
    FPGA = "fpga"


class Module:
    """Base class for all design modules.

    Subclasses declare ports in ``__init__`` and register behaviour with
    :meth:`spawn`.  ``gate_count`` is the area proxy used by exploration;
    ``work_estimate`` the per-activation computational weight used by the
    profiler when ranking partitioning candidates.
    """

    def __init__(self, name: str, sim: Simulator, parent: "Optional[Module]" = None):
        self.name = name
        self.sim = sim
        self.parent = parent
        self.children: list[Module] = []
        self.ports: dict[str, Port] = {}
        self.processes: list[Process] = []
        self.mapping = MappingTarget.UNMAPPED
        #: area proxy (equivalent NAND2 gates) for HW implementations
        self.gate_count = 0
        #: rough operations per activation, used for profiling-based ranking
        self.work_estimate = 0
        if parent is not None:
            parent.children.append(self)

    # -- construction ----------------------------------------------------------

    def add_port(self, name: str, interface: Optional[type] = None) -> Port:
        """Declare a named port on this module."""
        if name in self.ports:
            raise ValueError(f"module {self.name!r} already has port {name!r}")
        port = Port(f"{self.name}.{name}", interface)
        self.ports[name] = port
        return port

    def spawn(self, name: str, generator: Generator) -> Process:
        """Register a behaviour process owned by this module."""
        proc = self.sim.spawn(f"{self.name}.{name}", generator)
        self.processes.append(proc)
        return proc

    # -- hierarchy -------------------------------------------------------------

    @property
    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def walk(self):
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaves(self) -> "list[Module]":
        """All leaf modules under (and including) this one."""
        return [m for m in self.walk() if not m.children]

    def find(self, name: str) -> "Optional[Module]":
        """Find a descendant (or self) by simple name."""
        for module in self.walk():
            if module.name == name:
                return module
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.full_name!r}, {self.mapping.value})"
