"""Ports: typed binding points between modules and channels.

A port forwards attribute access to the channel bound to it, so module
code written against a port works with any channel implementing the
expected interface — the mechanism behind the paper's level transitions,
where a point-to-point FIFO at level 1 is rebound to a bus adapter at
level 2 without touching module code.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")


class PortBindingError(RuntimeError):
    """Raised when a port is used unbound or bound twice."""


class Port(Generic[T]):
    """A named, single-binding indirection to a channel.

    >>> port = Port("out")
    >>> port.bound
    False
    """

    def __init__(self, name: str, interface: Optional[type] = None):
        self.name = name
        self.interface = interface
        self._channel: Optional[T] = None

    def bind(self, channel: T) -> None:
        """Bind the port to ``channel`` (exactly once)."""
        if self._channel is not None:
            raise PortBindingError(f"port {self.name!r} is already bound")
        if self.interface is not None and not isinstance(channel, self.interface):
            raise PortBindingError(
                f"port {self.name!r} expects {self.interface.__name__}, "
                f"got {type(channel).__name__}"
            )
        self._channel = channel

    def rebind(self, channel: T) -> None:
        """Replace the binding — used by architecture transformations."""
        if self.interface is not None and not isinstance(channel, self.interface):
            raise PortBindingError(
                f"port {self.name!r} expects {self.interface.__name__}, "
                f"got {type(channel).__name__}"
            )
        self._channel = channel

    @property
    def bound(self) -> bool:
        return self._channel is not None

    @property
    def channel(self) -> T:
        if self._channel is None:
            raise PortBindingError(f"port {self.name!r} used before binding")
        return self._channel

    def __getattr__(self, item: str):
        # Only called for attributes not found normally: forward to channel.
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self.channel, item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = type(self._channel).__name__ if self._channel is not None else "unbound"
        return f"Port({self.name!r} -> {target})"
