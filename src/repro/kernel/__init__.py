"""Discrete-event simulation kernel (SystemC 2.0 substitute).

The Symbad flow in the paper is built on the OSCI SystemC 2.0 simulator.
This package provides the equivalent substrate in pure Python:

- :class:`~repro.kernel.simtime.SimTime` — integer picosecond time type
  with unit helpers (``ns``, ``us`` ...).
- :class:`~repro.kernel.events.Event` — notifiable synchronisation
  primitive with immediate, delta and timed notification.
- :class:`~repro.kernel.process.Process` — a cooperative process wrapped
  around a Python generator; processes suspend by yielding wait requests.
- :class:`~repro.kernel.scheduler.Simulator` — the event-driven scheduler
  implementing the SystemC evaluate/update (delta-cycle) semantics.
- :class:`~repro.kernel.module.Module` — hierarchical structural unit.
- :mod:`~repro.kernel.channels` — ``Signal`` (delta-buffered) and
  ``Fifo`` (blocking bounded queue) primitive channels.

A process is any generator function; it interacts with the kernel by
yielding :func:`wait` requests::

    def producer(sim, fifo):
        for i in range(10):
            yield from fifo.put(i)
            yield wait(10, NS)

See ``examples/quickstart.py`` for an end-to-end tour.
"""

from repro.kernel.simtime import (
    SimTime,
    PS,
    NS,
    US,
    MS,
    SEC,
    time_ps,
)
from repro.kernel.events import Event, wait, wait_any, wait_all
from repro.kernel.process import Process, ProcessState
from repro.kernel.scheduler import Simulator, SimulationError
from repro.kernel.module import Module
from repro.kernel.ports import Port, PortBindingError
from repro.kernel.channels import Signal, Fifo, FifoFullError, FifoEmptyError
from repro.kernel.sync import Mutex, Semaphore

__all__ = [
    "Mutex",
    "Semaphore",
    "SimTime",
    "PS",
    "NS",
    "US",
    "MS",
    "SEC",
    "time_ps",
    "Event",
    "wait",
    "wait_any",
    "wait_all",
    "Process",
    "ProcessState",
    "Simulator",
    "SimulationError",
    "Module",
    "Port",
    "PortBindingError",
    "Signal",
    "Fifo",
    "FifoFullError",
    "FifoEmptyError",
]
