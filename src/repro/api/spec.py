"""Declarative campaign specifications.

A :class:`CampaignSpec` captures everything one flow run depends on —
the workload (by registry name), its parameters, CPU, FPGA capacity,
real-time deadline and the subset of refinement levels to execute — as a
frozen, serializable value.  Specs round-trip losslessly through
``to_dict``/``from_dict`` so campaigns can be stored in files, shipped
between machines and fanned out over grids — serially or over a process
pool (:meth:`repro.api.campaign.Campaign.sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from dataclasses import replace as _dataclass_replace
from typing import Any, Mapping, Optional

from repro.swir.enginespec import DEFAULT_ENGINE, EngineSpec
from repro.workloads import get_workload

SPEC_SCHEMA = "repro.campaign_spec/v2"
#: The pre-workload schema (no ``workload``/``params`` fields); still
#: accepted by :meth:`CampaignSpec.from_dict` and read as facerec.
SPEC_SCHEMA_V1 = "repro.campaign_spec/v1"

#: The four refinement levels of the methodology.
ALL_LEVELS = (1, 2, 3, 4)


@dataclass(frozen=True)
class CampaignSpec:
    """One fully-specified flow campaign.

    ``workload`` names an implementation in the
    :mod:`repro.workloads` registry; ``params`` carries free-form
    workload knobs (validated by the workload), while the historical
    ``identities``/``poses``/``size`` fields remain the facerec
    workload's parameters.  ``cpu`` names a model in
    :data:`repro.platform.cpu.CPU_LIBRARY`; ``levels`` is the subset of
    refinement levels to run (dependencies between levels are resolved
    by the :class:`~repro.api.session.Session`, not the spec);
    ``deadline_ms`` of ``None`` skips the LPV deadline check.
    """

    name: str = "case-study"
    workload: str = "facerec"
    identities: int = 10
    poses: int = 2
    size: int = 48
    frames: int = 3
    noise_sigma: float = 2.0
    seed: int = 2004
    cpu: str = "ARM7TDMI"
    capacity_gates: int = 16_000
    deadline_ms: Optional[float] = 500.0
    levels: tuple[int, ...] = ALL_LEVELS
    run_pcc: bool = False
    params: Mapping[str, Any] = field(default_factory=dict)
    #: SWIR execution engine selector.  Accepts a name string
    #: ("ast" | "compiled" | "batched"), a ``name:key=value`` string, an
    #: option mapping or an :class:`~repro.swir.EngineSpec`; always
    #: normalized to an ``EngineSpec``.  All engines produce
    #: byte-identical result documents — the selector exists for A/B
    #: equivalence runs and performance.  Serialized only when
    #: non-default, so existing v2 documents (and their golden schema
    #: outlines) are unchanged.
    engine: EngineSpec = EngineSpec(DEFAULT_ENGINE)

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        object.__setattr__(self, "params",
                          {k: self.params[k] for k in sorted(self.params)})
        bad = [lv for lv in self.levels if lv not in ALL_LEVELS]
        if bad or not self.levels:
            raise ValueError(
                f"levels must be a non-empty subset of {ALL_LEVELS}, "
                f"got {self.levels!r}"
            )
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.capacity_gates < 1:
            raise ValueError("capacity_gates must be >= 1")
        if not self.cpu:
            raise ValueError("cpu must name a CPU model")
        object.__setattr__(self, "engine", EngineSpec.coerce(self.engine))
        # Resolve the workload (raises on unknown names) and delegate
        # parameter validation to it.
        self.workload_config()

    def __hash__(self) -> int:
        # The dataclass-generated hash would choke on the dict-typed
        # ``params`` field; hash its canonical JSON form instead so
        # frozen specs keep working as dict/set keys.
        import json

        plain = [(f.name, getattr(self, f.name)) for f in fields(self)
                 if f.name != "params"]
        return hash((tuple(plain), json.dumps(self.params, sort_keys=True)))

    def workload_impl(self):
        """The registered :class:`~repro.workloads.base.Workload`."""
        return get_workload(self.workload)

    def workload_config(self) -> Any:
        """The workload part of the spec as a validated config record."""
        return self.workload_impl().config(self)

    @property
    def deadline_ps(self) -> Optional[int]:
        return int(self.deadline_ms * 1e9) if self.deadline_ms is not None else None

    def replace(self, **changes: Any) -> "CampaignSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return _dataclass_replace(self, **changes)

    def to_dict(self) -> dict:
        document = {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "workload": self.workload,
            "identities": self.identities,
            "poses": self.poses,
            "size": self.size,
            "frames": self.frames,
            "noise_sigma": self.noise_sigma,
            "seed": self.seed,
            "cpu": self.cpu,
            "capacity_gates": self.capacity_gates,
            "deadline_ms": self.deadline_ms,
            "levels": list(self.levels),
            "run_pcc": self.run_pcc,
            "params": dict(self.params),
        }
        # Optional, schema-compatible: default-engine documents stay
        # byte-identical to pre-engine ones; from_dict defaults it back.
        # A fully-defaulted EngineSpec serializes as the bare name
        # string, keeping pre-EngineSpec documents byte-identical too.
        if self.engine.name != DEFAULT_ENGINE or \
                not self.engine.options_defaulted():
            document["engine"] = self.engine.to_value()
        return document

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys and schemas.

        Both the current schema and the pre-workload ``v1`` documents
        are accepted: a v1 document simply has no ``workload``/``params``
        keys and reads as a facerec campaign.
        """
        payload = dict(data)
        schema = payload.pop("schema", SPEC_SCHEMA)
        if schema == SPEC_SCHEMA_V1:
            v2_only = {"workload", "params", "engine"} & set(payload)
            if v2_only:
                raise ValueError(
                    f"v1 spec documents cannot carry {sorted(v2_only)}; "
                    f"use schema {SPEC_SCHEMA!r}"
                )
        elif schema != SPEC_SCHEMA:
            raise ValueError(f"unsupported spec schema {schema!r} "
                             f"(expected {SPEC_SCHEMA!r} or {SPEC_SCHEMA_V1!r})")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        if "levels" in payload:
            payload["levels"] = tuple(payload["levels"])
        return cls(**payload)
