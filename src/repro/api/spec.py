"""Declarative campaign specifications.

A :class:`CampaignSpec` captures everything one flow run depends on —
workload, CPU, FPGA capacity, real-time deadline and the subset of
refinement levels to execute — as a frozen, serializable value.  Specs
round-trip losslessly through ``to_dict``/``from_dict`` so campaigns can
be stored in files, shipped between machines and fanned out over grids
(:meth:`repro.api.campaign.Campaign.sweep`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from dataclasses import replace as _dataclass_replace
from typing import Any, Mapping, Optional

from repro.facerec.pipeline import FacerecConfig

SPEC_SCHEMA = "repro.campaign_spec/v1"

#: The four refinement levels of the methodology.
ALL_LEVELS = (1, 2, 3, 4)


@dataclass(frozen=True)
class CampaignSpec:
    """One fully-specified flow campaign.

    ``cpu`` names a model in
    :data:`repro.platform.cpu.CPU_LIBRARY`; ``levels`` is the subset of
    refinement levels to run (dependencies between levels are resolved
    by the :class:`~repro.api.session.Session`, not the spec);
    ``deadline_ms`` of ``None`` skips the LPV deadline check.
    """

    name: str = "case-study"
    identities: int = 10
    poses: int = 2
    size: int = 48
    frames: int = 3
    noise_sigma: float = 2.0
    seed: int = 2004
    cpu: str = "ARM7TDMI"
    capacity_gates: int = 16_000
    deadline_ms: Optional[float] = 500.0
    levels: tuple[int, ...] = ALL_LEVELS
    run_pcc: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        bad = [lv for lv in self.levels if lv not in ALL_LEVELS]
        if bad or not self.levels:
            raise ValueError(
                f"levels must be a non-empty subset of {ALL_LEVELS}, "
                f"got {self.levels!r}"
            )
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.capacity_gates < 1:
            raise ValueError("capacity_gates must be >= 1")
        if not self.cpu:
            raise ValueError("cpu must name a CPU model")
        # Delegate workload validation to the config it will become.
        self.workload()

    def workload(self) -> FacerecConfig:
        """The workload part of the spec as a validated config."""
        return FacerecConfig(identities=self.identities, poses=self.poses,
                             size=self.size)

    @property
    def deadline_ps(self) -> Optional[int]:
        return int(self.deadline_ms * 1e9) if self.deadline_ms is not None else None

    def replace(self, **changes: Any) -> "CampaignSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return _dataclass_replace(self, **changes)

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "identities": self.identities,
            "poses": self.poses,
            "size": self.size,
            "frames": self.frames,
            "noise_sigma": self.noise_sigma,
            "seed": self.seed,
            "cpu": self.cpu,
            "capacity_gates": self.capacity_gates,
            "deadline_ms": self.deadline_ms,
            "levels": list(self.levels),
            "run_pcc": self.run_pcc,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys and schemas."""
        payload = dict(data)
        schema = payload.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ValueError(f"unsupported spec schema {schema!r} "
                             f"(expected {SPEC_SCHEMA!r})")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        if "levels" in payload:
            payload["levels"] = tuple(payload["levels"])
        return cls(**payload)
