"""repro.api — the composable campaign API over the Symbad flow.

The methodology's activities are :class:`~repro.api.stages.Stage` units
in a registry; a :class:`~repro.api.session.Session` owns the shared
workload artifacts and runs any subset of stages with dependency
resolution and caching; a :class:`~repro.api.spec.CampaignSpec` is the
declarative, serializable description of one run — including which
registered :mod:`repro.workloads` scenario it drives — and
:class:`~repro.api.campaign.Campaign` executes specs (or grids of them,
via :meth:`~repro.api.campaign.Campaign.sweep`, serially or over a
process pool with ``jobs=N``) into JSON-ready outcomes.

Quick tour::

    from repro.api import CampaignSpec, Campaign, Session

    spec = CampaignSpec(identities=4, poses=2, size=32, frames=2)
    session = Session(spec)
    session.run("level2")          # pulls reference/level1/profile/partition
    session.run("level3")          # reuses all of them from the cache
    report = session.report()      # the classic four-level FlowReport

    outcome = Campaign(spec).run()              # gates + serializable result
    sweep = Campaign.sweep(spec, {"cpu": ["ARM7TDMI", "ARM9TDMI"]})
    print(sweep.describe())

    cipher = CampaignSpec(workload="blockcipher", frames=8)
    Campaign(cipher).run()         # same flow, different scenario

    store = CampaignStore("campaign-store")      # durable result store
    Campaign.sweep(spec, {"frames": [1, 2]},
                   store=store, resume=True)     # skips completed points
"""

from repro.api.campaign import (
    Campaign,
    CampaignOutcome,
    LEVEL_GATES,
    SweepPointError,
    SweepResult,
)
from repro.api.session import Session
from repro.api.spec import ALL_LEVELS, CampaignSpec, SPEC_SCHEMA, SPEC_SCHEMA_V1
from repro.store import CampaignStore
from repro.api.stages import (
    FlowStage,
    LEVEL_STAGES,
    REFERENCE_CHANNELS,
    Stage,
    StageResult,
    WORKLOAD_FIELDS,
    get_stage,
    register,
    stage_names,
)
from repro.workloads import (
    Workload,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "ALL_LEVELS",
    "Campaign",
    "CampaignOutcome",
    "CampaignSpec",
    "CampaignStore",
    "FlowStage",
    "LEVEL_GATES",
    "LEVEL_STAGES",
    "REFERENCE_CHANNELS",
    "SPEC_SCHEMA",
    "SPEC_SCHEMA_V1",
    "Session",
    "Stage",
    "StageResult",
    "SweepPointError",
    "SweepResult",
    "WORKLOAD_FIELDS",
    "Workload",
    "get_stage",
    "get_workload",
    "register",
    "register_workload",
    "stage_names",
    "workload_names",
]
