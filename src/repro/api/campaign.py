"""Campaigns: declarative runs and spec-grid sweeps.

A :class:`Campaign` executes one :class:`~repro.api.spec.CampaignSpec`
in a fresh :class:`~repro.api.session.Session`, evaluates the paper's
per-level pass gates, and returns a serializable
:class:`CampaignOutcome`.  :meth:`Campaign.sweep` expands a field grid
into specs and fans them out over sessions — the batch entry point for
architecture exploration at scale.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.api.session import Session
from repro.api.spec import ALL_LEVELS, CampaignSpec
from repro.api.stages import LEVEL_STAGES, StageResult


def _gate_level1(result) -> bool:
    return result.matches_reference


def _gate_level2(result) -> bool:
    return result.consistent_with_level1 and (
        result.deadline is None or result.deadline.holds)


def _gate_level3(result) -> bool:
    return result.consistent_with_level2 and result.symbc.consistent


def _gate_level4(result) -> bool:
    return result.verified


#: The per-level pass criteria (the paper's cross-level checks).
LEVEL_GATES = {1: _gate_level1, 2: _gate_level2, 3: _gate_level3,
               4: _gate_level4}


@dataclass
class CampaignOutcome:
    """Everything one campaign run produces, JSON-serializable."""

    spec: CampaignSpec
    results: dict[str, StageResult]
    gates: dict[int, bool]
    wall_seconds: float
    report: Optional[Any] = None  # FlowReport when all four levels ran

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign_outcome/v1",
            "spec": self.spec.to_dict(),
            "passed": self.passed,
            "gates": {str(level): ok for level, ok in sorted(self.gates.items())},
            "wall_seconds": self.wall_seconds,
            "stages": {
                name: result.to_dict()
                for name, result in sorted(self.results.items())
            },
            "report": self.report.to_dict() if self.report is not None else None,
        }

    def describe(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        gates = ", ".join(
            f"L{level}:{'ok' if ok else 'FAIL'}"
            for level, ok in sorted(self.gates.items())
        )
        lines = [
            f"campaign {self.spec.name!r}: {verdict} "
            f"({gates}; {self.wall_seconds:.1f}s wall)",
        ]
        for name, result in sorted(self.results.items()):
            describe = getattr(result.value, "describe", None)
            if describe is not None:
                lines.append(describe())
        return "\n".join(lines)


class Campaign:
    """Driver for one spec (and, via :meth:`sweep`, for spec grids)."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec

    def run(self, session: Optional[Session] = None) -> CampaignOutcome:
        """Run the spec's levels; dependencies resolve through the cache."""
        session = session if session is not None else Session(self.spec)
        start = _time.perf_counter()
        results: dict[str, StageResult] = {}
        gates: dict[int, bool] = {}
        for level, stage_result in session.run_levels(self.spec.levels).items():
            results[LEVEL_STAGES[level]] = stage_result
            gates[level] = LEVEL_GATES[level](stage_result.value)
        report = None
        if set(self.spec.levels) == set(ALL_LEVELS):
            report = session.report()
        return CampaignOutcome(
            spec=self.spec,
            results=results,
            gates=gates,
            wall_seconds=_time.perf_counter() - start,
            report=report,
        )

    @classmethod
    def sweep(
        cls,
        base: CampaignSpec,
        grid: Mapping[str, Sequence[Any]],
    ) -> "SweepResult":
        """Fan a spec grid out over sessions.

        ``grid`` maps spec field names to candidate values; the cartesian
        product is run in grid order, each point in its own session.
        Consecutive sessions are derived with
        :meth:`~repro.api.session.Session.with_spec`, so stage results
        not sensitive to the grid fields (and the workload artifacts,
        when the grid does not touch the workload) are computed once and
        carried across points instead of recomputed.
        """
        keys = list(grid)
        outcomes: list[CampaignOutcome] = []
        session: Optional[Session] = None
        for combo in itertools.product(*(grid[k] for k in keys)):
            changes = dict(zip(keys, combo))
            label = ",".join(f"{k}={v}" for k, v in changes.items())
            name = f"{base.name}[{label}]" if label else base.name
            # Every grid key is set explicitly at every point, so deriving
            # from the previous point leaves no stale grid field behind.
            if session is None:
                session = Session(base.replace(name=name, **changes))
            else:
                session = session.with_spec(name=name, **changes)
            outcomes.append(cls(session.spec).run(session=session))
        return SweepResult(base=base, grid={k: list(v) for k, v in grid.items()},
                           outcomes=outcomes)


@dataclass
class SweepResult:
    """Outcomes of one spec-grid sweep, in grid order."""

    base: CampaignSpec
    grid: dict[str, list]
    outcomes: list[CampaignOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def ranked(self) -> list[CampaignOutcome]:
        """Outcomes ranked by level-2 frame latency (fastest first).

        Outcomes without a level-2 result keep their grid order at the
        end — the natural grading for architecture-exploration sweeps.
        """
        def key(outcome: CampaignOutcome):
            result = outcome.results.get("level2")
            if result is None:
                return (1, 0.0)
            return (0, result.value.metrics.frame_latency_ps)
        return sorted(self.outcomes, key=key)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign_sweep/v1",
            "base": self.base.to_dict(),
            "grid": self.grid,
            "passed": self.passed,
            "runs": [outcome.to_dict() for outcome in self.outcomes],
        }

    def describe(self) -> str:
        lines = [
            f"campaign sweep over {list(self.grid)} "
            f"({len(self.outcomes)} runs, "
            f"{'all PASSED' if self.passed else 'FAILURES present'}):",
        ]
        for outcome in self.outcomes:
            verdict = "PASSED" if outcome.passed else "FAILED"
            extra = ""
            level2 = outcome.results.get("level2")
            if level2 is not None:
                latency = level2.value.metrics.frame_latency_ps / 1e9
                extra = f" latency={latency:.3f} ms/frame"
            lines.append(
                f"  {outcome.spec.name:<40} {verdict}{extra} "
                f"({outcome.wall_seconds:.1f}s)"
            )
        return "\n".join(lines)
