"""Campaigns: declarative runs and spec-grid sweeps.

A :class:`Campaign` executes one :class:`~repro.api.spec.CampaignSpec`
in a fresh :class:`~repro.api.session.Session`, evaluates the paper's
per-level pass gates plus the workload's accuracy threshold, and returns
a serializable :class:`CampaignOutcome`.  :meth:`Campaign.sweep` expands
a field grid into specs and fans them out over sessions — serially (one
derived session per point, maximising cache reuse) or, with ``jobs=N``,
over a :mod:`multiprocessing` pool where every grid point runs in its
own process and the results are merged from their ``to_dict`` payloads.
"""

from __future__ import annotations

import itertools
import logging
import time as _time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro import telemetry
from repro.api.session import Session
from repro.api.spec import ALL_LEVELS, CampaignSpec
from repro.api.stages import LEVEL_STAGES, StageResult

logger = logging.getLogger("repro.campaign")


def _gate_level1(result) -> bool:
    return result.matches_reference


def _gate_level2(result) -> bool:
    return result.consistent_with_level1 and (
        result.deadline is None or result.deadline.holds)


def _gate_level3(result) -> bool:
    return result.consistent_with_level2 and result.symbc.consistent


def _gate_level4(result) -> bool:
    return result.verified


#: The per-level pass criteria (the paper's cross-level checks).
LEVEL_GATES = {1: _gate_level1, 2: _gate_level2, 3: _gate_level3,
               4: _gate_level4}


@dataclass
class CampaignOutcome:
    """Everything one campaign run produces, JSON-serializable."""

    spec: CampaignSpec
    results: dict[str, StageResult]
    gates: dict[int, bool]
    wall_seconds: float
    report: Optional[Any] = None  # FlowReport when all four levels ran
    accuracy: Optional[float] = None  # workload score when level 1 ran

    @property
    def passed(self) -> bool:
        return all(self.gates.values())

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign_outcome/v1",
            "spec": self.spec.to_dict(),
            "passed": self.passed,
            "gates": {str(level): ok for level, ok in sorted(self.gates.items())},
            "accuracy": self.accuracy,
            "wall_seconds": self.wall_seconds,
            "stages": {
                name: result.to_dict()
                for name, result in sorted(self.results.items())
            },
            "report": self.report.to_dict() if self.report is not None else None,
        }

    def describe(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        gates = ", ".join(
            f"L{level}:{'ok' if ok else 'FAIL'}"
            for level, ok in sorted(self.gates.items())
        )
        lines = [
            f"campaign {self.spec.name!r} ({self.spec.workload}): {verdict} "
            f"({gates}; {self.wall_seconds:.1f}s wall)",
        ]
        for name, result in sorted(self.results.items()):
            describe = getattr(result.value, "describe", None)
            if describe is not None:
                lines.append(describe())
        return "\n".join(lines)


def _available_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware).

    A ``REPRO_JOBS`` environment variable overrides the detected count
    (clamped to >= 1): cgroup-limited CI runners whose quota is invisible
    to ``sched_getaffinity`` — and the service worker pool — pin their
    concurrency with it instead of patching code.
    """
    import os

    override = os.environ.get("REPRO_JOBS", "").strip()
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {override!r}") from None
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover (non-Linux)
        return os.cpu_count() or 1


def fork_context():
    """The multiprocessing context campaign children run under.

    Prefer fork where available: workers inherit the parent's workload
    registry, so runtime-registered custom workloads run correctly.
    Under spawn (Windows), workloads must be registered at import time
    of an importable module.  Shared by the sweep pool and the service
    worker pool so the policy can only change in one place.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover (no fork on platform)
        return multiprocessing.get_context()


class SweepPointError(RuntimeError):
    """One sweep grid point failed; the message names the point.

    Raised instead of letting a worker's bare traceback bubble out of
    the pool: the message carries the failing spec's name (which embeds
    the grid-point label), workload and parameters, plus the original
    error.  Built as a single string so it survives pickling across the
    process boundary intact.
    """

    @classmethod
    def wrap(cls, spec: CampaignSpec, exc: Exception) -> "SweepPointError":
        return cls(
            f"sweep point {spec.name!r} failed "
            f"(workload={spec.workload!r}, params={dict(spec.params)!r}, "
            f"cpu={spec.cpu!r}, frames={spec.frames}, "
            f"levels={list(spec.levels)}): "
            f"{type(exc).__name__}: {exc}"
        )


def _run_spec_payload(spec_doc: dict, store_root: Optional[str] = None,
                      trace: Optional[dict] = None) -> dict:
    """Pool worker: run one spec document, return the outcome payload.

    Module-level (picklable by name) on purpose; live outcomes carry
    unpicklable artifacts (task lambdas, numpy closures), so only the
    serialized form crosses the process boundary.  Failures are wrapped
    in :class:`SweepPointError` so the parent sees which grid point (and
    which parameters) died, not just a bare pool traceback.

    With ``store_root`` the worker opens the shared
    :class:`repro.store.CampaignStore` (atomic per-entry writes make
    concurrent workers safe), persists the outcome — or the failure
    envelope — under the spec's content address, and runs its session
    against the store so the level-4 artifact is shared across workers.

    ``trace`` is a :func:`repro.telemetry.handoff` package: adopting it
    re-parents this worker's ``sweep.point`` span (and everything under
    it) under the submitting sweep's span, across the process boundary.
    """
    telemetry.adopt(trace)
    spec = CampaignSpec.from_dict(spec_doc)
    store = None
    if store_root is not None:
        from repro.store import CampaignStore

        store = CampaignStore(store_root)
    with telemetry.span("sweep.point", spec=spec.name,
                        workload=spec.workload):
        try:
            _outcome, payload = run_recorded(spec, store)
        except Exception as exc:
            raise SweepPointError.wrap(spec, exc) from exc
    return payload


def run_recorded(
    spec: CampaignSpec,
    store: Optional[Any],
    session: Optional[Session] = None,
) -> tuple["CampaignOutcome", dict]:
    """Run one spec, recording the outcome — or the failure — in the store.

    The single definition of the store persistence protocol, shared by
    the CLI single-run path, the serial store-backed sweep and the pool
    workers: a completed run persists its outcome document under the
    spec's content address; a raising run persists its error envelope
    (so ``resume`` retries it) and re-raises unwrapped.
    """
    try:
        if session is None:
            session = Session(spec, store=store)
        outcome = Campaign(spec).run(session=session)
        payload = outcome.to_dict()
    except Exception as exc:
        if store is not None:
            store.put_campaign_failure(spec, exc)
        raise
    if store is not None:
        store.put_campaign(spec, payload)
    return outcome, payload


class Campaign:
    """Driver for one spec (and, via :meth:`sweep`, for spec grids)."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec

    def run(self, session: Optional[Session] = None,
            store: Optional[Any] = None) -> CampaignOutcome:
        """Run the spec's levels; dependencies resolve through the cache.

        ``store`` (a :class:`repro.store.CampaignStore`) wires the fresh
        session to disk-backed stage persistence; pass either a session
        or a store, not both — a caller-built session already decided.
        """
        if session is not None and store is not None:
            raise ValueError("pass either session= or store=, not both "
                             "(build the session with store= instead)")
        session = session if session is not None else Session(self.spec,
                                                              store=store)
        start = _time.perf_counter()
        results: dict[str, StageResult] = {}
        gates: dict[int, bool] = {}
        accuracy: Optional[float] = None
        with telemetry.span("campaign.run", spec=self.spec.name,
                            workload=self.spec.workload,
                            levels=",".join(map(str, self.spec.levels))
                            ) as tspan:
            for level, stage_result in \
                    session.run_levels(self.spec.levels).items():
                results[LEVEL_STAGES[level]] = stage_result
                gates[level] = LEVEL_GATES[level](stage_result.value)
            if 1 in gates:
                # The workload's own pass threshold rides on the level-1
                # gate.
                accuracy = session.accuracy()
                gates[1] = gates[1] and \
                    accuracy >= session.workload.min_accuracy
            report = None
            if set(self.spec.levels) == set(ALL_LEVELS):
                report = session.report()
            tspan.set_attr("passed", all(gates.values()))
        return CampaignOutcome(
            spec=self.spec,
            results=results,
            gates=gates,
            wall_seconds=_time.perf_counter() - start,
            report=report,
            accuracy=accuracy,
        )

    @staticmethod
    def sweep_specs(
        base: CampaignSpec,
        grid: Mapping[str, Sequence[Any]],
    ) -> list[CampaignSpec]:
        """Expand ``grid`` into the ordered list of per-point specs.

        The order is the cartesian product of the grid values with the
        **last** grid key varying fastest (``itertools.product`` over the
        keys in their mapping-insertion order) — pinned by test so serial
        and parallel sweeps always return identically ordered results.
        """
        keys = list(grid)
        specs: list[CampaignSpec] = []
        for combo in itertools.product(*(grid[k] for k in keys)):
            changes = dict(zip(keys, combo))
            label = ",".join(f"{k}={v}" for k, v in changes.items())
            name = f"{base.name}[{label}]" if label else base.name
            specs.append(base.replace(name=name, **changes))
        return specs

    @classmethod
    def sweep(
        cls,
        base: CampaignSpec,
        grid: Mapping[str, Sequence[Any]],
        jobs: int = 1,
        store: Optional[Any] = None,
        resume: bool = False,
    ) -> "SweepResult":
        """Fan a spec grid out over sessions.

        ``grid`` maps spec field names to candidate values; the cartesian
        product is run in the order :meth:`sweep_specs` documents (last
        key varying fastest), each point in its own session.

        With ``jobs=1`` (default) points run serially and consecutive
        sessions are derived with
        :meth:`~repro.api.session.Session.with_spec`, so stage results
        not sensitive to the grid fields (and the workload artifacts,
        when the grid does not touch the workload) are computed once and
        carried across points instead of recomputed.

        With ``jobs>1`` the points fan out over a ``multiprocessing``
        pool, one fresh process-hosted session per point, and the merged
        :class:`SweepResult` is built from the workers' ``to_dict``
        payloads (order preserved).  Cross-point cache reuse does not
        apply, but independent points use all cores.  ``jobs`` is a
        ceiling: the pool never exceeds the grid size or the CPUs
        actually available to this process (oversubscribing a CPU quota
        makes the simulation-heavy points dramatically slower, not
        faster).

        ``store`` (a :class:`repro.store.CampaignStore`) makes the sweep
        durable: every completed point's outcome document is persisted
        under its content address (failures persist too, with their
        error envelope), sessions share the store's level-4 artifacts,
        and the merged result is payload-based for serial and parallel
        alike.  ``resume=True`` additionally *skips* every grid point
        whose completed entry is already in the store — merging the
        stored payload byte-identically instead of recomputing — while
        points whose stored entry is a **failure** are retried (only
        failures are ever retried, never successes).  A sweep that
        crashed or was killed mid-grid therefore continues where it
        stopped, across processes and CI jobs.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if resume and store is None:
            raise ValueError("resume=True requires store=")
        specs = cls.sweep_specs(base, grid)
        grid_doc = {k: list(v) for k, v in grid.items()}
        with telemetry.span("campaign.sweep", base=base.name,
                            points=len(specs), jobs=jobs):
            if store is not None:
                return cls._sweep_stored(base, grid, grid_doc, specs, jobs,
                                         store, resume)
            if jobs > 1:
                payloads = cls._pool_payloads(specs, jobs)
                return SweepResult(base=base, grid=grid_doc, outcomes=[],
                                   payloads=payloads, jobs=jobs)
            outcomes: list[CampaignOutcome] = []
            session: Optional[Session] = None
            for spec in specs:
                # Every grid key is set explicitly at every point, so
                # deriving from the previous point leaves no stale grid
                # field behind.  Session construction is inside the try:
                # a point whose spec validates but whose session cannot
                # build (unknown CPU, bad workload state) is still named
                # by SweepPointError.
                with telemetry.span("sweep.point", spec=spec.name,
                                    workload=spec.workload):
                    try:
                        if session is None:
                            session = Session(spec)
                        else:
                            session = session.with_spec(
                                name=spec.name,
                                **{k: getattr(spec, k) for k in grid})
                        outcomes.append(cls(session.spec).run(session=session))
                    except Exception as exc:
                        raise SweepPointError.wrap(spec, exc) from exc
            return SweepResult(base=base, grid=grid_doc, outcomes=outcomes)

    @staticmethod
    def _pool_payloads(specs: Sequence[CampaignSpec], jobs: int,
                       store_root: Optional[str] = None) -> list[dict]:
        """Run ``specs`` over a fork pool, returning outcome payloads."""
        ctx = fork_context()
        processes = max(1, min(jobs, len(specs), _available_cpus()))
        # Captured once, outside the workers: every pool child adopts
        # the submitting span (normally the open campaign.sweep) so its
        # sweep.point spans re-parent under it across the fork.
        trace = telemetry.handoff()
        with ctx.Pool(processes=processes) as pool:
            return pool.starmap(
                _run_spec_payload,
                [(spec.to_dict(), store_root, trace) for spec in specs])

    @classmethod
    def _sweep_stored(cls, base, grid, grid_doc, specs, jobs, store,
                      resume) -> "SweepResult":
        """The store-backed sweep: skip completed points, retry failures."""
        slots: list[Optional[dict]] = [None] * len(specs)
        hits: list[str] = []
        retried: list[str] = []
        pending: list[int] = []
        for index, spec in enumerate(specs):
            entry = store.get_campaign(spec) if resume else None
            if entry is not None and entry["status"] == "ok":
                slots[index] = entry["payload"]
                hits.append(spec.name)
                continue
            if entry is not None:  # a recorded failure: retry this point
                retried.append(spec.name)
            pending.append(index)
        executed = [specs[index].name for index in pending]
        if pending and jobs > 1:
            payloads = cls._pool_payloads([specs[i] for i in pending], jobs,
                                          store_root=str(store.root))
            for index, payload in zip(pending, payloads):
                slots[index] = payload
        else:
            session: Optional[Session] = None
            for index in pending:
                spec = specs[index]
                with telemetry.span("sweep.point", spec=spec.name,
                                    workload=spec.workload):
                    try:
                        if session is None:
                            session = Session(spec, store=store)
                        else:
                            session = session.with_spec(
                                name=spec.name,
                                **{k: getattr(spec, k) for k in grid})
                    except Exception as exc:
                        # A point whose *session* cannot build still
                        # records its failure envelope, so a resumed
                        # sweep retries it.
                        store.put_campaign_failure(spec, exc)
                        raise SweepPointError.wrap(spec, exc) from exc
                    try:
                        _outcome, payload = run_recorded(session.spec, store,
                                                         session=session)
                    except Exception as exc:
                        raise SweepPointError.wrap(session.spec, exc) from exc
                    slots[index] = payload
        if resume:
            # One auditable line per resumed sweep: nightly CI logs show
            # at a glance whether the store was warm or work happened.
            logger.info(
                "sweep %r resumed: %d/%d points merged from store, "
                "%d executed (%d retried failures)", base.name,
                len(hits), len(specs), len(executed), len(retried))
        return SweepResult(base=base, grid=grid_doc, outcomes=[],
                           payloads=slots, jobs=jobs, store_hits=hits,
                           executed=executed, retried=retried,
                           store_used=True)


@dataclass
class SweepResult:
    """Outcomes of one spec-grid sweep, in grid order.

    Serial sweeps carry live :class:`CampaignOutcome` objects in
    ``outcomes``; parallel (``jobs>1``) and store-backed sweeps carry
    serialized payloads in ``payloads`` instead.  ``runs()`` exposes the
    uniform serialized view for both.

    Store-backed sweeps additionally record the resume bookkeeping:
    which grid points merged straight from the store (``store_hits``),
    which actually executed (``executed``) and which executed as retries
    of previously-recorded failures (``retried``) — all volatile
    execution metadata, excluded from result equality.
    """

    base: CampaignSpec
    grid: dict[str, list]
    outcomes: list[CampaignOutcome] = field(default_factory=list)
    payloads: Optional[list[dict]] = None
    jobs: int = 1
    store_used: bool = False
    store_hits: list[str] = field(default_factory=list)
    executed: list[str] = field(default_factory=list)
    retried: list[str] = field(default_factory=list)

    def runs(self) -> list[dict]:
        """The per-point outcome documents, in grid order."""
        if self.payloads is not None:
            return self.payloads
        return [outcome.to_dict() for outcome in self.outcomes]

    @property
    def passed(self) -> bool:
        if self.payloads is not None:
            return all(payload["passed"] for payload in self.payloads)
        return all(outcome.passed for outcome in self.outcomes)

    def ranked(self) -> list[CampaignOutcome]:
        """Outcomes ranked by level-2 frame latency (fastest first).

        Outcomes without a level-2 result keep their grid order at the
        end — the natural grading for architecture-exploration sweeps.
        Only available on serial sweeps, which hold live outcomes.
        """
        if self.payloads is not None:
            raise RuntimeError(
                "ranked() needs live outcomes; parallel sweeps hold "
                "serialized payloads — use ranked_runs()"
            )

        def key(outcome: CampaignOutcome):
            result = outcome.results.get("level2")
            if result is None:
                return (1, 0.0)
            return (0, result.value.metrics.frame_latency_ps)
        return sorted(self.outcomes, key=key)

    def ranked_runs(self) -> list[dict]:
        """Per-point documents ranked by level-2 frame latency."""
        def key(payload: dict):
            level2 = payload["stages"].get("level2")
            if level2 is None:
                return (1, 0.0)
            return (0, level2["value"]["metrics"]["frame_latency_ps"])
        return sorted(self.runs(), key=key)

    def to_dict(self) -> dict:
        document = {
            "schema": "repro.campaign_sweep/v1",
            "base": self.base.to_dict(),
            "grid": self.grid,
            "jobs": self.jobs,
            "passed": self.passed,
            "runs": self.runs(),
        }
        if self.store_used:
            # Volatile by contract ("store_resume" is in VOLATILE_KEYS):
            # a cold and a resumed sweep differ only here.
            document["store_resume"] = {
                "hits": list(self.store_hits),
                "executed": list(self.executed),
                "retried": list(self.retried),
            }
        return document

    def _summaries(self) -> list[tuple[str, bool, Optional[float], float]]:
        """(name, passed, level2 latency ps, wall s) per point — reads
        live outcomes directly so serial sweeps don't pay a full
        serialization just to print a summary line each."""
        rows = []
        if self.payloads is not None:
            for payload in self.payloads:
                level2 = payload["stages"].get("level2")
                latency = (level2["value"]["metrics"]["frame_latency_ps"]
                           if level2 is not None else None)
                rows.append((payload["spec"]["name"], payload["passed"],
                             latency, payload["wall_seconds"]))
        else:
            for outcome in self.outcomes:
                level2 = outcome.results.get("level2")
                latency = (level2.value.metrics.frame_latency_ps
                           if level2 is not None else None)
                rows.append((outcome.spec.name, outcome.passed, latency,
                             outcome.wall_seconds))
        return rows

    def describe(self) -> str:
        rows = self._summaries()
        mode = f", jobs={self.jobs}" if self.jobs > 1 else ""
        lines = [
            f"campaign sweep over {list(self.grid)} "
            f"({len(rows)} runs{mode}, "
            f"{'all PASSED' if self.passed else 'FAILURES present'}):",
        ]
        if self.store_used:
            retries = (f", {len(self.retried)} retried failures"
                       if self.retried else "")
            lines.append(
                f"  store: {len(self.store_hits)} points merged from "
                f"store, {len(self.executed)} executed{retries}")
        for name, passed, latency_ps, wall in rows:
            verdict = "PASSED" if passed else "FAILED"
            extra = (f" latency={latency_ps / 1e9:.3f} ms/frame"
                     if latency_ps is not None else "")
            lines.append(f"  {name:<40} {verdict}{extra} ({wall:.1f}s)")
        return "\n".join(lines)
