"""The stage protocol and registry.

Every activity of the methodology — the four refinement levels plus the
supporting profiling and partitioning passes — is a :class:`Stage`: a
named unit with declared dependencies (``requires``) that computes one
artifact from a :class:`~repro.api.session.Session`.  Stages are
registered in a process-wide registry so sessions can resolve any subset
of the flow by name, and each stage declares which
:class:`~repro.api.spec.CampaignSpec` fields it is ``sensitive_to`` so
cached results survive spec changes that cannot affect them
(see :meth:`~repro.api.session.Session.with_spec`).

Stages are workload-agnostic: anything application-specific (graph,
golden trace, partitions, level-4 verification plan) is delegated to the
session's registered :class:`~repro.workloads.base.Workload`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Protocol, TYPE_CHECKING, runtime_checkable

from repro.flow.level1 import run_level1
from repro.flow.level2 import run_level2
from repro.flow.level3 import run_level3
from repro.flow.level4 import run_level4
from repro.flow.methodology import REFERENCE_CHANNELS  # noqa: F401  (compat re-export)

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.session import Session

#: Spec fields that shape the application graph and its stimuli; every
#: stage that touches them is sensitive to these.
WORKLOAD_FIELDS = ("workload", "params", "identities", "poses", "size",
                   "frames", "noise_sigma", "seed")

#: Refinement level -> stage name.
LEVEL_STAGES = {1: "level1", 2: "level2", 3: "level3", 4: "level4"}


@dataclass(frozen=True)
class StageResult:
    """One stage's outcome: the artifact plus execution metadata."""

    stage: str
    value: Any
    wall_seconds: float
    from_cache: bool = False
    #: rehydrated from a configured :class:`repro.store.CampaignStore`
    #: instead of computed (a volatile key, like ``from_cache``: two
    #: results that differ only here are the same result)
    from_store: bool = False

    def to_dict(self) -> dict:
        from repro.serialize import json_safe

        return {
            "schema": "repro.stage_result/v1",
            "stage": self.stage,
            "wall_seconds": self.wall_seconds,
            "from_cache": self.from_cache,
            "from_store": self.from_store,
            "value": json_safe(self.value),
        }


@runtime_checkable
class Stage(Protocol):
    """The uniform stage interface sessions drive."""

    name: str
    requires: tuple[str, ...]
    sensitive_to: tuple[str, ...]

    def run(self, ctx: "Session") -> StageResult: ...


class FlowStage:
    """Convenience base: implement :meth:`compute`, get timing for free.

    A stage whose artifact is expensive and serializable can opt into
    :class:`repro.store.CampaignStore` persistence by setting
    ``persist = True`` and implementing :meth:`store_identity` (the
    entry's key material) plus :meth:`rehydrate` (stored document back
    to a gate-able artifact).  When the session has a store configured,
    :meth:`run` then reloads the artifact from disk when present —
    across processes and CI jobs — and persists it after computing it;
    ``force=True`` (``Session.run``) recomputes and overwrites.
    """

    name: str = ""
    requires: tuple[str, ...] = ()
    sensitive_to: tuple[str, ...] = WORKLOAD_FIELDS
    #: whether this stage's artifact persists in a configured store
    persist: bool = False

    def run(self, ctx: "Session") -> StageResult:
        start = _time.perf_counter()
        persisting = self.persist and ctx.store is not None
        if persisting and ctx.forcing != self.name:
            payload = ctx.store.get_stage(self.store_identity(ctx))
            if payload is not None:
                return StageResult(
                    stage=self.name, value=self.rehydrate(payload),
                    wall_seconds=_time.perf_counter() - start,
                    from_store=True,
                )
        value = self.compute(ctx)
        if persisting:
            ctx.store.put_stage(self.store_identity(ctx), value.to_dict())
        return StageResult(stage=self.name, value=value,
                           wall_seconds=_time.perf_counter() - start)

    def compute(self, ctx: "Session") -> Any:
        raise NotImplementedError

    def store_identity(self, ctx: "Session") -> dict:
        """Key material identifying this stage's persisted artifact."""
        raise NotImplementedError(
            f"stage {self.name!r} sets persist=True but does not define "
            f"store_identity()")

    def rehydrate(self, payload: dict) -> Any:
        """A gate-able artifact rebuilt from the stored document."""
        raise NotImplementedError(
            f"stage {self.name!r} sets persist=True but does not define "
            f"rehydrate()")


_REGISTRY: dict[str, Stage] = {}


def register(stage: Any) -> Any:
    """Register a stage instance (or class, instantiated with no args).

    Usable as a class decorator.  Raises on duplicate or anonymous names.
    """
    instance = stage() if isinstance(stage, type) else stage
    if not getattr(instance, "name", ""):
        raise ValueError(f"stage {instance!r} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"stage {instance.name!r} already registered")
    _REGISTRY[instance.name] = instance
    return stage


def get_stage(name: str) -> Stage:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def stage_names() -> list[str]:
    return sorted(_REGISTRY)


# -- the built-in flow stages -----------------------------------------------------


@register
class ReferenceStage(FlowStage):
    """Golden trace of the workload's reference model over the stimuli."""

    name = "reference"

    def compute(self, ctx: "Session"):
        return ctx.workload.reference_trace(ctx.spec, ctx.environment,
                                            ctx.frames)


@register
class ProfileStage(FlowStage):
    """Execution profile of the untimed application (partitioning input)."""

    name = "profile"

    def compute(self, ctx: "Session"):
        from repro.platform.profiler import profile_graph

        return profile_graph(ctx.graph, ctx.stimuli())


@register
class PartitionStage(FlowStage):
    """The workload's designer partitions for the timed levels."""

    name = "partition"

    def compute(self, ctx: "Session") -> dict:
        partitions = ctx.workload.partitions(ctx.graph)
        missing = {"timed", "reconfigurable"} - set(partitions)
        if missing:
            raise RuntimeError(
                f"workload {ctx.workload.name!r} partitions missing "
                f"{sorted(missing)}"
            )
        return partitions


@register
class Level1Stage(FlowStage):
    """System-level specification: untimed simulation + trace check."""

    name = "level1"
    requires = ("reference",)

    def compute(self, ctx: "Session"):
        # Levels 1-2 contain no SWIR execution: the engine selector is
        # recorded but their results are engine-independent, so they are
        # deliberately NOT sensitive_to "engine" (an engine A/B sweep
        # reuses the cached simulations).
        return run_level1(
            ctx.graph, ctx.stimuli(),
            reference_trace=ctx.value("reference"),
            compare_channels=list(ctx.workload.reference_channels),
            engine=ctx.spec.engine,
        )


@register
class Level2Stage(FlowStage):
    """Architecture mapping: timed TL simulation + LPV real-time checks."""

    name = "level2"
    requires = ("level1", "profile", "partition")
    sensitive_to = WORKLOAD_FIELDS + ("cpu", "deadline_ms")

    def compute(self, ctx: "Session"):
        return run_level2(
            ctx.graph,
            ctx.value("partition")["timed"],
            ctx.stimuli(),
            cpu=ctx.cpu,
            profile=ctx.value("profile"),
            level1_trace=ctx.value("level1").trace,
            deadline_ps=ctx.spec.deadline_ps,
            engine=ctx.spec.engine,
        )


@register
class Level3Stage(FlowStage):
    """Reconfiguration refinement: FPGA contexts + SymbC consistency."""

    name = "level3"
    requires = ("level1", "profile", "partition")
    sensitive_to = WORKLOAD_FIELDS + ("cpu", "capacity_gates", "engine")

    def compute(self, ctx: "Session"):
        return run_level3(
            ctx.graph,
            ctx.value("partition")["reconfigurable"],
            ctx.stimuli(),
            capacity_gates=ctx.spec.capacity_gates,
            cpu=ctx.cpu,
            profile=ctx.value("profile"),
            reference_trace=ctx.value("level1").trace,
            engine=ctx.spec.engine,
            # The batched engine uses the campaign store as its shared
            # JIT source cache (keyed by program hash + engine revision).
            store=ctx.store,
        )


@register
class Level4Stage(FlowStage):
    """RTL generation and formal verification of the FPGA modules.

    Independent of the workload *parameters*: each workload's
    synthesised accelerators and property plans are fixed by its
    :meth:`~repro.workloads.base.Workload.verify_plan`, so the
    (expensive) synthesis/BMC/PCC result is memoized process-wide per
    ``(workload, run_pcc)`` and shared across sessions.  A session-level
    ``invalidate`` does not clear the memo; ``run("level4", force=True)``
    does, re-running the verification.

    When the session has a :class:`repro.store.CampaignStore`, the
    disk-backed entry **replaces** the process-local memo: the result
    persists across processes and CI jobs, keyed on the workload
    identity (name + revision) and ``run_pcc``, and reloads as a
    :class:`repro.store.StoredLevel4Result` whose ``to_dict`` is
    byte-identical to the live result's.
    """

    name = "level4"
    sensitive_to = ("workload", "run_pcc")
    persist = True

    _memo: dict[tuple[str, bool], Any] = {}

    def store_identity(self, ctx: "Session") -> dict:
        from repro.store import workload_identity

        return {"stage": self.name, "run_pcc": ctx.spec.run_pcc,
                **workload_identity(ctx.workload.name)}

    def rehydrate(self, payload: dict):
        from repro.store import StoredLevel4Result

        return StoredLevel4Result(payload)

    def compute(self, ctx: "Session"):
        if ctx.store is not None:
            # The store replaces the process-local memo (FlowStage.run
            # has already consulted it and will persist this result).
            return self._verify(ctx)
        key = (ctx.workload.name, ctx.spec.run_pcc)
        if key not in self._memo or ctx.forcing == self.name:
            self._memo[key] = self._verify(ctx)
        return self._memo[key]

    def _verify(self, ctx: "Session"):
        plan = ctx.workload.verify_plan(ctx.spec)
        return run_level4(
            functions=dict(plan.functions),
            reference_impls=dict(plan.reference_impls),
            test_inputs=dict(plan.test_inputs),
            width=plan.width,
            run_pcc=ctx.spec.run_pcc,
        )
