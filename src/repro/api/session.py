"""Sessions: shared artifacts + a dependency-resolving stage cache.

A :class:`Session` owns the expensive workload artifacts of one
campaign (enrolled environment, application graph, reference model,
sampled stimuli) and drives registered stages over them.  Results are
cached, so running level 3 after level 2 reuses the level-1 simulation,
the profile and the partitions instead of recomputing them — the paper's
"levels can be entered and re-run independently" made concrete.

The session is workload-agnostic: the spec's ``workload`` field selects
a registered :class:`~repro.workloads.base.Workload`, which builds every
application-specific artifact.

``with_spec`` derives a new session for a modified spec, carrying over
both the workload artifacts (when the workload fields are untouched) and
every cached stage result whose declared spec sensitivity does not
intersect the change — the unit of reuse architecture sweeps are built
on.
"""

from __future__ import annotations

from dataclasses import fields
from dataclasses import replace as _dataclass_replace
from typing import Any, Iterable, Optional

from repro import telemetry
from repro.api.spec import CampaignSpec
from repro.api.stages import (
    LEVEL_STAGES,
    StageResult,
    WORKLOAD_FIELDS,
    get_stage,
)
from repro.platform.cpu import CPU_LIBRARY, CpuModel


class Session:
    """One campaign's artifacts, stage cache and dependency resolver."""

    def __init__(
        self,
        spec: Optional[CampaignSpec] = None,
        cpu_model: Optional[CpuModel] = None,
        store: Optional[Any] = None,
        **overrides: Any,
    ):
        spec = spec if spec is not None else CampaignSpec()
        if overrides:
            spec = spec.replace(**overrides)
        self.spec = spec
        #: optional :class:`repro.store.CampaignStore`; stages opting
        #: into persistence (level 4) reload/persist through it, making
        #: their results durable across processes and CI jobs
        self.store = store
        #: the registered workload implementation driving this session
        self.workload = spec.workload_impl()
        #: the workload's validated parameter record
        self.config = spec.workload_config()
        self._cpu_model = cpu_model
        if cpu_model is not None:
            self.cpu = cpu_model
        else:
            try:
                self.cpu = CPU_LIBRARY[spec.cpu]
            except KeyError:
                raise KeyError(
                    f"unknown CPU model {spec.cpu!r}; "
                    f"library: {sorted(CPU_LIBRARY)}"
                ) from None
        self._artifacts: dict[str, Any] = {}
        self._results: dict[str, StageResult] = {}
        self._resolving: list[str] = []
        #: stage currently being force-recomputed; stages keeping their
        #: own process-wide memo must bypass it when this matches their
        #: name (see Level4Stage)
        self.forcing: Optional[str] = None
        #: times each stage was actually computed (cache hits excluded)
        self.compute_counts: dict[str, int] = {}
        #: times each stage was reloaded from the configured store
        #: (those runs are *not* computes and don't count above)
        self.store_hits: dict[str, int] = {}

    # -- shared workload artifacts (built lazily, owned by the session) -----------

    def _artifact(self, name: str, build) -> Any:
        if name not in self._artifacts:
            self._artifacts[name] = build()
        return self._artifacts[name]

    @property
    def environment(self):
        """The workload's enrolled/derived data (database, keys, ...)."""
        return self._artifact("environment", lambda: (
            self.workload.build_environment(self.spec)))

    @property
    def database(self):
        """Historical alias for :attr:`environment`."""
        return self.environment

    @property
    def graph(self):
        return self._artifact("graph", lambda: self.workload.build_graph(
            self.spec, self.environment))

    @property
    def reference(self):
        return self._artifact("reference_model", lambda: (
            self.workload.reference_model(self.spec, self.environment)))

    @property
    def shots(self) -> list:
        return self._artifact("shots",
                              lambda: self.workload.shots(self.spec))

    @property
    def frames(self) -> list:
        return self._artifact("frames", lambda: (
            self.workload.sample_inputs(self.spec, self.shots)))

    def stimuli(self) -> dict[str, list]:
        """A fresh stimuli dict for one simulation run."""
        return {self.workload.source_task: list(self.frames)}

    # -- stage execution ----------------------------------------------------------

    def run(self, name: str, force: bool = False) -> StageResult:
        """Run one stage (resolving ``requires`` first); cache the result.

        A cache hit is returned with ``from_cache=True`` and is never
        recomputed unless ``force`` is given.
        """
        stage = get_stage(name)
        if name in self._resolving:
            cycle = " -> ".join(self._resolving + [name])
            raise RuntimeError(f"stage dependency cycle: {cycle}")
        if not force and name in self._results:
            return _dataclass_replace(self._results[name], from_cache=True)
        self._resolving.append(name)
        if force:
            self.forcing = name
        try:
            for dep in stage.requires:
                self.run(dep)
            with telemetry.span(f"stage.{name}", stage=name,
                                workload=self.workload.name,
                                spec=self.spec.name) as span:
                result = stage.run(self)
                span.set_attr("from_store", result.from_store)
        finally:
            self._resolving.pop()
            if force:
                self.forcing = None
        if result.stage != name:
            raise RuntimeError(
                f"stage {name!r} returned a result labelled {result.stage!r}")
        self._results[name] = result
        if result.from_store:
            self.store_hits[name] = self.store_hits.get(name, 0) + 1
        else:
            self.compute_counts[name] = self.compute_counts.get(name, 0) + 1
        return result

    def value(self, name: str) -> Any:
        """The stage's artifact (running it first if needed)."""
        return self.run(name).value

    def has(self, name: str) -> bool:
        """Whether a cached result for ``name`` exists."""
        return name in self._results

    def put(self, name: str, value: Any) -> StageResult:
        """Seed the cache with an externally-computed artifact."""
        get_stage(name)  # validates the name
        result = StageResult(stage=name, value=value, wall_seconds=0.0)
        self._results[name] = result
        return result

    def invalidate(self, name: str) -> None:
        """Drop a cached result and everything depending on it."""
        if name not in self._results:
            return
        del self._results[name]
        for other in list(self._results):
            if name in get_stage(other).requires:
                self.invalidate(other)

    def run_levels(self, levels: Iterable[int]) -> dict[int, StageResult]:
        """Run a subset of refinement levels, in level order."""
        out: dict[int, StageResult] = {}
        for level in sorted(set(levels)):
            out[level] = self.run(LEVEL_STAGES[level])
        return out

    # -- aggregate results --------------------------------------------------------

    def accuracy(self) -> float:
        """The workload's application-level score over the level-1 run."""
        results = self.value("level1").results
        return self.workload.score(self.shots, results)

    def recognition_accuracy(self) -> float:
        """Historical alias for :meth:`accuracy`."""
        return self.accuracy()

    def report(self):
        """Run all four levels and assemble the :class:`FlowReport`."""
        from dataclasses import asdict, is_dataclass

        from repro.flow.methodology import FlowReport
        from repro.serialize import json_safe

        config = self.config
        if is_dataclass(config) and not isinstance(config, type):
            params = asdict(config)
        else:
            params = json_safe(dict(config))
        level1 = self.value("level1")
        level2 = self.value("level2")
        level3 = self.value("level3")
        level4 = self.value("level4")
        speed2 = level2.sim_speed_hz(self.cpu)
        speed3 = level3.sim_speed_hz(self.cpu)
        return FlowReport(
            workload_name=self.workload.name,
            params=params,
            shots=self.shots,
            level1=level1,
            level2=level2,
            level3=level3,
            level4=level4,
            recognition_accuracy=self.accuracy(),
            min_accuracy=self.workload.min_accuracy,
            sim_speed_ratio=speed2 / speed3 if speed3 else float("inf"),
        )

    # -- derivation ---------------------------------------------------------------

    def with_spec(self, **changes: Any) -> "Session":
        """A session for a modified spec, reusing everything unaffected.

        Workload artifacts carry over when no workload field changed;
        a cached stage result carries over when neither it nor any stage
        it depends on is ``sensitive_to`` a changed field.
        """
        spec = self.spec.replace(**changes)
        cpu_model = None if "cpu" in changes else self._cpu_model
        derived = Session(spec, cpu_model=cpu_model, store=self.store)
        changed = {
            f.name for f in fields(CampaignSpec)
            if getattr(spec, f.name) != getattr(self.spec, f.name)
        }
        if not changed & set(WORKLOAD_FIELDS):
            derived._artifacts = dict(self._artifacts)

        carryable: dict[str, bool] = {}

        def carries(name: str) -> bool:
            if name not in carryable:
                if name not in self._results:
                    carryable[name] = False
                else:
                    stage = get_stage(name)
                    carryable[name] = not (set(stage.sensitive_to) & changed) \
                        and all(carries(dep) for dep in stage.requires)
            return carryable[name]

        for name, result in self._results.items():
            if carries(name):
                derived._results[name] = result
        return derived
