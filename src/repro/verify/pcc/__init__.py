"""PCC: the property coverage checker [13].

*"Proven properties cannot completely assure the correctness of the
design implementation, since some behaviors may have been not
considered. ... we have developed a tool, called property coverage
checker (PCC), that evaluates the completeness of properties by mixing
functional and formal verification."* (Section 3.4)

The mix, as in the underlying MEMOCODE'03 technique: a **high-level
fault model** perturbs the RTL (mutations), functional simulation
separates observable mutants from silent ones, and formal checking (BMC
of the property set on each observable mutant) decides whether the
properties *notice* the perturbation.  An observable mutant no property
kills is evidence the verification plan has a hole.

- :mod:`~repro.verify.pcc.mutation` — mutation operators on FSMD
  netlists (operator swaps, constant perturbations, stuck bits, mux
  inversions);
- :mod:`~repro.verify.pcc.checker` — the coverage computation and the
  report that drives the paper's "extend the property set and check the
  new ones" loop.
"""

from repro.verify.pcc.mutation import Mutation, MutationError, enumerate_mutations
from repro.verify.pcc.checker import (
    MutantVerdict,
    PccReport,
    PropertyCoverageChecker,
)

__all__ = [
    "Mutation",
    "MutationError",
    "enumerate_mutations",
    "MutantVerdict",
    "PccReport",
    "PropertyCoverageChecker",
]
