"""Property coverage computation.

For every mutation of the design:

1. **functional phase** — simulate original and mutant side by side on
   random input sequences; a mutant whose observable outputs never
   differ is *silent* (possibly equivalent) and excluded from the
   denominator, as PCC's fault model prescribes;
2. **formal phase** — bounded-model-check the property set on the
   observable mutant; if every property still passes, the mutant
   *survives*: the properties do not constrain the behaviour the
   mutation changed.

``coverage = killed / (killed + survived)``.  Survivors are reported
with their mutation site — the designer's TODO list for new properties
(the paper: "if it shows that not enough properties have been used, the
designer will have to extend the set of properties").

The formal phase is incremental by default: one
:class:`BoundedModelChecker` session encodes the baseline unrolling
once, each mutant adds only its diff cone under an activation literal,
and solver-learned clauses carry across mutants and properties.
``incremental=False`` restores the fresh-encode-per-mutant path (the
differential suite pins both to identical reports), and ``jobs=N``
batches observable mutants across a multiprocessing pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.rtl.netlist import Netlist
from repro.verify.mc.bmc import BoundedModelChecker
from repro.verify.pcc.mutation import Mutation, enumerate_mutations
from repro.verify.sat import SatResult


@dataclass
class MutantVerdict:
    """Outcome for one mutant."""

    mutation: Mutation
    observable: bool
    killed_by: Optional[str] = None  # property text, when killed

    @property
    def survived(self) -> bool:
        return self.observable and self.killed_by is None


@dataclass
class PccReport:
    """The property-completeness verdict."""

    netlist_name: str
    properties: list[str]
    verdicts: list[MutantVerdict] = field(default_factory=list)

    @property
    def observable_count(self) -> int:
        return sum(1 for v in self.verdicts if v.observable)

    @property
    def killed_count(self) -> int:
        return sum(1 for v in self.verdicts if v.killed_by is not None)

    @property
    def survivors(self) -> list[MutantVerdict]:
        return [v for v in self.verdicts if v.survived]

    @property
    def coverage(self) -> float:
        observable = self.observable_count
        return self.killed_count / observable if observable else 1.0

    @property
    def complete(self) -> bool:
        return not self.survivors

    def to_dict(self) -> dict:
        return {
            "schema": "repro.pcc_report/v1",
            "netlist": self.netlist_name,
            "properties_checked": len(self.properties),
            "mutants": len(self.verdicts),
            "observable": self.observable_count,
            "killed": self.killed_count,
            "coverage": self.coverage,
            "complete": self.complete,
            "survivors": [v.mutation.describe() for v in self.survivors],
        }

    def describe(self) -> str:
        lines = [
            f"PCC report for {self.netlist_name}",
            f"  properties checked: {len(self.properties)}",
            f"  mutants: {len(self.verdicts)} total, "
            f"{self.observable_count} observable, {self.killed_count} killed",
            f"  property coverage: {self.coverage:.1%}",
        ]
        if self.survivors:
            lines.append("  UNDETECTED mutants (missing properties):")
            for verdict in self.survivors:
                lines.append(f"    - {verdict.mutation.describe()}")
        else:
            lines.append("  property set is complete w.r.t. the fault model")
        return "\n".join(lines)


def _formal_chunk(netlist: Netlist,
                  properties: list[list[list[tuple[str, str, int]]]],
                  bound: int, incremental: bool,
                  batch: list[tuple[int, Mutation]]) -> list[tuple[int, Optional[str]]]:
    """Pool worker: formal verdicts for one batch of observable mutants.

    Module-level (picklable by name) on purpose.  Each worker builds its
    own incremental session, so learned clauses are shared within the
    batch; returns ``(index, killed_by)`` pairs for order-stable
    reassembly in the parent.
    """
    session = BoundedModelChecker(netlist, incremental=True) \
        if incremental else None
    out = []
    for index, mutation in batch:
        out.append((index, _formal_verdict(netlist, properties, bound,
                                           mutation, session)))
    return out


def _formal_verdict(netlist: Netlist,
                    properties: list[list[list[tuple[str, str, int]]]],
                    bound: int, mutation: Mutation,
                    session: Optional[BoundedModelChecker]) -> Optional[str]:
    """The property text that kills ``mutation``, or None if it survives."""
    if session is None:
        checker = BoundedModelChecker(mutation.apply(netlist),
                                      incremental=False)
        for clauses in properties:
            result = checker.check_invariant_clauses(clauses, bound)
            if result.violated:
                return result.property_text
        return None
    act = session.add_mutant(mutation.driver,
                             mutation.rewritten_driver(netlist), bound)
    try:
        if len(properties) > 1:
            # One aggregate solve answers "survives everything?" -- the
            # common case; only a kill pays the per-property queries.
            if session.check_mutant_any(act, properties, bound) \
                    is SatResult.UNSAT:
                return None
        for clauses in properties:
            result = session.check_mutant(act, clauses, bound)
            if result.violated:
                return result.property_text
        return None
    finally:
        session.retire_mutant(act)


class PropertyCoverageChecker:
    """Evaluates a property set's completeness on one netlist.

    ``properties`` are BMC invariants in CNF-over-atoms form: each
    property is a list of clauses, each clause a list of
    ``(signal, op, const)`` atoms (OR within a clause, AND across
    clauses; an implication ``a -> b`` is the clause
    ``[negate(a), b]``).  A plain list of atom tuples is also accepted
    and read as their conjunction.  All properties must hold on the
    original design (checked first — PCC is only meaningful for a
    passing verification plan).

    ``incremental`` selects the shared-session formal phase;
    ``jobs`` (>1) fans observable mutants out over a fork pool.
    """

    @staticmethod
    def _normalize(prop) -> list[list[tuple[str, str, int]]]:
        if prop and isinstance(prop[0], tuple):
            return [[atom] for atom in prop]
        return [list(clause) for clause in prop]

    def __init__(
        self,
        netlist: Netlist,
        properties: list[list[tuple[str, str, int]]],
        bound: int = 8,
        sim_sequences: int = 8,
        sim_length: int = 24,
        seed: int = 11,
        mutation_limit: Optional[int] = None,
        incremental: bool = True,
        jobs: Optional[int] = None,
    ):
        netlist.validate()
        self.netlist = netlist
        self.properties = [self._normalize(p) for p in properties]
        self.bound = bound
        self.sim_sequences = sim_sequences
        self.sim_length = sim_length
        self.rng = random.Random(seed)
        self.mutation_limit = mutation_limit
        self.incremental = incremental
        self.jobs = jobs
        self._stimuli = self._build_stimuli()
        self._session: Optional[BoundedModelChecker] = None

    def __getstate__(self) -> dict:
        # The live solver session never crosses a process boundary.
        state = dict(self.__dict__)
        state["_session"] = None
        return state

    # -- functional phase -------------------------------------------------------

    def _build_stimuli(self) -> list[list[dict[str, int]]]:
        sequences = []
        for __ in range(self.sim_sequences):
            sequence = []
            for __ in range(self.sim_length):
                step = {}
                for name, width in self.netlist.inputs.items():
                    step[name] = self.rng.randrange(1 << min(width, 16))
                sequence.append(step)
            sequences.append(sequence)
        return sequences

    def _observable_signals(self) -> list[str]:
        if self.netlist.outputs:
            return list(self.netlist.outputs)
        return list(self.netlist.registers)

    def _differs(self, mutant: Netlist) -> bool:
        observed = self._observable_signals()
        for sequence in self._stimuli:
            state_a = self.netlist.reset_state()
            state_b = mutant.reset_state()
            for step in sequence:
                state_a, values_a = self.netlist.step(state_a, step)
                state_b, values_b = mutant.step(state_b, step)
                if any(values_a[s] != values_b[s] for s in observed):
                    return True
        return False

    # -- formal phase ----------------------------------------------------------------

    def _shared_session(self) -> Optional[BoundedModelChecker]:
        if not self.incremental:
            return None
        if self._session is None:
            self._session = BoundedModelChecker(self.netlist, incremental=True)
        return self._session

    def _killed_by(self, mutation: Mutation) -> Optional[str]:
        return _formal_verdict(self.netlist, self.properties, self.bound,
                               mutation, self._shared_session())

    # -- main -----------------------------------------------------------------------------

    def verify_baseline(self) -> None:
        """Assert every property holds on the unmutated design."""
        checker = self._shared_session() \
            or BoundedModelChecker(self.netlist, incremental=False)
        for clauses in self.properties:
            result = checker.check_invariant_clauses(clauses, self.bound)
            if result.violated:
                raise ValueError(
                    f"property {result.property_text!r} fails on the original "
                    "design; fix the design before measuring property coverage"
                )

    def run(self, mutations: Optional[list[Mutation]] = None) -> PccReport:
        """Compute property coverage over all (or given) mutations."""
        self.verify_baseline()
        if mutations is None:
            mutations = enumerate_mutations(self.netlist, limit=self.mutation_limit)
        report = PccReport(
            netlist_name=self.netlist.name,
            properties=[
                " && ".join(
                    "(" + " || ".join(f"{n} {op} {v}" for n, op, v in clause) + ")"
                    for clause in clauses
                )
                for clauses in self.properties
            ],
        )
        observable_batch: list[tuple[int, Mutation]] = []
        for mutation in mutations:
            try:
                mutant = mutation.apply(self.netlist)
            except Exception:
                continue  # structurally inapplicable: skip
            observable = self._differs(mutant)
            if observable:
                observable_batch.append((len(report.verdicts), mutation))
            report.verdicts.append(MutantVerdict(mutation, observable))

        if self.jobs and self.jobs > 1 and len(observable_batch) > 1:
            verdicts = self._formal_pool(observable_batch)
        else:
            verdicts = [(index, self._killed_by(mutation))
                        for index, mutation in observable_batch]
        for index, killed_by in verdicts:
            report.verdicts[index].killed_by = killed_by
        return report

    def _formal_pool(self, batch: list[tuple[int, Mutation]]
                     ) -> list[tuple[int, Optional[str]]]:
        """Fan the formal phase out over a fork pool, one chunk per job."""
        from repro.api.campaign import fork_context

        jobs = min(self.jobs, len(batch))
        chunks = [batch[i::jobs] for i in range(jobs)]
        with fork_context().Pool(processes=jobs) as pool:
            results = pool.starmap(
                _formal_chunk,
                [(self.netlist, self.properties, self.bound,
                  self.incremental, chunk) for chunk in chunks],
            )
        merged = [pair for chunk in results for pair in chunk]
        merged.sort(key=lambda pair: pair[0])
        return merged
