"""Mutation operators over FSMD netlists (the PCC high-level fault model).

Each :class:`Mutation` names one expression-tree rewrite at one position
of one driver (a wire or a register next-value expression):

- ``op-swap``: ``+ <-> -``, ``& <-> |``, ``== <-> !=``, ``< <-> <=``;
- ``const-perturb``: a constant's least-significant bit flipped;
- ``stuck-bit``: OR/AND a driver with a one-hot mask (bit stuck at 1/0);
- ``mux-invert``: a mux's branches exchanged.

Mutants are built lazily (:meth:`Mutation.apply`) as rebuilt netlists;
the original is never modified.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.rtl.netlist import (
    BinExpr,
    ConstExpr,
    Expr,
    MuxExpr,
    Netlist,
    Register,
    SigExpr,
    UnExpr,
)


class MutationError(ValueError):
    """Raised for invalid mutation specifications."""


_OP_SWAPS = {"+": "-", "-": "+", "&": "|", "|": "&",
             "==": "!=", "!=": "==", "<": "<=", "<=": "<", "^": "|"}


@dataclass(frozen=True)
class Mutation:
    """One netlist mutation site."""

    kind: str          # op-swap | const-perturb | stuck-bit | mux-invert
    driver: str        # wire name or register name (next expression)
    position: int      # index of the expression node in pre-order
    detail: str

    def rewritten_driver(self, netlist: Netlist) -> Expr:
        """The mutated driver expression, without cloning the netlist.

        This is what incremental PCC feeds the model checker: the single
        expression that differs from the baseline design.
        """
        if self.driver in netlist.wires:
            __, expr = netlist.wires[self.driver]
        elif self.driver in netlist.registers:
            expr = netlist.registers[self.driver].next_expr
        else:
            raise MutationError(f"unknown driver {self.driver!r}")
        counter = [0]
        rewritten = _rewrite(expr, self.position, self.kind, counter)
        if counter[0] <= self.position:
            raise MutationError(
                f"position {self.position} out of range for {self.driver!r}"
            )
        return rewritten

    def apply(self, netlist: Netlist) -> Netlist:
        """A fresh netlist with this single mutation applied."""
        rewritten = self.rewritten_driver(netlist)
        mutant = _clone(netlist)
        mutant.name = f"{netlist.name}~{self.kind}@{self.driver}:{self.position}"
        if self.driver in mutant.wires:
            width, __ = mutant.wires[self.driver]
            mutant.wires[self.driver] = (width, rewritten)
        else:
            mutant.registers[self.driver].next_expr = rewritten
        mutant._order = None
        mutant.validate()
        return mutant

    def describe(self) -> str:
        return f"{self.kind} at {self.driver}[{self.position}]: {self.detail}"


def _clone(netlist: Netlist) -> Netlist:
    clone = Netlist(netlist.name)
    clone.inputs = dict(netlist.inputs)
    clone.registers = {
        name: Register(reg.name, reg.width, reg.reset, reg.next_expr)
        for name, reg in netlist.registers.items()
    }
    clone.wires = dict(netlist.wires)
    clone.outputs = list(netlist.outputs)
    return clone


def _walk(expr: Expr):
    """Pre-order traversal yielding every node."""
    yield expr
    if isinstance(expr, BinExpr):
        yield from _walk(expr.left)
        yield from _walk(expr.right)
    elif isinstance(expr, UnExpr):
        yield from _walk(expr.operand)
    elif isinstance(expr, MuxExpr):
        yield from _walk(expr.sel)
        yield from _walk(expr.then)
        yield from _walk(expr.other)


def _rewrite(expr: Expr, target: int, kind: str, counter: list[int]) -> Expr:
    """Rebuild ``expr`` applying ``kind`` at pre-order index ``target``."""
    index = counter[0]
    counter[0] += 1
    if index == target:
        return _mutate_node(expr, kind)
    if isinstance(expr, BinExpr):
        left = _rewrite(expr.left, target, kind, counter)
        right = _rewrite(expr.right, target, kind, counter)
        return BinExpr(expr.op, left, right)
    if isinstance(expr, UnExpr):
        return UnExpr(expr.op, _rewrite(expr.operand, target, kind, counter))
    if isinstance(expr, MuxExpr):
        sel = _rewrite(expr.sel, target, kind, counter)
        then = _rewrite(expr.then, target, kind, counter)
        other = _rewrite(expr.other, target, kind, counter)
        return MuxExpr(sel, then, other)
    return expr


def _mutate_node(expr: Expr, kind: str) -> Expr:
    if kind == "op-swap":
        if not isinstance(expr, BinExpr) or expr.op not in _OP_SWAPS:
            raise MutationError(f"op-swap does not apply to {expr!r}")
        return BinExpr(_OP_SWAPS[expr.op], expr.left, expr.right)
    if kind == "const-perturb":
        if not isinstance(expr, ConstExpr):
            raise MutationError(f"const-perturb does not apply to {expr!r}")
        return ConstExpr(expr.value ^ 1, expr.width)
    if kind == "stuck-bit":
        # Bit 0 of this node stuck at 1.
        return BinExpr("|", expr, ConstExpr(1, 1))
    if kind == "mux-invert":
        if not isinstance(expr, MuxExpr):
            raise MutationError(f"mux-invert does not apply to {expr!r}")
        return MuxExpr(expr.sel, expr.other, expr.then)
    raise MutationError(f"unknown mutation kind {kind!r}")


def enumerate_mutations(netlist: Netlist, limit: Optional[int] = None,
                        kinds: Optional[set[str]] = None) -> list[Mutation]:
    """All applicable single mutations of ``netlist`` (optionally capped)."""
    netlist.validate()
    wanted = kinds or {"op-swap", "const-perturb", "stuck-bit", "mux-invert"}
    drivers: list[tuple[str, Expr]] = []
    for name, (__, expr) in netlist.wires.items():
        drivers.append((name, expr))
    for name, reg in netlist.registers.items():
        drivers.append((name, reg.next_expr))

    mutations: list[Mutation] = []
    for driver, root in drivers:
        for position, node in enumerate(_walk(root)):
            if "op-swap" in wanted and isinstance(node, BinExpr) \
                    and node.op in _OP_SWAPS:
                mutations.append(Mutation(
                    "op-swap", driver, position,
                    f"{node.op} -> {_OP_SWAPS[node.op]}"))
            if "const-perturb" in wanted and isinstance(node, ConstExpr):
                mutations.append(Mutation(
                    "const-perturb", driver, position,
                    f"{node.value} -> {node.value ^ 1}"))
            if "mux-invert" in wanted and isinstance(node, MuxExpr):
                mutations.append(Mutation(
                    "mux-invert", driver, position, "branches exchanged"))
            if "stuck-bit" in wanted and isinstance(node, SigExpr):
                mutations.append(Mutation(
                    "stuck-bit", driver, position, f"{node.name} bit0 stuck-at-1"))
            if limit is not None and len(mutations) >= limit:
                return mutations
    return mutations
