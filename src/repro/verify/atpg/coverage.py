"""Coverage metrics: statement, branch, condition, bit.

Static enumeration of coverable items (statements, branch outcomes,
atomic-condition outcomes) paired with the dynamic hits recorded by the
interpreter, plus the bit-coverage results from fault simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.swir.ast import BinOp, Expr, If, Program, UnOp, While
from repro.swir.engine import CompiledEngine
from repro.swir.interp import CoverageData, Interpreter, InterpError, _cond_key


@dataclass(frozen=True)
class CoverageTotals:
    """Static universe of coverable items for one program."""

    statements: frozenset[int]
    branches: frozenset[tuple[int, bool]]
    conditions: frozenset[tuple[int, bool]]


def _atomic_conditions(expr: Expr) -> list[Expr]:
    """Atomic conditions of a decision (leaves of the &&/||/! tree)."""
    if isinstance(expr, BinOp) and expr.op in ("&&", "||"):
        return _atomic_conditions(expr.left) + _atomic_conditions(expr.right)
    if isinstance(expr, UnOp) and expr.op == "!":
        return _atomic_conditions(expr.operand)
    return [expr]


def coverage_totals(program: Program) -> CoverageTotals:
    """Enumerate every statement, branch outcome and condition outcome."""
    statements = set()
    branches = set()
    conditions = set()
    for stmt in program.walk():
        statements.add(stmt.sid)
        if isinstance(stmt, (If, While)):
            branches.add((stmt.sid, True))
            branches.add((stmt.sid, False))
            for atom in _atomic_conditions(stmt.cond):
                key = _cond_key(atom)
                conditions.add((key, True))
                conditions.add((key, False))
    return CoverageTotals(
        frozenset(statements), frozenset(branches), frozenset(conditions)
    )


@dataclass
class CoverageReport:
    """Achieved coverage of a test set (the Laerte++ output table)."""

    totals: CoverageTotals
    hits: CoverageData = field(default_factory=CoverageData)
    bit_faults_total: int = 0
    bit_faults_detected: int = 0
    uninitialized_reads: list[str] = field(default_factory=list)
    vectors_used: int = 0

    def _ratio(self, hit: int, total: int) -> float:
        return hit / total if total else 1.0

    @property
    def statement_coverage(self) -> float:
        hit = len(self.hits.statements_hit & self.totals.statements)
        return self._ratio(hit, len(self.totals.statements))

    @property
    def branch_coverage(self) -> float:
        hit = len(self.hits.branches_hit & self.totals.branches)
        return self._ratio(hit, len(self.totals.branches))

    @property
    def condition_coverage(self) -> float:
        hit = len(self.hits.conditions_hit & self.totals.conditions)
        return self._ratio(hit, len(self.totals.conditions))

    @property
    def bit_coverage(self) -> float:
        return self._ratio(self.bit_faults_detected, self.bit_faults_total)

    def uncovered_branches(self) -> list[tuple[int, bool]]:
        return sorted(self.totals.branches - self.hits.branches_hit)

    def describe(self) -> str:
        return (
            f"coverage over {self.vectors_used} vectors: "
            f"statement {self.statement_coverage:.1%}, "
            f"branch {self.branch_coverage:.1%}, "
            f"condition {self.condition_coverage:.1%}, "
            f"bit {self.bit_coverage:.1%} "
            f"({self.bit_faults_detected}/{self.bit_faults_total} faults); "
            f"uninitialised reads: {len(self.uninitialized_reads)}"
        )


def measure_coverage(
    interpreter: Interpreter | CompiledEngine,
    vectors: list[list[int]],
    totals: Optional[CoverageTotals] = None,
) -> CoverageReport:
    """Run ``vectors`` and accumulate structural coverage."""
    totals = totals or coverage_totals(interpreter.program)
    report = CoverageReport(totals=totals, vectors_used=len(vectors))
    run_batch = getattr(interpreter, "run_batch", None)
    if run_batch is not None:
        # Batched engines stage the whole vector set through the one
        # compiled program; lanes come back in input order, so the
        # accumulation (and the first-error behaviour) is unchanged.
        for outcome in run_batch([list(v) for v in vectors]):
            if not outcome.ok:
                raise InterpError(outcome.error)
            report.hits.merge(outcome.result.coverage)
            report.uninitialized_reads.extend(
                outcome.result.uninitialized_reads)
        return report
    for vector in vectors:
        result = interpreter.run(list(vector))
        report.hits.merge(result.coverage)
        report.uninitialized_reads.extend(result.uninitialized_reads)
    return report
