"""Genetic test-vector generation (the simulation-based TPG phase).

A compact generational GA over input vectors: fitness is the marginal
coverage a vector adds over the accumulated test set (statements,
branches, conditions), so the population is pushed toward the uncovered
corners of the control flow.  Tournament selection, single-point
crossover, bounded Gaussian-ish mutation, elitism.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.swir.engine import CompiledEngine
from repro.swir.interp import CoverageData, Interpreter
from repro.verify.atpg.coverage import CoverageTotals, coverage_totals


@dataclass(frozen=True)
class GaConfig:
    """GA hyper-parameters; defaults sized for IR-level programs."""

    population: int = 24
    generations: int = 20
    tournament: int = 3
    crossover_rate: float = 0.8
    mutation_rate: float = 0.25
    elite: int = 2
    value_min: int = -256
    value_max: int = 256
    seed: int = 42

    def __post_init__(self) -> None:
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not 0 <= self.crossover_rate <= 1 or not 0 <= self.mutation_rate <= 1:
            raise ValueError("rates must be within [0, 1]")
        if self.value_min > self.value_max:
            raise ValueError("empty value range")


class GeneticGenerator:
    """Evolves input vectors maximising marginal structural coverage."""

    def __init__(self, interpreter: Interpreter | CompiledEngine, config: GaConfig = GaConfig()):
        self.interpreter = interpreter
        self.config = config
        self.totals: CoverageTotals = coverage_totals(interpreter.program)
        self.rng = random.Random(config.seed)
        self.accumulated = CoverageData()
        self.selected_vectors: list[list[int]] = []

    # -- genome helpers --------------------------------------------------------

    @property
    def genome_length(self) -> int:
        return len(self.interpreter.program.main.params)

    def random_vector(self) -> list[int]:
        cfg = self.config
        return [
            self.rng.randint(cfg.value_min, cfg.value_max)
            for __ in range(self.genome_length)
        ]

    def _mutate(self, vector: list[int]) -> list[int]:
        cfg = self.config
        out = list(vector)
        for i in range(len(out)):
            if self.rng.random() < cfg.mutation_rate:
                if self.rng.random() < 0.5:
                    out[i] += self.rng.randint(-8, 8)
                else:
                    out[i] = self.rng.randint(cfg.value_min, cfg.value_max)
                out[i] = max(cfg.value_min, min(cfg.value_max, out[i]))
        return out

    def _crossover(self, a: list[int], b: list[int]) -> list[int]:
        if len(a) < 2 or self.rng.random() > self.config.crossover_rate:
            return list(a)
        point = self.rng.randint(1, len(a) - 1)
        return a[:point] + b[point:]

    # -- fitness ------------------------------------------------------------------

    def _run_coverage(self, vector: list[int]) -> CoverageData:
        try:
            return self.interpreter.run(list(vector)).coverage
        except Exception:
            return CoverageData()  # crashing vectors score zero

    def _marginal_fitness(self, coverage: CoverageData) -> float:
        new_statements = coverage.statements_hit - self.accumulated.statements_hit
        new_branches = coverage.branches_hit - self.accumulated.branches_hit
        new_conditions = coverage.conditions_hit - self.accumulated.conditions_hit
        base = (
            3.0 * len(new_branches)
            + 1.0 * len(new_statements & self.totals.statements)
            + 2.0 * len(new_conditions & self.totals.conditions)
        )
        # Tie-breaker: overall touched items keep search moving on plateaus.
        return base + 0.01 * len(coverage.branches_hit)

    # -- main loop ----------------------------------------------------------------------

    def run(self) -> list[list[int]]:
        """Evolve; returns the selected (coverage-increasing) vectors."""
        if self.genome_length == 0:
            # Parameterless program: a single run is the whole test set.
            self.accumulated.merge(self._run_coverage([]))
            self.selected_vectors = [[]]
            return self.selected_vectors
        cfg = self.config
        population = [self.random_vector() for __ in range(cfg.population)]
        for __ in range(cfg.generations):
            scored = []
            for vector in population:
                coverage = self._run_coverage(vector)
                fitness = self._marginal_fitness(coverage)
                scored.append((fitness, vector, coverage))
            scored.sort(key=lambda item: -item[0])
            # Commit genuinely new coverage to the test set.
            for fitness, vector, coverage in scored:
                if fitness >= 1.0:
                    before = (
                        len(self.accumulated.statements_hit),
                        len(self.accumulated.branches_hit),
                        len(self.accumulated.conditions_hit),
                    )
                    self.accumulated.merge(coverage)
                    after = (
                        len(self.accumulated.statements_hit),
                        len(self.accumulated.branches_hit),
                        len(self.accumulated.conditions_hit),
                    )
                    if after != before:
                        self.selected_vectors.append(vector)
            if self._fully_covered():
                break
            # Next generation.
            elite = [vector for __, vector, __ in scored[: cfg.elite]]
            children = list(elite)
            while len(children) < cfg.population:
                parent_a = self._tournament(scored)
                parent_b = self._tournament(scored)
                children.append(self._mutate(self._crossover(parent_a, parent_b)))
            population = children
        return self.selected_vectors

    def _tournament(self, scored) -> list[int]:
        best = None
        for __ in range(self.config.tournament):
            fitness, vector, __cov = self.rng.choice(scored)
            if best is None or fitness > best[0]:
                best = (fitness, vector)
        return best[1]

    def _fully_covered(self) -> bool:
        return (
            self.totals.branches <= self.accumulated.branches_hit
            and self.totals.statements <= self.accumulated.statements_hit
            and self.totals.conditions <= self.accumulated.conditions_hit
        )
