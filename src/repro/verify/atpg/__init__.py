"""Laerte++: high-level ATPG for behavioural descriptions [5].

*"Functional verification is applied by using a SystemC-based ATPG
(Laerte++) to estimate the coverage of test benches.  The test pattern
generator exploits both simulation-based techniques (e.g., genetic
algorithms) and formal-based ones (e.g., SAT-solvers).  Coverage
measures are based on standard metrics (statement, condition and branch
coverage) and on the more accurate bit-coverage metric exploiting
high-level faults [6]."* (Section 3.1)

- :mod:`~repro.verify.atpg.faults` — the high-level bit fault model
  (stuck-at on each bit of each assignment's produced value) and fault
  simulation;
- :mod:`~repro.verify.atpg.coverage` — the four coverage metrics;
- :mod:`~repro.verify.atpg.genetic` — GA-based vector generation;
- :mod:`~repro.verify.atpg.sat_tpg` — SAT-based generation for
  hard-to-reach branches via symbolic path conditions;
- :mod:`~repro.verify.atpg.laerte` — the campaign driver combining all
  phases, including the memory-initialisation inspection used at level 1
  of the case study.
"""

from repro.verify.atpg.faults import BitFault, FaultSimResult, enumerate_faults, simulate_fault
from repro.verify.atpg.coverage import CoverageReport, CoverageTotals, measure_coverage
from repro.verify.atpg.genetic import GaConfig, GeneticGenerator
from repro.verify.atpg.sat_tpg import SatTpg, SatTpgError
from repro.verify.atpg.laerte import CampaignReport, Laerte

__all__ = [
    "BitFault",
    "FaultSimResult",
    "enumerate_faults",
    "simulate_fault",
    "CoverageReport",
    "CoverageTotals",
    "measure_coverage",
    "GaConfig",
    "GeneticGenerator",
    "SatTpg",
    "SatTpgError",
    "CampaignReport",
    "Laerte",
]
