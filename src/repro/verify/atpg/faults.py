"""High-level fault model: bit coverage [6].

A fault forces one bit of the value produced by one assignment (or FPGA
call result) to 0 or 1.  A test vector *detects* the fault when the
program's observable behaviour (returned value) differs from the
fault-free run.  Bit coverage — the fraction of detected faults — is the
paper's "more accurate" metric: unlike statement coverage it requires
error *propagation* to an output, not mere activation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.swir.ast import Assign, FpgaCall, Program
from repro.swir.engine import CompiledEngine
from repro.swir.interp import Fault, Interpreter, InterpError


@dataclass(frozen=True)
class BitFault:
    """One stuck-at fault site."""

    sid: int
    bit: int
    stuck: int
    description: str

    def to_runtime(self) -> Fault:
        return Fault(self.sid, self.bit, self.stuck)


@dataclass
class FaultSimResult:
    """Outcome of simulating one fault against a set of test vectors."""

    fault: BitFault
    detected: bool
    detecting_vector: Optional[list[int]] = None


def enumerate_faults(program: Program, bit_width: int = 8) -> list[BitFault]:
    """All stuck-at-0/1 faults on the low ``bit_width`` bits of each
    value-producing statement.

    ``bit_width`` bounds the fault list (the paper's tooling similarly
    works at the declared bit width of each signal; our IR variables are
    untyped 32-bit, so we default to the low byte where the case-study
    data lives).
    """
    faults: list[BitFault] = []
    for stmt in program.walk():
        target = None
        if isinstance(stmt, Assign):
            target = stmt.target
        elif isinstance(stmt, FpgaCall) and stmt.target is not None:
            target = stmt.target
        if target is None:
            continue
        for bit in range(bit_width):
            for stuck in (0, 1):
                faults.append(BitFault(
                    sid=stmt.sid,
                    bit=bit,
                    stuck=stuck,
                    description=f"{target}@sid{stmt.sid} bit{bit} stuck-at-{stuck}",
                ))
    return faults


def _golden_outputs(interpreter, vectors: list[list[int]]) -> list:
    """Fault-free outputs for every vector, batched when the engine
    supports lockstep execution (lanes return in input order, and a
    failing vector raises exactly where the serial loop would)."""
    run_batch = getattr(interpreter, "run_batch", None)
    if run_batch is None:
        return [interpreter.run(list(v)).returned for v in vectors]
    outputs = []
    for outcome in run_batch([list(v) for v in vectors]):
        if not outcome.ok:
            raise InterpError(outcome.error)
        outputs.append(outcome.result.returned)
    return outputs


def simulate_fault(
    interpreter: Interpreter | CompiledEngine,
    fault: BitFault,
    vectors: list[list[int]],
    golden: Optional[list[Optional[int]]] = None,
) -> FaultSimResult:
    """Run every vector against the faulty program until one detects it.

    ``golden`` caches the fault-free outputs (parallel to ``vectors``).
    """
    if golden is None:
        golden = _golden_outputs(interpreter, vectors)
    runtime = fault.to_runtime()
    for vector, expected in zip(vectors, golden):
        try:
            got = interpreter.run(list(vector), fault=runtime).returned
        except Exception:
            # A crash (e.g. faulted loop bound causing a step overflow) is
            # an observable difference: the fault is detected.
            return FaultSimResult(fault, True, list(vector))
        if got != expected:
            return FaultSimResult(fault, True, list(vector))
    return FaultSimResult(fault, False)


def fault_coverage(
    interpreter: Interpreter | CompiledEngine,
    faults: list[BitFault],
    vectors: list[list[int]],
) -> tuple[list[FaultSimResult], float]:
    """Simulate all faults; returns (results, coverage fraction)."""
    if not vectors:
        return [FaultSimResult(f, False) for f in faults], 0.0
    golden = _golden_outputs(interpreter, vectors)
    results = [simulate_fault(interpreter, f, vectors, golden) for f in faults]
    detected = sum(1 for r in results if r.detected)
    return results, detected / len(faults) if faults else 1.0
