"""The Laerte++ campaign driver.

Phases, mirroring the tool's architecture [5]:

1. **Random** seeding: cheap vectors establish baseline coverage;
2. **Genetic**: the GA pushes into uncovered control flow
   (simulation-based techniques);
3. **SAT**: remaining uncovered branches are attacked formally with
   symbolic path conditions (formal-based techniques);
4. **Fault simulation**: the accumulated test set is graded with the
   bit-coverage fault model;
5. **Memory inspection**: uninitialised reads observed across the runs
   are reported — the defect class that, in the paper's case study,
   "reflected on a less precise images matching".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.swir.ast import Program
from repro.swir.engine import DEFAULT_ENGINE, EngineSpec, create_engine
from repro.verify.atpg.coverage import (
    CoverageReport,
    coverage_totals,
    measure_coverage,
)
from repro.verify.atpg.faults import enumerate_faults, fault_coverage
from repro.verify.atpg.genetic import GaConfig, GeneticGenerator
from repro.verify.atpg.sat_tpg import SatTpg


@dataclass
class CampaignReport:
    """Full outcome of one ATPG campaign."""

    coverage: CoverageReport
    vectors: list[list[int]] = field(default_factory=list)
    random_vectors: int = 0
    ga_vectors: int = 0
    sat_vectors: int = 0
    sat_unreached_branches: list[tuple[int, bool]] = field(default_factory=list)
    undetected_faults: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            "Laerte++ campaign report",
            f"  vectors: {len(self.vectors)} "
            f"(random {self.random_vectors}, GA {self.ga_vectors}, "
            f"SAT {self.sat_vectors})",
            f"  {self.coverage.describe()}",
        ]
        if self.sat_unreached_branches:
            lines.append(
                f"  branches no phase could reach: {self.sat_unreached_branches} "
                "(candidate dead code)"
            )
        if self.undetected_faults:
            lines.append(f"  undetected faults: {len(self.undetected_faults)}")
        if self.coverage.uninitialized_reads:
            unique = sorted(set(self.coverage.uninitialized_reads))
            lines.append(f"  memory inspection: uninitialised reads of {unique}")
        return "\n".join(lines)


class Laerte:
    """High-level test pattern generator for IR programs."""

    def __init__(
        self,
        program: Program,
        externals: Optional[dict] = None,
        ga_config: GaConfig = GaConfig(),
        random_vectors: int = 16,
        fault_bit_width: int = 8,
        sat_width: int = 16,
        seed: int = 7,
        engine: "str | EngineSpec" = DEFAULT_ENGINE,
    ):
        self.program = program
        self.engine = engine
        #: the execution engine every campaign phase simulates through —
        #: the hot loop of the whole campaign (GA fitness + fault grading)
        self.interpreter = create_engine(program, engine=engine,
                                         externals=externals)
        self.ga_config = ga_config
        self.random_vectors = random_vectors
        self.fault_bit_width = fault_bit_width
        self.sat_width = sat_width
        self.rng = random.Random(seed)
        self.totals = coverage_totals(program)

    def _random_phase(self) -> list[list[int]]:
        n_params = len(self.program.main.params)
        cfg = self.ga_config
        return [
            [self.rng.randint(cfg.value_min, cfg.value_max) for __ in range(n_params)]
            for __ in range(self.random_vectors)
        ]

    def run(self) -> CampaignReport:
        """Run all phases; returns the campaign report."""
        vectors: list[list[int]] = []
        # Phase 1: random.
        random_set = self._random_phase()
        vectors.extend(random_set)
        # Phase 2: genetic.
        ga = GeneticGenerator(self.interpreter, self.ga_config)
        ga_set = ga.run()
        vectors.extend(ga_set)
        report = measure_coverage(self.interpreter, vectors, self.totals)
        # Phase 3: SAT for remaining branches.
        sat_set: list[list[int]] = []
        unreached: list[tuple[int, bool]] = []
        uncovered = report.uncovered_branches()
        if uncovered:
            tpg = SatTpg(self.program, width=self.sat_width,
                         engine=self.engine)
            for sid, outcome in uncovered:
                vector = tpg.generate_for_branch(sid, outcome)
                if vector is not None:
                    sat_set.append(vector)
                else:
                    unreached.append((sid, outcome))
            vectors.extend(sat_set)
            report = measure_coverage(self.interpreter, vectors, self.totals)
        # Phase 4: fault simulation (bit coverage).
        faults = enumerate_faults(self.program, self.fault_bit_width)
        results, __ = fault_coverage(self.interpreter, faults, vectors)
        report.bit_faults_total = len(faults)
        report.bit_faults_detected = sum(1 for r in results if r.detected)
        undetected = [r.fault.description for r in results if not r.detected]
        return CampaignReport(
            coverage=report,
            vectors=vectors,
            random_vectors=len(random_set),
            ga_vectors=len(ga_set),
            sat_vectors=len(sat_set),
            sat_unreached_branches=unreached,
            undetected_faults=undetected,
        )
