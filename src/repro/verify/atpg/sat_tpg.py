"""SAT-based test generation (the formal TPG phase).

For branches the genetic phase leaves uncovered, a bounded symbolic
executor enumerates acyclic paths (loops unrolled a few times) building
path conditions over the program's inputs; the condition for the desired
branch outcome is conjoined, bit-blasted to CNF and handed to the CDCL
solver.  Every produced vector is validated by concrete re-execution
(concolic style), so width-truncation artefacts of the encoding can
never yield a false "covered".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.swir.ast import (
    Assign,
    BinOp,
    Call,
    Const,
    Expr,
    FpgaCall,
    If,
    Program,
    Reconfigure,
    Return,
    Stmt,
    UnOp,
    Var,
    While,
)
from repro.swir.engine import DEFAULT_ENGINE, EngineSpec, create_engine
from repro.verify.cnf import BitVector, Cnf
from repro.verify.sat import SatResult, SatSolver


class SatTpgError(RuntimeError):
    """Raised on configuration errors (not on 'no vector found')."""


class _PathAbort(Exception):
    """Internal: this path uses constructs outside the encodable subset."""


@dataclass
class _Goal:
    sid: int
    outcome: bool
    found: Optional[list[tuple[Expr, bool]]] = None  # path condition


class SatTpg:
    """Generates a vector driving one branch (sid) to one outcome."""

    def __init__(
        self,
        program: Program,
        width: int = 16,
        max_paths: int = 400,
        max_loop_unroll: int = 8,
        max_expr_nodes: int = 4_000,
        max_conflicts: int = 200_000,
        engine: "str | EngineSpec" = DEFAULT_ENGINE,
    ):
        if width < 2:
            raise SatTpgError("width must be >= 2")
        self.program = program
        self.width = width
        self.max_paths = max_paths
        self.max_loop_unroll = max_loop_unroll
        self.max_expr_nodes = max_expr_nodes
        self.max_conflicts = max_conflicts
        self.params = list(program.main.params)
        #: concolic-validation executor (compiled once, reused per vector)
        self._validator = create_engine(program, engine=engine)

    # -- public -------------------------------------------------------------------

    def generate_for_branch(self, sid: int, outcome: bool) -> Optional[list[int]]:
        """A validated input vector reaching branch ``sid`` with ``outcome``.

        Returns None when no path within the exploration bounds has a
        satisfiable condition.
        """
        goal = _Goal(sid, outcome)
        paths_left = [self.max_paths]
        env = {p: Var(p) for p in self.params}
        candidates: list[list[tuple[Expr, bool]]] = []
        try:
            self._explore(self.program.main.body, env, [], goal, candidates,
                          paths_left)
        except _PathAbort:  # pragma: no cover - top level never aborts
            pass
        for path_condition in candidates:
            vector = self._solve(path_condition)
            if vector is not None and self._validate(vector, sid, outcome):
                return vector
        return None

    # -- symbolic execution ----------------------------------------------------------

    def _explore(self, stmts: list[Stmt], env: dict[str, Expr],
                 pc: list[tuple[Expr, bool]], goal: _Goal,
                 out: list[list[tuple[Expr, bool]]], budget: list[int]) -> None:
        """DFS over paths; collects path conditions that hit the goal."""
        if budget[0] <= 0:
            return
        env = dict(env)
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, Assign):
                try:
                    env[stmt.target] = self._subst(stmt.expr, env)
                except _PathAbort:
                    return
            elif isinstance(stmt, (FpgaCall, Reconfigure)):
                if isinstance(stmt, FpgaCall) and stmt.target is not None:
                    return  # opaque result: cannot continue symbolically
            elif isinstance(stmt, Return):
                return
            elif isinstance(stmt, If):
                try:
                    cond = self._subst(stmt.cond, env)
                except _PathAbort:
                    return
                rest = stmts[index + 1:]
                if stmt.sid == goal.sid:
                    out.append(pc + [(cond, goal.outcome)])
                    budget[0] -= 1
                for branch_taken, body in ((True, stmt.then_body),
                                           (False, stmt.else_body)):
                    budget[0] -= 1
                    self._explore(body + rest, env,
                                  pc + [(cond, branch_taken)], goal, out, budget)
                return
            elif isinstance(stmt, While):
                rest = stmts[index + 1:]
                self._explore_loop(stmt, rest, env, pc, goal, out, budget)
                return
        # fall off the block end: nothing more on this path

    def _explore_loop(self, loop: While, rest: list[Stmt], env: dict[str, Expr],
                      pc: list[tuple[Expr, bool]], goal: _Goal,
                      out: list[list[tuple[Expr, bool]]], budget: list[int]) -> None:
        """Unroll ``loop`` 0..max times, then continue with ``rest``."""
        current_env = dict(env)
        current_pc = list(pc)
        for iteration in range(self.max_loop_unroll + 1):
            if budget[0] <= 0:
                return
            try:
                cond = self._subst(loop.cond, current_env)
            except _PathAbort:
                return
            if loop.sid == goal.sid:
                out.append(current_pc + [(cond, goal.outcome)])
                budget[0] -= 1
            # Exit now (condition false) and continue after the loop.
            budget[0] -= 1
            self._explore(rest, current_env, current_pc + [(cond, False)],
                          goal, out, budget)
            if iteration == self.max_loop_unroll:
                return
            # Take one more iteration (condition true): inline the body by
            # symbolically executing its linear prefix; inner branching
            # inside loop bodies re-enters _explore with the loop re-queued.
            current_pc = current_pc + [(cond, True)]
            body_env = self._run_linear(loop.body, current_env)
            if body_env is None:
                # Body branches internally: handle by re-queuing loop after
                # the branch (bounded by budget).
                requeue = loop.body + [loop] + rest
                self._explore(requeue, current_env, current_pc, goal, out, budget)
                return
            current_env = body_env

    def _run_linear(self, stmts: list[Stmt],
                    env: dict[str, Expr]) -> Optional[dict[str, Expr]]:
        """Symbolically run a straight-line block; None if it branches."""
        env = dict(env)
        for stmt in stmts:
            if isinstance(stmt, Assign):
                try:
                    env[stmt.target] = self._subst(stmt.expr, env)
                except _PathAbort:
                    return None
            elif isinstance(stmt, Reconfigure):
                continue
            else:
                return None
        return env

    def _subst(self, expr: Expr, env: dict[str, Expr]) -> Expr:
        """Substitute symbolic variable values into ``expr``."""
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, Var):
            if expr.name not in env:
                return Const(0)  # uninitialised: modelled as 0 (matches interp)
            return env[expr.name]
        if isinstance(expr, BinOp):
            left = self._subst(expr.left, env)
            right = self._subst(expr.right, env)
            result = BinOp(expr.op, left, right)
            if self._size(result) > self.max_expr_nodes:
                raise _PathAbort()
            return result
        if isinstance(expr, UnOp):
            return UnOp(expr.op, self._subst(expr.operand, env))
        if isinstance(expr, Call):
            raise _PathAbort()  # opaque call: path not encodable
        raise _PathAbort()

    @staticmethod
    def _size(expr: Expr) -> int:
        if isinstance(expr, BinOp):
            return 1 + SatTpg._size(expr.left) + SatTpg._size(expr.right)
        if isinstance(expr, UnOp):
            return 1 + SatTpg._size(expr.operand)
        return 1

    # -- CNF encoding -------------------------------------------------------------------

    def _solve(self, path_condition: list[tuple[Expr, bool]]) -> Optional[list[int]]:
        # Attached mode: clauses stream straight into the solver as the
        # path condition is encoded, instead of being buffered and
        # re-added at solve time.
        cnf = Cnf(solver=SatSolver(max_conflicts=self.max_conflicts))
        param_vecs = {
            p: BitVector.fresh(cnf, self.width) for p in self.params
        }
        try:
            for expr, wanted in path_condition:
                lit = self._encode_bool(expr, param_vecs, cnf)
                cnf.assert_lit(lit if wanted else -lit)
        except _PathAbort:
            return None
        result, model = cnf.solve(max_conflicts=self.max_conflicts)
        if result is not SatResult.SAT:
            return None
        return [param_vecs[p].value_in(model) for p in self.params]

    def _encode_bool(self, expr: Expr, params: dict[str, BitVector],
                     cnf: Cnf) -> int:
        if isinstance(expr, BinOp) and expr.op in ("&&", "||"):
            left = self._encode_bool(expr.left, params, cnf)
            right = self._encode_bool(expr.right, params, cnf)
            gate = cnf.gate_and if expr.op == "&&" else cnf.gate_or
            return gate(left, right)
        if isinstance(expr, UnOp) and expr.op == "!":
            return -self._encode_bool(expr.operand, params, cnf)
        if isinstance(expr, BinOp) and expr.op in ("==", "!=", "<", "<=", ">", ">="):
            left = self._encode_vec(expr.left, params, cnf)
            right = self._encode_vec(expr.right, params, cnf)
            if expr.op == "==":
                return left.eq(right)
            if expr.op == "!=":
                return left.ne(right)
            if expr.op == "<":
                return left.lt_signed(right)
            if expr.op == "<=":
                return left.le_signed(right)
            if expr.op == ">":
                return right.lt_signed(left)
            return right.le_signed(left)
        # Numeric used as boolean: nonzero test.
        return self._encode_vec(expr, params, cnf).is_nonzero()

    def _encode_vec(self, expr: Expr, params: dict[str, BitVector],
                    cnf: Cnf) -> BitVector:
        if isinstance(expr, Const):
            return BitVector.constant(cnf, expr.value, self.width)
        if isinstance(expr, Var):
            if expr.name not in params:
                return BitVector.constant(cnf, 0, self.width)
            return params[expr.name]
        if isinstance(expr, UnOp):
            operand = self._encode_vec(expr.operand, params, cnf)
            if expr.op == "-":
                return operand.negate()
            if expr.op == "~":
                return operand.bit_not()
            # "!": 0/1 vector
            bit = operand.is_zero()
            return BitVector(cnf, [bit] + [cnf.false_lit] * (self.width - 1))
        if isinstance(expr, BinOp):
            op = expr.op
            if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                bit = self._encode_bool(expr, params, cnf)
                return BitVector(cnf, [bit] + [cnf.false_lit] * (self.width - 1))
            left = self._encode_vec(expr.left, params, cnf)
            if op in ("<<", ">>"):
                if not isinstance(expr.right, Const):
                    raise _PathAbort()
                if op == "<<":
                    return left.shift_left_const(expr.right.value)
                return left.shift_right_const(expr.right.value, arithmetic=True)
            right = self._encode_vec(expr.right, params, cnf)
            if op == "+":
                return left.add(right)
            if op == "-":
                return left.sub(right)
            if op == "*":
                return left.mul(right)
            if op == "&":
                return left.bit_and(right)
            if op == "|":
                return left.bit_or(right)
            if op == "^":
                return left.bit_xor(right)
            raise _PathAbort()  # division/modulo: not encoded
        raise _PathAbort()

    # -- concolic validation ---------------------------------------------------------------

    def _validate(self, vector: list[int], sid: int, outcome: bool) -> bool:
        try:
            result = self._validator.run(list(vector))
        except Exception:
            return False
        return (sid, outcome) in result.coverage.branches_hit
