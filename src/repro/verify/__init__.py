"""Formal and semi-formal verification suite.

The paper applies four techniques "in a cascade fashion ... at different
design levels" (Section 2):

- **ATPG** (:mod:`~repro.verify.atpg`, the Laerte++ reproduction) —
  simulation-based (genetic) + formal (SAT) test generation against
  statement/branch/condition/bit coverage, at level 1;
- **LPV** (:mod:`~repro.verify.lpv`) — linear-programming verification
  of deadlock freeness (level 1) and real-time properties (level 2);
- **SymbC** (:mod:`~repro.verify.symbc`) — abstract interpretation
  proving reconfiguration consistency of the instrumented SW (level 3);
- **Model checking + PCC** (:mod:`~repro.verify.mc`,
  :mod:`~repro.verify.pcc`) — property checking of the RTL and property
  coverage evaluation (level 4).

The shared substrate lives here: a CDCL SAT solver
(:mod:`~repro.verify.sat`) and Tseitin/bit-vector CNF construction
(:mod:`~repro.verify.cnf`).
"""

from repro.verify.sat import SatResult, SatSolver, solve
from repro.verify.cnf import Cnf, BitVector

__all__ = ["SatResult", "SatSolver", "solve", "Cnf", "BitVector"]
