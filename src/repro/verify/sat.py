"""CDCL SAT solver.

The formal engines of the paper's cascade (SAT-based ATPG, bounded model
checking) need a SAT oracle; RuleBase-era industrial tools embedded
Chaff-class solvers.  This is a compact conflict-driven solver with the
standard ingredients: two-watched-literal propagation, first-UIP clause
learning, activity-based (VSIDS-style) branching with decay, and
geometric restarts.

Variables are positive integers; literals are signed integers
(``-v`` = negated ``v``).  Clauses are lists of literals.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Optional


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0


class SatSolver:
    """One-shot CDCL solver: add clauses, call :meth:`solve`."""

    def __init__(self, max_conflicts: int = 2_000_000):
        self.max_conflicts = max_conflicts
        self.clauses: list[list[int]] = []
        self.num_vars = 0
        self.stats = SatStats()
        # Internal solving state (built in solve()):
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[list[int]]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        #: lazy VSIDS order heap of (-activity, var); may hold stale
        #: entries for assigned vars, skipped at pick time.  Every
        #: unassigned var always has an entry carrying its current
        #: activity, so picks are O(log n) instead of a full var scan
        #: while reproducing the original order exactly (max activity,
        #: lowest var on ties).
        self._order: list[tuple[float, int]] = []

    # -- construction ----------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(int(l) for l in literals), key=abs)
        if not clause:
            # Empty clause: formula trivially UNSAT; encode as two units.
            self.clauses.append([])
            return
        if any(l == 0 for l in clause):
            raise ValueError("literal 0 is not allowed")
        if any(-l in clause for l in clause):
            return  # tautology
        self.num_vars = max(self.num_vars, max(abs(l) for l in clause))
        self.clauses.append(clause)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    # -- literal state helpers ----------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self._assign:
            return None
        value = self._assign[var]
        return value if lit > 0 else not value

    def _watch(self, lit: int, clause: list[int]) -> None:
        self._watches.setdefault(lit, []).append(clause)

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> None:
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    # -- propagation -------------------------------------------------------------------

    def _propagate(self, head: int) -> tuple[Optional[list[int]], int]:
        """Unit propagation from trail index ``head``; returns (conflict, head)."""
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            false_lit = -lit
            watchlist = self._watches.get(false_lit, [])
            index = 0
            while index < len(watchlist):
                clause = watchlist[index]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) is True:
                    index += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) is not False:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], clause)
                        watchlist[index] = watchlist[-1]
                        watchlist.pop()
                        moved = True
                        break
                if moved:
                    continue
                # No replacement: clause is unit or conflicting.
                if self._value(first) is False:
                    return clause, head  # conflict
                self._enqueue(first, clause)
                self.stats.propagations += 1
                index += 1
        return None, head

    # -- conflict analysis ------------------------------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        current_level = len(self._trail_lim)
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit_iter = list(conflict)
        trail_index = len(self._trail) - 1
        asserting: Optional[int] = None

        while True:
            for lit in lit_iter:
                var = abs(lit)
                if var in seen:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                elif self._level[var] > 0:
                    learned.append(lit)
            # Walk the trail backwards to the next seen literal.
            while trail_index >= 0 and abs(self._trail[trail_index]) not in seen:
                trail_index -= 1
            if trail_index < 0:
                break
            pivot = self._trail[trail_index]
            trail_index -= 1
            counter -= 1
            if counter == 0:
                asserting = -pivot
                break
            reason = self._reason[abs(pivot)]
            lit_iter = [l for l in (reason or []) if l != pivot]

        if asserting is not None:
            learned.insert(0, asserting)
        if len(learned) <= 1:
            return learned, 0
        levels = sorted((self._level[abs(l)] for l in learned[1:]), reverse=True)
        return learned, levels[0]

    def _bump(self, var: int) -> None:
        activity = self._activity.get(var, 0.0) + self._var_inc
        self._activity[var] = activity
        if var not in self._assign:
            heapq.heappush(self._order, (-activity, var))

    def _decay(self) -> None:
        self._var_inc /= 0.95
        if self._var_inc > 1e100:
            for var in self._activity:
                self._activity[var] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_order()  # every heap key just went stale

    def _rebuild_order(self) -> None:
        activity = self._activity
        assign = self._assign
        self._order = [(-activity.get(var, 0.0), var)
                       for var in range(1, self.num_vars + 1)
                       if var not in assign]
        heapq.heapify(self._order)

    def _backjump(self, level: int) -> None:
        order = self._order
        activity = self._activity
        while self._trail_lim and len(self._trail_lim) > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                lit = self._trail.pop()
                var = abs(lit)
                del self._assign[var]
                del self._level[var]
                del self._reason[var]
                heapq.heappush(order, (-activity.get(var, 0.0), var))

    def _pick_branch(self) -> Optional[int]:
        order = self._order
        assign = self._assign
        while order:
            __, var = heapq.heappop(order)
            if var not in assign:
                # negative polarity first: good for ATPG encodings
                return -var
        return None

    # -- main loop -----------------------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = ()) -> SatResult:
        """Solve the current clause set; model available via :meth:`model`."""
        if any(not c for c in self.clauses):
            return SatResult.UNSAT
        self._assign.clear()
        self._level.clear()
        self._reason.clear()
        self._trail.clear()
        self._trail_lim.clear()
        self._watches.clear()

        for clause in self.clauses:
            if len(clause) == 1:
                if self._value(clause[0]) is False:
                    return SatResult.UNSAT
                if self._value(clause[0]) is None:
                    self._enqueue(clause[0], None)
            else:
                self._watch(clause[0], clause)
                self._watch(clause[1], clause)
        for lit in assumptions:
            if self._value(lit) is False:
                return SatResult.UNSAT
            if self._value(lit) is None:
                self._enqueue(lit, None)

        head = 0
        conflict, head = self._propagate(head)
        if conflict is not None:
            return SatResult.UNSAT
        self._rebuild_order()

        restart_limit = 100
        conflicts_since_restart = 0
        while True:
            decision = self._pick_branch()
            if decision is None:
                return SatResult.SAT
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)
            while True:
                conflict, head = self._propagate(head)
                if conflict is None:
                    break
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self.stats.conflicts > self.max_conflicts:
                    return SatResult.UNKNOWN
                if not self._trail_lim:
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                self._backjump(back_level)
                head = len(self._trail)
                self._decay()
                if not learned:
                    return SatResult.UNSAT
                if len(learned) == 1:
                    if self._value(learned[0]) is False:
                        return SatResult.UNSAT
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    self.clauses.append(learned)
                    self.stats.learned += 1
                    self._watch(learned[0], learned)
                    self._watch(learned[1], learned)
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], learned)
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self.stats.restarts += 1
                    self._backjump(0)
                    head = len(self._trail)
                    break

    def model(self) -> dict[int, bool]:
        """Satisfying assignment after a SAT answer (unassigned -> False)."""
        return {v: self._assign.get(v, False) for v in range(1, self.num_vars + 1)}


def solve(clauses: Iterable[Iterable[int]],
          max_conflicts: int = 2_000_000) -> tuple[SatResult, dict[int, bool]]:
    """Convenience one-shot solve; returns (result, model)."""
    solver = SatSolver(max_conflicts=max_conflicts)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    return result, (solver.model() if result is SatResult.SAT else {})
