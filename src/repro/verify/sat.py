"""CDCL SAT solver with incremental, assumption-based solving.

The formal engines of the paper's cascade (SAT-based ATPG, bounded model
checking) need a SAT oracle; RuleBase-era industrial tools embedded
Chaff-class solvers.  This is a compact conflict-driven solver with the
standard ingredients: two-watched-literal propagation, first-UIP clause
learning, activity-based (VSIDS-style) branching with decay, and
geometric restarts.

Variables are positive integers; literals are signed integers
(``-v`` = negated ``v``).  Clauses are lists of literals.

Solver reuse semantics
----------------------
A :class:`SatSolver` is incremental: it may be reused across
:meth:`solve` calls, and clauses may be added between calls.

* **Persists across calls:** the clause database -- including clauses
  learned in earlier calls; conflict analysis only ever drops literals
  forced at decision level 0, so a learned clause never bakes in an
  assumption -- plus level-0 facts (unit clauses and literals derived
  from them), watcher lists (registered once, at :meth:`add_clause`
  time), variable activities, and the lifetime counters in
  :attr:`cumulative`.
* **Resets per call:** :attr:`stats` (a fresh :class:`SatStats` per
  call, so a reused solver cannot exhaust ``max_conflicts`` with a
  previous call's conflicts), the conflict budget itself (overridable
  per call via ``solve(max_conflicts=...)``), the restart schedule, and
  every assignment above level 0 -- in particular assumptions, which
  hold only for the duration of the call that passed them.

Assumptions are established MiniSat-style as decisions at their own
levels, never as level-0 facts, so an UNSAT-under-assumptions answer
does not poison later calls.  To make a clause group retractable (e.g.
one mutant's logic cone), allocate an activation literal
``act = solver.new_var()``, add each clause as ``[-act] + clause``, and
pass ``act`` among the assumptions to enable the group; adding the
permanent unit ``[-act]`` retires it for good.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.telemetry import metrics as _metrics

# Published once per solve() call, from its finally — the same place
# the per-call stats fold into the lifetime counters.
_SOLVES = _metrics.counter("repro_sat_solves_total", "SAT solve() calls")
_DECISIONS = _metrics.counter("repro_sat_decisions_total",
                              "SAT branching decisions")
_PROPAGATIONS = _metrics.counter("repro_sat_propagations_total",
                                 "SAT unit propagations")
_CONFLICTS = _metrics.counter("repro_sat_conflicts_total", "SAT conflicts")
_LEARNED = _metrics.counter("repro_sat_learned_total",
                            "SAT learned clauses")
_RESTARTS = _metrics.counter("repro_sat_restarts_total", "SAT restarts")


class SatResult(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SatStats:
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0

    def accumulate(self, other: "SatStats") -> None:
        self.decisions += other.decisions
        self.propagations += other.propagations
        self.conflicts += other.conflicts
        self.restarts += other.restarts
        self.learned += other.learned


class SatSolver:
    """Incremental CDCL solver: add clauses, call :meth:`solve` repeatedly."""

    def __init__(self, max_conflicts: int = 2_000_000):
        self.max_conflicts = max_conflicts
        self.clauses: list[list[int]] = []
        self.num_vars = 0
        #: per-call counters; replaced with a fresh SatStats on every solve().
        self.stats = SatStats()
        #: lifetime totals across every solve() on this instance.
        self.cumulative = SatStats()
        # Internal solving state:
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, Optional[list[int]]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._watches: dict[int, list[list[int]]] = {}
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        #: lazy VSIDS order heap of (-activity, var); may hold stale
        #: entries for assigned vars, skipped at pick time.  Every
        #: unassigned var always has an entry carrying its current
        #: activity, so picks are O(log n) instead of a full var scan
        #: while reproducing the original order exactly (max activity,
        #: lowest var on ties).
        self._order: list[tuple[float, int]] = []
        #: order-heap bookkeeping: built yet? / highest var with an entry.
        self._order_built = False
        self._order_vars = 0
        #: unit literals awaiting their level-0 enqueue at the next solve().
        self._pending: list[int] = []
        #: persistent propagation head into _trail.
        self._qhead = 0
        #: an explicitly empty clause was added: trivially UNSAT forever.
        self._has_empty = False
        #: a contradiction was derived at level 0: UNSAT forever.
        self._unsat = False

    # -- construction ----------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(map(int, literals)), key=abs)
        if not clause:
            self.clauses.append([])
            self._has_empty = True
            return
        if clause[0] == 0:  # abs-sort puts 0 first
            raise ValueError("literal 0 is not allowed")
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:  # v/-v sit adjacent when sorted
                return  # tautology
        top = clause[-1]
        if top < 0:
            top = -top
        if top > self.num_vars:
            self.num_vars = top
        self.clauses.append(clause)
        if self._trail_lim:
            self._cancel_until(0)
        if len(clause) == 1:
            self._pending.append(clause[0])
            return
        assign = self._assign
        if assign:
            # Level-0 facts exist (a previous solve() ran): watches must
            # sit on non-false literals, or the clause could become unit
            # or conflicting without its watches ever being revisited.
            open_lits = []
            falsified = False
            for l in clause:
                v = assign.get(l if l > 0 else -l)
                if v is None:
                    open_lits.append(l)
                elif v is (l > 0):
                    return  # satisfied by a level-0 fact: never constrains
                else:
                    falsified = True
            if falsified:
                if not open_lits:
                    self._unsat = True
                    return
                if len(open_lits) == 1:
                    self._pending.append(open_lits[0])
                    return
                for slot in (0, 1):
                    where = clause.index(open_lits[slot])
                    clause[slot], clause[where] = clause[where], clause[slot]
        self._watch(clause[0], clause)
        self._watch(clause[1], clause)

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    # -- literal state helpers ----------------------------------------------------

    def _value(self, lit: int) -> Optional[bool]:
        var = abs(lit)
        if var not in self._assign:
            return None
        value = self._assign[var]
        return value if lit > 0 else not value

    def _watch(self, lit: int, clause: list[int]) -> None:
        self._watches.setdefault(lit, []).append(clause)

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> None:
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    # -- propagation -------------------------------------------------------------------

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation from the persistent head; returns a conflict or None.

        The literal-value tests are inlined (no :meth:`_value` calls):
        ``assign.get(var) is (lit > 0)`` reads "lit is assigned True" --
        this is by far the hottest loop in the solver.
        """
        assign = self._assign
        trail = self._trail
        watches = self._watches
        levels = self._level
        reasons = self._reason
        stats = self.stats
        head = self._qhead
        while head < len(trail):
            lit = trail[head]
            head += 1
            false_lit = -lit
            watchlist = watches.get(false_lit)
            if not watchlist:
                continue
            index = 0
            while index < len(watchlist):
                clause = watchlist[index]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fval = assign.get(first if first > 0 else -first)
                if fval is (first > 0):
                    index += 1
                    continue
                # Look for a replacement watch.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = assign.get(other if other > 0 else -other)
                    if oval is None or oval is (other > 0):
                        clause[1], clause[k] = other, clause[1]
                        watches.setdefault(other, []).append(clause)
                        watchlist[index] = watchlist[-1]
                        watchlist.pop()
                        moved = True
                        break
                if moved:
                    continue
                # No replacement: clause is unit or conflicting.
                if fval is not None:  # first is assigned False
                    self._qhead = head
                    return clause  # conflict
                var = first if first > 0 else -first
                assign[var] = first > 0
                levels[var] = len(self._trail_lim)
                reasons[var] = clause
                trail.append(first)
                stats.propagations += 1
                index += 1
        self._qhead = head
        return None

    # -- conflict analysis ------------------------------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        current_level = len(self._trail_lim)
        learned: list[int] = []
        seen: set[int] = set()
        counter = 0
        lit_iter = list(conflict)
        trail_index = len(self._trail) - 1
        asserting: Optional[int] = None

        while True:
            for lit in lit_iter:
                var = abs(lit)
                if var in seen:
                    continue
                seen.add(var)
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                elif self._level[var] > 0:
                    learned.append(lit)
            # Walk the trail backwards to the next seen literal.
            while trail_index >= 0 and abs(self._trail[trail_index]) not in seen:
                trail_index -= 1
            if trail_index < 0:
                break
            pivot = self._trail[trail_index]
            trail_index -= 1
            counter -= 1
            if counter == 0:
                asserting = -pivot
                break
            reason = self._reason[abs(pivot)]
            lit_iter = [l for l in (reason or []) if l != pivot]

        if asserting is not None:
            learned.insert(0, asserting)
        if len(learned) <= 1:
            return learned, 0
        levels = sorted((self._level[abs(l)] for l in learned[1:]), reverse=True)
        return learned, levels[0]

    def _bump(self, var: int) -> None:
        activity = self._activity.get(var, 0.0) + self._var_inc
        self._activity[var] = activity
        if var not in self._assign:
            heapq.heappush(self._order, (-activity, var))

    def _decay(self) -> None:
        self._var_inc /= 0.95
        if self._var_inc > 1e100:
            for var in self._activity:
                self._activity[var] *= 1e-100
            self._var_inc *= 1e-100
            self._rebuild_order()  # every heap key just went stale

    def _rebuild_order(self) -> None:
        activity = self._activity
        assign = self._assign
        self._order = [(-activity.get(var, 0.0), var)
                       for var in range(1, self.num_vars + 1)
                       if var not in assign]
        heapq.heapify(self._order)
        self._order_built = True
        self._order_vars = self.num_vars

    def _sync_order(self) -> None:
        """Bring the order heap up to date at the start of a solve.

        The first solve builds it from scratch (exactly the original
        fresh-solver behaviour); later solves only add entries for vars
        created since -- :meth:`_bump` and :meth:`_backjump` already
        keep existing unassigned vars' entries current in between.
        """
        if not self._order_built:
            self._rebuild_order()
            return
        if self._order_vars >= self.num_vars:
            return
        activity = self._activity
        assign = self._assign
        entries = [(-activity.get(var, 0.0), var)
                   for var in range(self._order_vars + 1, self.num_vars + 1)
                   if var not in assign]
        self._order_vars = self.num_vars
        order = self._order
        if len(entries) > 4096:
            if len(order) + len(entries) > 2 * (self.num_vars - len(assign)):
                self._rebuild_order()
            else:
                order.extend(entries)
                heapq.heapify(order)
        else:
            for entry in entries:
                heapq.heappush(order, entry)

    def _backjump(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        order = self._order
        activity = self._activity
        assign = self._assign
        levels = self._level
        reasons = self._reason
        trail = self._trail
        mark = self._trail_lim[level]
        del self._trail_lim[level:]
        tail = trail[mark:]
        del trail[mark:]
        entries = []
        for lit in tail:
            var = lit if lit > 0 else -lit
            del assign[var]
            del levels[var]
            del reasons[var]
            entries.append((-activity.get(var, 0.0), var))
        if len(entries) > 4096:
            # A heap's pop sequence is the sorted order of its multiset,
            # so one O(n) heapify replaces n O(log n) pushes unobserved.
            if len(order) + len(entries) > 2 * (self.num_vars - len(assign)):
                # Mostly stale entries: compact instead.  Activities only
                # grow, so dropping superseded entries cannot change
                # which entry for a var surfaces first.
                self._rebuild_order()
            else:
                order.extend(entries)
                heapq.heapify(order)
        else:
            for entry in entries:
                heapq.heappush(order, entry)

    def _cancel_until(self, level: int) -> None:
        self._backjump(level)
        if self._qhead > len(self._trail):
            self._qhead = len(self._trail)

    def _pick_branch(self) -> Optional[int]:
        order = self._order
        assign = self._assign
        while order:
            __, var = heapq.heappop(order)
            if var not in assign:
                # negative polarity first: good for ATPG encodings
                return -var
        return None

    # -- main loop -----------------------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = (),
              max_conflicts: Optional[int] = None) -> SatResult:
        """Solve the current clause set; model available via :meth:`model`.

        ``assumptions`` hold for this call only; ``max_conflicts``
        overrides the instance-level conflict budget for this call only.
        """
        self.stats = SatStats()
        budget = self.max_conflicts if max_conflicts is None else max_conflicts
        assumed = list(assumptions)
        for lit in assumed:
            self.num_vars = max(self.num_vars, abs(lit))
        try:
            return self._search(assumed, budget)
        finally:
            self.cumulative.accumulate(self.stats)
            if _metrics.enabled:
                stats = self.stats
                _SOLVES.inc()
                _DECISIONS.inc(stats.decisions)
                _PROPAGATIONS.inc(stats.propagations)
                _CONFLICTS.inc(stats.conflicts)
                _LEARNED.inc(stats.learned)
                _RESTARTS.inc(stats.restarts)

    def _search(self, assumptions: list[int], budget: int) -> SatResult:
        if self._has_empty or self._unsat:
            return SatResult.UNSAT
        self._cancel_until(0)
        if self._pending:
            pending, self._pending = self._pending, []
            for lit in pending:
                value = self._value(lit)
                if value is False:
                    self._unsat = True
                    return SatResult.UNSAT
                if value is None:
                    self._enqueue(lit, None)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return SatResult.UNSAT
        self._sync_order()

        restart_limit = 100
        conflicts_since_restart = 0
        while True:
            if len(self._trail_lim) < len(assumptions):
                # Establish (or re-establish after a restart/backjump)
                # the next assumption before any free decision.
                lit = assumptions[len(self._trail_lim)]
                value = self._value(lit)
                if value is False:
                    return SatResult.UNSAT  # UNSAT under these assumptions
                if value is True:
                    self._trail_lim.append(len(self._trail))  # dummy level
                    continue
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
            else:
                decision = self._pick_branch()
                if decision is None:
                    return SatResult.SAT
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(decision, None)
            while True:
                conflict = self._propagate()
                if conflict is None:
                    break
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self.stats.conflicts > budget:
                    self._cancel_until(0)
                    return SatResult.UNKNOWN
                if not self._trail_lim:
                    self._unsat = True
                    return SatResult.UNSAT
                learned, back_level = self._analyze(conflict)
                self._backjump(back_level)
                self._qhead = len(self._trail)
                self._decay()
                if not learned:
                    self._unsat = True
                    return SatResult.UNSAT
                if len(learned) == 1:
                    if self._value(learned[0]) is False:
                        self._unsat = True
                        return SatResult.UNSAT
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    self.clauses.append(learned)
                    self.stats.learned += 1
                    self._watch(learned[0], learned)
                    self._watch(learned[1], learned)
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], learned)
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * 1.5)
                    self.stats.restarts += 1
                    self._backjump(0)
                    self._qhead = len(self._trail)
                    break

    def model(self) -> dict[int, bool]:
        """Satisfying assignment after a SAT answer (unassigned -> False)."""
        return {v: self._assign.get(v, False) for v in range(1, self.num_vars + 1)}


def solve(clauses: Iterable[Iterable[int]],
          max_conflicts: int = 2_000_000) -> tuple[SatResult, dict[int, bool]]:
    """Convenience one-shot solve; returns (result, model)."""
    solver = SatSolver(max_conflicts=max_conflicts)
    for clause in clauses:
        solver.add_clause(clause)
    result = solver.solve()
    return result, (solver.model() if result is SatResult.SAT else {})
