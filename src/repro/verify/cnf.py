"""CNF construction: Tseitin gates and bit-vector arithmetic.

Both formal back-ends (SAT ATPG over the software IR, bounded model
checking over the RTL netlist) reduce to propositional satisfiability.
:class:`Cnf` allocates variables and emits clauses for Boolean gates;
:class:`BitVector` layers two's-complement word operations (add, sub,
comparisons, shifts by constants, bitwise logic, mux) on top via
bit-blasting with ripple-carry adders.

A :class:`Cnf` can run in two modes.  Standalone (the default), it just
collects clauses and :meth:`solve` builds a fresh solver per call.
Attached -- ``Cnf(solver=SatSolver())`` -- every clause streams into the
incremental solver the moment it is emitted, so repeated solves never
re-add the clause database and learned clauses carry over between
queries; :meth:`guard` scopes emitted clauses under an activation
literal so a clause group can be enabled per-query (assume the literal)
or retired permanently (assert its negation).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence

from repro.verify.sat import SatResult, SatSolver


class Cnf:
    """A growing CNF with fresh-variable allocation and gate encoders."""

    def __init__(self, solver: Optional[SatSolver] = None,
                 fold: bool = False) -> None:
        self.clauses: list[list[int]] = []
        self.solver = solver
        #: fold gates over constant/equal/opposite inputs instead of
        #: emitting Tseitin clauses.  Off by default: folding changes
        #: the emitted CNF, and the one-shot reference paths are pinned
        #: clause-for-clause by the differential suite.
        self.fold = fold
        self._guard_lit: Optional[int] = None
        self._next_var = solver.num_vars if solver is not None else 0
        #: literal constants: true_lit is a var constrained to 1
        self.true_lit = self.new_var()
        self.add_clause([self.true_lit])

    @property
    def false_lit(self) -> int:
        return -self.true_lit

    def new_var(self) -> int:
        self._next_var += 1
        if self.solver is not None and self.solver.num_vars < self._next_var:
            self.solver.num_vars = self._next_var
        return self._next_var

    @property
    def num_vars(self) -> int:
        return self._next_var

    def add_clause(self, literals: Iterable[int]) -> None:
        guard = self._guard_lit
        clause = list(literals) if guard is None else [-guard, *literals]
        self.clauses.append(clause)
        if self.solver is not None:
            self.solver.add_clause(clause)

    @contextmanager
    def guard(self, activation: int) -> Iterator[int]:
        """Emit clauses guarded by ``activation`` while the context is open.

        Guarded clauses only constrain a solve that assumes
        ``activation``; adding the permanent unit ``[-activation]``
        afterwards retires the whole group.  Guards do not nest.
        """
        if self._guard_lit is not None:
            raise ValueError("guard() does not nest")
        self._guard_lit = activation
        try:
            yield activation
        finally:
            self._guard_lit = None

    def const(self, value: bool) -> int:
        return self.true_lit if value else self.false_lit

    # -- gates (each returns the output literal) -------------------------------

    def gate_not(self, a: int) -> int:
        return -a

    def gate_and(self, a: int, b: int) -> int:
        if self.fold:
            true, false = self.true_lit, -self.true_lit
            if a == true:
                return b
            if b == true:
                return a
            if a == false or b == false or a == -b:
                return false
            if a == b:
                return a
        out = self.new_var()
        self.add_clause([-out, a])
        self.add_clause([-out, b])
        self.add_clause([out, -a, -b])
        return out

    def gate_or(self, a: int, b: int) -> int:
        return -self.gate_and(-a, -b)

    def gate_xor(self, a: int, b: int) -> int:
        if self.fold:
            true, false = self.true_lit, -self.true_lit
            if a == true:
                return -b
            if a == false:
                return b
            if b == true:
                return -a
            if b == false:
                return a
            if a == b:
                return false
            if a == -b:
                return true
        out = self.new_var()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        return out

    def gate_ite(self, sel: int, then_lit: int, else_lit: int) -> int:
        """out = sel ? then : else."""
        if self.fold:
            true, false = self.true_lit, -self.true_lit
            if sel == true:
                return then_lit
            if sel == false:
                return else_lit
            if then_lit == else_lit:
                return then_lit
            if then_lit == true and else_lit == false:
                return sel
            if then_lit == false and else_lit == true:
                return -sel
            if then_lit == true:
                return self.gate_or(sel, else_lit)
            if then_lit == false:
                return self.gate_and(-sel, else_lit)
            if else_lit == true:
                return self.gate_or(-sel, then_lit)
            if else_lit == false:
                return self.gate_and(sel, then_lit)
        out = self.new_var()
        self.add_clause([-out, -sel, then_lit])
        self.add_clause([-out, sel, else_lit])
        self.add_clause([out, -sel, -then_lit])
        self.add_clause([out, sel, -else_lit])
        return out

    def gate_and_many(self, lits: Sequence[int]) -> int:
        if not lits:
            return self.true_lit
        out = lits[0]
        for lit in lits[1:]:
            out = self.gate_and(out, lit)
        return out

    def gate_or_many(self, lits: Sequence[int]) -> int:
        if not lits:
            return self.false_lit
        out = lits[0]
        for lit in lits[1:]:
            out = self.gate_or(out, lit)
        return out

    def gate_eq(self, a: int, b: int) -> int:
        """out = (a == b) (XNOR)."""
        return -self.gate_xor(a, b)

    def assert_lit(self, lit: int) -> None:
        self.add_clause([lit])

    # -- solving ----------------------------------------------------------------

    def solve(self, assumptions: Iterable[int] = (),
              max_conflicts: int = 2_000_000) -> tuple[SatResult, dict[int, bool]]:
        if self.solver is not None:
            solver = self.solver
            solver.num_vars = max(solver.num_vars, self._next_var)
            result = solver.solve(assumptions, max_conflicts=max_conflicts)
        else:
            solver = SatSolver(max_conflicts=max_conflicts)
            for clause in self.clauses:
                solver.add_clause(clause)
            solver.num_vars = max(solver.num_vars, self._next_var)
            result = solver.solve(assumptions)
        model = solver.model() if result is SatResult.SAT else {}
        return result, model


class BitVector:
    """A little-endian vector of CNF literals (bit 0 = LSB).

    All arithmetic is modular two's complement at the vector width.
    """

    def __init__(self, cnf: Cnf, bits: Sequence[int]):
        if not bits:
            raise ValueError("BitVector needs at least one bit")
        self.cnf = cnf
        self.bits = list(bits)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def fresh(cls, cnf: Cnf, width: int) -> "BitVector":
        return cls(cnf, [cnf.new_var() for __ in range(width)])

    @classmethod
    def constant(cls, cnf: Cnf, value: int, width: int) -> "BitVector":
        return cls(cnf, [cnf.const(bool((value >> i) & 1)) for i in range(width)])

    @property
    def width(self) -> int:
        return len(self.bits)

    def value_in(self, model: dict[int, bool]) -> int:
        """Signed integer value of this vector under ``model``."""
        raw = 0
        for i, lit in enumerate(self.bits):
            bit = model.get(abs(lit), False)
            if lit < 0:
                bit = not bit
            if bit:
                raw |= 1 << i
        if raw & (1 << (self.width - 1)):
            raw -= 1 << self.width
        return raw

    def _check(self, other: "BitVector") -> None:
        if self.width != other.width:
            raise ValueError(f"width mismatch {self.width} != {other.width}")

    # -- bitwise ----------------------------------------------------------------------

    def bit_and(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.cnf, [
            self.cnf.gate_and(a, b) for a, b in zip(self.bits, other.bits)
        ])

    def bit_or(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.cnf, [
            self.cnf.gate_or(a, b) for a, b in zip(self.bits, other.bits)
        ])

    def bit_xor(self, other: "BitVector") -> "BitVector":
        self._check(other)
        return BitVector(self.cnf, [
            self.cnf.gate_xor(a, b) for a, b in zip(self.bits, other.bits)
        ])

    def bit_not(self) -> "BitVector":
        return BitVector(self.cnf, [-b for b in self.bits])

    # -- arithmetic ------------------------------------------------------------------------

    def add(self, other: "BitVector") -> "BitVector":
        self._check(other)
        cnf = self.cnf
        carry = cnf.false_lit
        out = []
        for a, b in zip(self.bits, other.bits):
            s = cnf.gate_xor(cnf.gate_xor(a, b), carry)
            carry = cnf.gate_or(
                cnf.gate_and(a, b),
                cnf.gate_and(carry, cnf.gate_xor(a, b)),
            )
            out.append(s)
        return BitVector(cnf, out)

    def negate(self) -> "BitVector":
        one = BitVector.constant(self.cnf, 1, self.width)
        return self.bit_not().add(one)

    def sub(self, other: "BitVector") -> "BitVector":
        return self.add(other.negate())

    def mul(self, other: "BitVector") -> "BitVector":
        """Shift-and-add multiplier (modular)."""
        self._check(other)
        cnf = self.cnf
        acc = BitVector.constant(cnf, 0, self.width)
        for i, bit in enumerate(other.bits):
            shifted = self.shift_left_const(i)
            gated = BitVector(cnf, [cnf.gate_and(bit, s) for s in shifted.bits])
            acc = acc.add(gated)
        return acc

    def shift_left_const(self, amount: int) -> "BitVector":
        amount = max(0, amount)
        bits = [self.cnf.false_lit] * min(amount, self.width) + self.bits
        return BitVector(self.cnf, bits[: self.width])

    def shift_right_const(self, amount: int, arithmetic: bool = True) -> "BitVector":
        amount = max(0, amount)
        fill = self.bits[-1] if arithmetic else self.cnf.false_lit
        bits = self.bits[amount:] + [fill] * min(amount, self.width)
        return BitVector(self.cnf, bits[: self.width])

    # -- comparisons (1-bit results) ----------------------------------------------------------

    def eq(self, other: "BitVector") -> int:
        self._check(other)
        return self.cnf.gate_and_many([
            self.cnf.gate_eq(a, b) for a, b in zip(self.bits, other.bits)
        ])

    def ne(self, other: "BitVector") -> int:
        return -self.eq(other)

    def lt_signed(self, other: "BitVector") -> int:
        """Signed a < b via sign of (a - b) with overflow correction."""
        cnf = self.cnf
        diff = self.sub(other)
        a_sign, b_sign, d_sign = self.bits[-1], other.bits[-1], diff.bits[-1]
        # overflow = (a_sign != b_sign) && (d_sign != a_sign)
        overflow = cnf.gate_and(cnf.gate_xor(a_sign, b_sign),
                                cnf.gate_xor(d_sign, a_sign))
        return cnf.gate_xor(d_sign, overflow)

    def le_signed(self, other: "BitVector") -> int:
        return self.cnf.gate_or(self.lt_signed(other), self.eq(other))

    def is_zero(self) -> int:
        return -self.cnf.gate_or_many(self.bits)

    def is_nonzero(self) -> int:
        return self.cnf.gate_or_many(self.bits)

    # -- selection ----------------------------------------------------------------------------------

    def ite(self, sel: int, other: "BitVector") -> "BitVector":
        """Per-bit mux: sel ? self : other."""
        self._check(other)
        return BitVector(self.cnf, [
            self.cnf.gate_ite(sel, a, b) for a, b in zip(self.bits, other.bits)
        ])

    def assert_equals_const(self, value: int) -> None:
        for i, lit in enumerate(self.bits):
            if (value >> i) & 1:
                self.cnf.assert_lit(lit)
            else:
                self.cnf.assert_lit(-lit)
