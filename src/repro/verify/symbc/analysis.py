"""The SymbC abstract interpretation.

Abstract domain: the set of configurations *possibly loaded* at a program
point.  The bottom context ``NO_CONTEXT`` (empty string) models the blank
device before any reconfiguration.  Transfer functions:

- ``reconfigure(c)``     -> {c} (strong update: download completes)
- any FPGA resource call -> state unchanged, but *checked*: every
  candidate context must implement the function;
- calls to program-defined SW functions are inlined via memoised
  summaries (input state -> output state), so reconfigurations inside
  helpers are respected;
- joins (branch merges, loop fixpoints) take the set union.

The analysis is sound: it over-approximates the contexts reachable at
each call site, so a certificate covers every execution path.  When a
check fails, a concrete control-flow path is reconstructed by a
context-tagged graph search and returned as the counter-example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.swir.ast import (
    Assign,
    BinOp,
    Call,
    Expr,
    FpgaCall,
    Function,
    Program,
    Reconfigure,
    Return,
    Stmt,
    UnOp,
    While,
)
from repro.swir.cfg import Cfg, build_cfg
from repro.verify.symbc.certificate import (
    ConsistencyCertificate,
    CounterExample,
    SymbcVerdict,
)
from repro.verify.symbc.configinfo import ConfigInfo

#: The "nothing loaded yet" pseudo-context.
NO_CONTEXT = ""

#: An abstract state is a frozenset of possibly loaded context names.
AbstractState = frozenset


def _called_functions(expr: Expr) -> list[str]:
    """Names of functions invoked inside an expression, in order."""
    if isinstance(expr, Call):
        out = []
        for arg in expr.args:
            out.extend(_called_functions(arg))
        out.append(expr.func)
        return out
    if isinstance(expr, BinOp):
        return _called_functions(expr.left) + _called_functions(expr.right)
    if isinstance(expr, UnOp):
        return _called_functions(expr.operand)
    return []


class SymbcAnalyzer:
    """Checks one program against one :class:`ConfigInfo`."""

    def __init__(self, program: Program, config: ConfigInfo):
        self.program = program
        self.config = config
        self._cfgs: dict[str, Cfg] = {}
        self._summaries: dict[tuple[str, AbstractState], AbstractState] = {}
        self._in_progress: set[tuple[str, AbstractState]] = set()
        #: sid -> (function name, bad candidate contexts)
        self.violations: dict[int, tuple[str, frozenset]] = {}
        #: sid -> (function name, full abstract state) for proved sites
        self.evidence: dict[int, tuple[str, frozenset]] = {}
        #: function name -> input states it was analysed with
        self._input_states: dict[str, set[AbstractState]] = {}

    # -- public ----------------------------------------------------------------

    def check(self) -> SymbcVerdict:
        """Run the analysis on the entry function; build the verdict."""
        contexts_used = {
            s.context for s in self.program.walk() if isinstance(s, Reconfigure)
        }
        self.config.validate_program_contexts(contexts_used)
        top = frozenset({NO_CONTEXT})
        self._apply_function(self.program.entry, top)
        if not self.violations:
            certificate = ConsistencyCertificate(
                program_entry=self.program.entry,
                call_sites_proved=len(self.evidence),
                evidence=dict(self.evidence),
            )
            return SymbcVerdict(certificate=certificate)
        counter_examples = [
            self._counter_example(sid, function, bad)
            for sid, (function, bad) in sorted(self.violations.items())
        ]
        return SymbcVerdict(counter_examples=counter_examples)

    # -- fixpoint over one function's CFG --------------------------------------------

    def _cfg(self, name: str) -> Cfg:
        if name not in self._cfgs:
            self._cfgs[name] = build_cfg(self.program.functions[name])
        return self._cfgs[name]

    def _apply_function(self, name: str, state: AbstractState) -> AbstractState:
        """Summary of running ``name`` from abstract state ``state``."""
        key = (name, state)
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:
            # Recursion: sound fallback — any context (or none) may result.
            return frozenset({NO_CONTEXT}) | frozenset(self.config.configurations)
        self._in_progress.add(key)
        self._input_states.setdefault(name, set()).add(state)
        try:
            result = self._analyze_cfg(self._cfg(name), state)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = result
        return result

    def _analyze_cfg(self, cfg: Cfg, entry_state: AbstractState) -> AbstractState:
        states: dict[int, AbstractState] = {cfg.entry: entry_state}
        worklist = [cfg.entry]
        while worklist:
            bid = worklist.pop()
            out_state = self._transfer_block(cfg.blocks[bid].statements, states[bid])
            for succ, __ in cfg.blocks[bid].successors:
                old = states.get(succ, frozenset())
                new = old | out_state
                if new != old:
                    states[succ] = new
                    worklist.append(succ)
        return states.get(cfg.exit, entry_state)

    def _transfer_block(self, stmts: list[Stmt], state: AbstractState) -> AbstractState:
        for stmt in stmts:
            state = self._transfer_stmt(stmt, state)
        return state

    def _transfer_stmt(self, stmt: Stmt, state: AbstractState) -> AbstractState:
        if isinstance(stmt, Reconfigure):
            return frozenset({stmt.context})
        if isinstance(stmt, FpgaCall):
            self._check_call(stmt, state)
            for arg in stmt.args:
                state = self._transfer_expr_calls(arg, state)
            return state
        if isinstance(stmt, Assign):
            return self._transfer_expr_calls(stmt.expr, state)
        if isinstance(stmt, While):
            # Loop headers appear in blocks for coverage; the branching is
            # on CFG edges.  Only the condition's calls matter here.
            return self._transfer_expr_calls(stmt.cond, state)
        if isinstance(stmt, Return):
            if stmt.expr is not None:
                return self._transfer_expr_calls(stmt.expr, state)
            return state
        return state

    def _transfer_expr_calls(self, expr: Expr, state: AbstractState) -> AbstractState:
        for name in _called_functions(expr):
            if name in self.program.functions:
                state = self._apply_function(name, state)
        return state

    def _check_call(self, stmt: FpgaCall, state: AbstractState) -> None:
        if stmt.func not in self.config.fpga_functions:
            return  # not a reconfigurable resource: nothing to prove
        bad = frozenset(
            ctx for ctx in state
            if ctx == NO_CONTEXT or not self.config.provides(ctx, stmt.func)
        )
        if bad:
            known = self.violations.get(stmt.sid)
            merged = bad | (known[1] if known else frozenset())
            self.violations[stmt.sid] = (stmt.func, merged)
        else:
            prior = self.evidence.get(stmt.sid)
            merged = state | (prior[1] if prior else frozenset())
            self.evidence[stmt.sid] = (stmt.func, merged)

    # -- counter-example reconstruction ---------------------------------------------------------

    def _counter_example(self, sid: int, function: str,
                         bad: frozenset) -> CounterExample:
        """Find a concrete path reaching ``sid`` with a bad context loaded."""
        for fn_name, input_states in self._input_states.items():
            cfg = self._cfg(fn_name)
            if not any(s.sid == sid for b in cfg.blocks.values()
                       for s in b.statements):
                continue
            for input_state in input_states:
                for start_ctx in input_state:
                    path = self._search_path(cfg, start_ctx, sid, bad)
                    if path is not None:
                        return CounterExample(
                            function=function,
                            call_sid=sid,
                            loaded_candidates=bad,
                            path=tuple(path),
                        )
        # Sound fallback: report without a rendered path.
        return CounterExample(function, sid, bad, ("<path reconstruction failed>",))

    def _search_path(self, cfg: Cfg, start_ctx: str, target_sid: int,
                     bad: frozenset) -> Optional[list[str]]:
        """BFS over (block, context) pairs tracking a concrete path."""
        start = (cfg.entry, start_ctx)
        # node -> (previous node, statements rendered while crossing it)
        seen: dict[tuple[int, str], Optional[tuple]] = {start: None}
        queue = [start]
        while queue:
            node = queue.pop(0)
            bid, ctx = node
            rendered: list[str] = []
            ctx, found = self._scan_block(cfg.blocks[bid].statements, ctx,
                                          target_sid, bad, rendered)
            if found:
                return self._unwind(seen, node) + rendered
            for succ, label in cfg.blocks[bid].successors:
                for next_ctx in self._successor_contexts(ctx):
                    key = (succ, next_ctx)
                    if key not in seen:
                        edge = rendered + ([f"[{label}]"] if label else [])
                        seen[key] = (node, tuple(edge))
                        queue.append(key)
        return None

    def _scan_block(self, stmts: list[Stmt], ctx: str, target_sid: int,
                    bad: frozenset, rendered: list[str]):
        """Walk a block with concrete context ``ctx``; detect the target."""
        for stmt in stmts:
            rendered.append(str(stmt))
            if isinstance(stmt, Reconfigure):
                ctx = stmt.context
            elif isinstance(stmt, FpgaCall) and stmt.sid == target_sid:
                if ctx in bad:
                    return ctx, True
        return ctx, False

    def _successor_contexts(self, ctx: str) -> list[str]:
        """Contexts a path may carry onward (calls may reconfigure)."""
        return [ctx]

    def _unwind(self, seen: dict, node) -> list[str]:
        steps: list[list[str]] = []
        while seen[node] is not None:
            prev, edge = seen[node]
            steps.append(list(edge))
            node = prev
        out: list[str] = []
        for edge in reversed(steps):
            out.extend(edge)
        return out
