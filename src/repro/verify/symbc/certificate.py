"""SymbC verdicts: consistency certificates and counter-examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ConsistencyCertificate:
    """Formal proof that the consistency property holds.

    Records what was proved and the analysis evidence: for every FPGA
    call site, the set of configurations possibly loaded there (the
    abstract state), each of which implements the called function.
    """

    program_entry: str
    call_sites_proved: int
    evidence: dict[int, tuple[str, frozenset[str]]]  # sid -> (function, configs)

    @property
    def holds(self) -> bool:
        return True

    def describe(self) -> str:
        lines = [
            "SymbC consistency certificate",
            f"  entry: {self.program_entry}",
            f"  property: every FPGA resource call finds its function loaded",
            f"  call sites proved: {self.call_sites_proved}",
        ]
        for sid, (function, configs) in sorted(self.evidence.items()):
            cfgs = ", ".join(sorted(configs))
            lines.append(f"    sid {sid}: {function}() available in {{{cfgs}}}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CounterExample:
    """A control-flow path along which a call may find its function absent."""

    function: str
    call_sid: int
    #: configurations possibly loaded at the call ("" = none/unknown)
    loaded_candidates: frozenset[str]
    #: human-readable path of statements from entry to the bad call
    path: tuple[str, ...]

    def describe(self) -> str:
        loaded = ", ".join(sorted(self.loaded_candidates)) or "<none loaded>"
        lines = [
            "SymbC counter-example",
            f"  call to {self.function}() at sid {self.call_sid} may execute with "
            f"loaded context in {{{loaded}}}",
            "  path:",
        ]
        lines += [f"    {step}" for step in self.path]
        return "\n".join(lines)


@dataclass
class SymbcVerdict:
    """Overall result: a certificate or one or more counter-examples."""

    certificate: Optional[ConsistencyCertificate] = None
    counter_examples: list[CounterExample] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.certificate is not None and not self.counter_examples

    def to_dict(self) -> dict:
        return {
            "schema": "repro.symbc_verdict/v1",
            "consistent": self.consistent,
            "call_sites_proved": (
                self.certificate.call_sites_proved if self.certificate else 0
            ),
            "counter_examples": [
                {
                    "function": ce.function,
                    "call_sid": ce.call_sid,
                    "loaded_candidates": sorted(ce.loaded_candidates),
                }
                for ce in self.counter_examples
            ],
        }

    def describe(self) -> str:
        if self.consistent:
            return self.certificate.describe()
        return "\n\n".join(ce.describe() for ce in self.counter_examples)
