"""SymbC: formal reconfiguration-consistency checking.

*"Another tool, called SymbC, is provided by the Symbad project for
formally verifying that the modified SW satisfies the following
fundamental consistency property: each time the software requires a
hardware resource of the reconfigurable part, this resource is actually
available."* (Section 3.3)

Inputs mirror the paper's: the application code containing FPGA
reconfiguration instructions and resource calls
(:class:`repro.swir.ast.Program`), plus a
:class:`~repro.verify.symbc.configinfo.ConfigInfo` describing which
function lives in which configuration.  The output is either a
:class:`~repro.verify.symbc.certificate.ConsistencyCertificate` (a formal
proof that any function is only invoked when present in the FPGA) or a
counter-example path showing the problem.
"""

from repro.verify.symbc.configinfo import ConfigInfo, ConfigInfoError
from repro.verify.symbc.analysis import SymbcAnalyzer, AbstractState
from repro.verify.symbc.certificate import (
    ConsistencyCertificate,
    CounterExample,
    SymbcVerdict,
)

__all__ = [
    "ConfigInfo",
    "ConfigInfoError",
    "SymbcAnalyzer",
    "AbstractState",
    "ConsistencyCertificate",
    "CounterExample",
    "SymbcVerdict",
]
