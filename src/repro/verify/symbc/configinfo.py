"""SymbC configuration information.

The paper lists SymbC's second input as *"a configuration information
containing: the name and signature of the reconfiguration procedure, the
name of the functions that are implemented in the FPGA (and that can be
absent from it), and the FPGA configuration characteristics (i.e., which
function is present in which configuration)"*.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ConfigInfoError(ValueError):
    """Raised for inconsistent configuration descriptions."""


@dataclass(frozen=True)
class ConfigInfo:
    """Which FPGA function is present in which configuration.

    ``configurations`` maps context name -> set of implemented function
    names.  ``reconfigure_name`` documents the reconfiguration procedure
    (our IR has a dedicated ``Reconfigure`` statement, so the name is
    informative only).
    """

    configurations: dict[str, frozenset[str]]
    reconfigure_name: str = "reconfigure"

    def __post_init__(self) -> None:
        if not self.configurations:
            raise ConfigInfoError("at least one configuration is required")
        for name, functions in self.configurations.items():
            if not functions:
                raise ConfigInfoError(f"configuration {name!r} implements nothing")

    @classmethod
    def from_sets(cls, **configs: set[str]) -> "ConfigInfo":
        """Build from keyword sets: ``ConfigInfo.from_sets(config1={"f"})``."""
        return cls({name: frozenset(fns) for name, fns in configs.items()})

    @property
    def fpga_functions(self) -> frozenset[str]:
        """All functions that live in the reconfigurable part."""
        out: set[str] = set()
        for functions in self.configurations.values():
            out |= functions
        return frozenset(out)

    def owners(self, function: str) -> frozenset[str]:
        """Configurations implementing ``function`` (may be several)."""
        return frozenset(
            name for name, fns in self.configurations.items() if function in fns
        )

    def provides(self, configuration: str, function: str) -> bool:
        fns = self.configurations.get(configuration)
        if fns is None:
            raise ConfigInfoError(f"unknown configuration {configuration!r}")
        return function in fns

    def validate_program_contexts(self, contexts_used: set[str]) -> None:
        """Check the program only reconfigures to known configurations."""
        unknown = contexts_used - set(self.configurations)
        if unknown:
            raise ConfigInfoError(
                f"program loads undefined configurations: {sorted(unknown)}"
            )
