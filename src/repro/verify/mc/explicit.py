"""Explicit-state CTL model checking.

Standard fixpoint labelling over the reachable state graph:

- ``EX p``: states with a successor satisfying ``p``;
- ``E [p U q]``: backward least fixpoint from ``q`` through ``p``;
- ``EG p``: greatest fixpoint — states in ``p`` with a path staying in
  ``p`` (computed by pruning states without a ``p``-successor).

For a refuted universal property (``AG p`` being the workhorse at level
4), a counter-example path from an initial state to a violating state is
extracted — the "counter example expected for each property" the
paper's verification loop revises the design on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional

from repro.verify.mc.ctl import (
    And,
    Atom,
    EG,
    EU,
    EX,
    Formula,
    Not,
    Or,
)
from repro.verify.mc.kripke import KripkeStructure


@dataclass
class CheckOutcome:
    """Verdict for one property on one model."""

    formula: str
    holds: bool
    #: states satisfying the formula (diagnostic)
    satisfying_count: int
    counter_example: Optional[list[dict[str, int]]] = None

    def describe(self) -> str:
        status = "PROVED" if self.holds else "FAILED"
        lines = [f"{status}: {self.formula}"]
        if self.counter_example is not None:
            lines.append("  counter-example trace:")
            for i, valuation in enumerate(self.counter_example):
                shown = {k: v for k, v in sorted(valuation.items())
                         if not k.startswith("__")}
                lines.append(f"    step {i}: {shown}")
        return "\n".join(lines)


class ExplicitModelChecker:
    """Checks CTL formulas against a :class:`KripkeStructure`."""

    def __init__(self, model: KripkeStructure):
        model.validate()
        self.model = model
        self._predecessors: dict[Hashable, list[Hashable]] = {
            s: [] for s in model.states
        }
        for src, dsts in model.transitions.items():
            for dst in dsts:
                self._predecessors[dst].append(src)

    # -- labelling ---------------------------------------------------------------

    def satisfying(self, formula: Formula) -> set[Hashable]:
        """The set of states satisfying ``formula``."""
        model = self.model
        if isinstance(formula, Atom):
            return {
                s for s in model.states if formula.predicate(model.valuations[s])
            }
        if isinstance(formula, Not):
            return set(model.states) - self.satisfying(formula.operand)
        if isinstance(formula, And):
            return self.satisfying(formula.left) & self.satisfying(formula.right)
        if isinstance(formula, Or):
            return self.satisfying(formula.left) | self.satisfying(formula.right)
        if isinstance(formula, EX):
            target = self.satisfying(formula.operand)
            return {
                s for s in model.states
                if any(succ in target for succ in model.successors(s))
            }
        if isinstance(formula, EU):
            left = self.satisfying(formula.left)
            result = set(self.satisfying(formula.right))
            frontier = list(result)
            while frontier:
                state = frontier.pop()
                for pred in self._predecessors[state]:
                    if pred in left and pred not in result:
                        result.add(pred)
                        frontier.append(pred)
            return result
        if isinstance(formula, EG):
            operand = self.satisfying(formula.operand)
            result = set(operand)
            changed = True
            while changed:
                changed = False
                for state in list(result):
                    if not any(s in result for s in self.model.successors(state)):
                        result.discard(state)
                        changed = True
            return result
        raise TypeError(f"unknown formula {formula!r}")  # pragma: no cover

    # -- checking --------------------------------------------------------------------

    def check(self, formula: Formula) -> CheckOutcome:
        """Does ``formula`` hold in every initial state?"""
        sat = self.satisfying(formula)
        holds = all(init in sat for init in self.model.initial)
        counter_example = None
        if not holds:
            counter_example = self._counter_example(formula, sat)
        return CheckOutcome(
            formula=str(formula),
            holds=holds,
            satisfying_count=len(sat),
            counter_example=counter_example,
        )

    def _counter_example(self, formula: Formula,
                         sat: set[Hashable]) -> Optional[list[dict[str, int]]]:
        """A trace witnessing the violation.

        For ``AG p`` (encoded ``!E[true U !p]``) the witness is the
        shortest path from an initial state to a ``!p`` state.  For other
        shapes we fall back to reporting the violating initial state.
        """
        target = self._ag_violation_target(formula)
        bad_initial = [s for s in self.model.initial if s not in sat]
        if not bad_initial:
            return None  # pragma: no cover - check() only calls us on failure
        if target is not None:
            path = self._shortest_path(bad_initial, target)
            if path is not None:
                return [self.model.valuations[s] for s in path]
        return [self.model.valuations[bad_initial[0]]]

    def _ag_violation_target(self, formula: Formula) -> Optional[set[Hashable]]:
        # AG p is rendered as Not(EU(true, Not(p))): unwrap to !p states.
        if isinstance(formula, Not) and isinstance(formula.operand, EU):
            inner = formula.operand
            if isinstance(inner.left, Atom) and inner.left.text == "true":
                return self.satisfying(inner.right)
        return None

    def _shortest_path(self, sources: list[Hashable],
                       targets: set[Hashable]) -> Optional[list[Hashable]]:
        parents: dict[Hashable, Optional[Hashable]] = {s: None for s in sources}
        queue = list(sources)
        while queue:
            state = queue.pop(0)
            if state in targets:
                path = [state]
                while parents[path[-1]] is not None:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            for succ in self.model.successors(state):
                if succ not in parents:
                    parents[succ] = state
                    queue.append(succ)
        return None
