"""SAT-based bounded model checking of RTL netlists.

Unrolls the netlist's transition relation ``k`` steps into CNF
(bit-blasting every expression at the netlist's uniform word width,
matching interpreted simulation exactly) and asks the CDCL solver for a
step violating an invariant.  A SAT answer yields a concrete
counter-example trace (register/input values per step); UNSAT up to
``k`` is a bounded proof.

Invariants are conjunctions of atomic predicates ``signal <op> const``
over netlist signals — the property shape the paper's level-4 interface
checks use (``AG (handshake consistent)``).

The checker is incremental by default: one attached CNF/solver pair is
kept per :class:`BoundedModelChecker`, time frames are encoded once and
extended as deeper bounds are requested, per-frame violation literals
are cached per property, and each query solves under an assumption
selecting that property/bound — so learned clauses carry over across
properties, bounds, and (via :meth:`add_mutant`) mutated designs.
``incremental=False`` restores the one-shot encode-and-solve path,
which the differential test-suite pins against the incremental one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rtl.netlist import (
    BinExpr,
    ConstExpr,
    Expr,
    MuxExpr,
    Netlist,
    SigExpr,
    UnExpr,
)
from repro.verify.cnf import BitVector, Cnf
from repro.verify.sat import SatResult, SatSolver

Atom = tuple[str, str, int]
Clauses = list[list[Atom]]


def property_text(clauses: Clauses) -> str:
    """Canonical display form of a CNF-over-atoms invariant."""
    return " && ".join(
        "(" + " || ".join(f"{n} {op} {v}" for n, op, v in clause) + ")"
        if len(clause) > 1 else
        " || ".join(f"{n} {op} {v}" for n, op, v in clause)
        for clause in clauses
    )


@dataclass
class BmcResult:
    """Outcome of one bounded check."""

    property_text: str
    bound: int
    violated: bool
    #: step-indexed signal valuations when violated
    trace: list[dict[str, int]] = field(default_factory=list)
    solver_result: SatResult = SatResult.UNSAT

    @property
    def holds_up_to_bound(self) -> bool:
        return not self.violated and self.solver_result is not SatResult.UNKNOWN

    def to_dict(self) -> dict:
        return {
            "property": self.property_text,
            "bound": self.bound,
            "violated": self.violated,
            "holds_up_to_bound": self.holds_up_to_bound,
            "solver": self.solver_result.name,
        }

    def describe(self) -> str:
        if self.violated:
            lines = [
                f"BMC: {self.property_text} VIOLATED at bound {self.bound}",
                "  counter-example:",
            ]
            for i, step in enumerate(self.trace):
                shown = {k: step[k] for k in sorted(step)}
                lines.append(f"    cycle {i}: {shown}")
            return "\n".join(lines)
        return f"BMC: {self.property_text} holds for all traces of length <= {self.bound}"


_OPS = ("==", "!=", "<", "<=", ">", ">=")


@dataclass
class _MutantCone:
    """Incremental state for one mutated design sharing the baseline CNF."""

    act: int                       # activation literal guarding the cone
    driver: str                    # mutated wire or register name
    expr: Expr                     # rewritten driver expression
    #: per-frame env overlay (baseline env + cone signals re-encoded)
    envs: list[dict[str, BitVector]] = field(default_factory=list)
    #: per-frame set of signals whose value differs from the baseline
    changed: list[set[str]] = field(default_factory=list)
    #: register overlay feeding the next frame to encode
    frontier: dict[str, BitVector] = field(default_factory=dict)
    #: (property key, frame) -> violation literal
    viol: dict = field(default_factory=dict)
    #: (property key, bound) -> query literal
    query: dict = field(default_factory=dict)


class BoundedModelChecker:
    """BMC engine for one netlist."""

    def __init__(self, netlist: Netlist, incremental: bool = True):
        netlist.validate()
        self.netlist = netlist
        self.word = netlist.word_width
        self.incremental = incremental
        # Incremental session state (lazily built on the first query):
        self._cnf: Optional[Cnf] = None
        self._frames: list[dict[str, BitVector]] = []
        self._frontier: dict[str, BitVector] = {}
        self._viol: dict = {}      # (property key, frame) -> violation literal
        self._query: dict = {}     # (property key, bound) -> query literal
        self._mutants: dict[int, _MutantCone] = {}

    # -- expression bit-blasting ---------------------------------------------------

    def _blast(self, expr: Expr, env: dict[str, BitVector], cnf: Cnf) -> BitVector:
        word = self.word
        if isinstance(expr, ConstExpr):
            value = expr.value & ((1 << expr.width) - 1)
            return BitVector.constant(cnf, value, word)
        if isinstance(expr, SigExpr):
            return env[expr.name]
        if isinstance(expr, UnExpr):
            operand = self._blast(expr.operand, env, cnf)
            if expr.op == "~":
                return operand.bit_not()
            bit = operand.is_zero()
            return self._bool_to_vec(bit, cnf)
        if isinstance(expr, MuxExpr):
            sel = self._blast(expr.sel, env, cnf).is_nonzero()
            then = self._blast(expr.then, env, cnf)
            other = self._blast(expr.other, env, cnf)
            return then.ite(sel, other)
        if isinstance(expr, BinExpr):
            left = self._blast(expr.left, env, cnf)
            right = self._blast(expr.right, env, cnf)
            return self._blast_binop(expr.op, left, right, expr.right, cnf)
        raise TypeError(f"cannot bit-blast {expr!r}")  # pragma: no cover

    def _blast_binop(self, op: str, left: BitVector, right: BitVector,
                     right_expr: Expr, cnf: Cnf) -> BitVector:
        if op == "+":
            return left.add(right)
        if op == "-":
            return left.sub(right)
        if op == "*":
            return left.mul(right)
        if op == "&":
            return left.bit_and(right)
        if op == "|":
            return left.bit_or(right)
        if op == "^":
            return left.bit_xor(right)
        if op in ("<<", ">>"):
            if not isinstance(right_expr, ConstExpr):
                raise TypeError("BMC supports shifts by constants only")
            amount = right_expr.value
            if op == "<<":
                return left.shift_left_const(amount)
            return left.shift_right_const(amount, arithmetic=False)
        if op == "==":
            return self._bool_to_vec(left.eq(right), cnf)
        if op == "!=":
            return self._bool_to_vec(left.ne(right), cnf)
        if op == "<":
            return self._bool_to_vec(self._lt_unsigned(left, right, cnf), cnf)
        if op == "<=":
            lt = self._lt_unsigned(left, right, cnf)
            return self._bool_to_vec(cnf.gate_or(lt, left.eq(right)), cnf)
        raise TypeError(f"cannot bit-blast operator {op!r}")  # pragma: no cover

    def _lt_unsigned(self, left: BitVector, right: BitVector, cnf: Cnf) -> int:
        """Unsigned comparison via MSB-first prefix equality."""
        result = cnf.false_lit
        prefix_eq = cnf.true_lit
        for a, b in zip(reversed(left.bits), reversed(right.bits)):
            here = cnf.gate_and(prefix_eq, cnf.gate_and(-a, b))
            result = cnf.gate_or(result, here)
            prefix_eq = cnf.gate_and(prefix_eq, cnf.gate_eq(a, b))
        return result

    def _bool_to_vec(self, bit: int, cnf: Cnf) -> BitVector:
        bits = [bit] + [cnf.false_lit] * (self.word - 1)
        return BitVector(cnf, bits)

    # -- unrolling ------------------------------------------------------------------------

    def _frame(self, cnf: Cnf, regs: dict[str, BitVector]
               ) -> tuple[dict[str, BitVector], dict[str, BitVector]]:
        """One time frame: free inputs + wires; returns (env, next regs)."""
        env: dict[str, BitVector] = dict(regs)
        for name, width in self.netlist.inputs.items():
            vec = BitVector.fresh(cnf, self.word)
            # Constrain bits above the declared input width to zero.
            for bit in vec.bits[width:]:
                cnf.assert_lit(-bit)
            env[name] = vec
        for name in self.netlist.wire_order():
            width, expr = self.netlist.wires[name]
            value = self._blast(expr, env, cnf)
            env[name] = self._truncate(value, width, cnf)
        nxt: dict[str, BitVector] = {}
        for reg in self.netlist.registers.values():
            value = self._blast(reg.next_expr, env, cnf)
            nxt[reg.name] = self._truncate(value, reg.width, cnf)
        return env, nxt

    def _truncate(self, vec: BitVector, width: int, cnf: Cnf) -> BitVector:
        if width >= self.word:
            return vec
        bits = vec.bits[:width] + [cnf.false_lit] * (self.word - width)
        return BitVector(cnf, bits)

    def _reset_regs(self, cnf: Cnf) -> dict[str, BitVector]:
        return {
            reg.name: BitVector.constant(cnf, reg.reset, self.word)
            for reg in self.netlist.registers.values()
        }

    # -- incremental session ----------------------------------------------------------

    def _extend(self, bound: int) -> None:
        """Encode time frames up to ``bound`` (once; later calls extend)."""
        if self._cnf is None:
            self._cnf = Cnf(solver=SatSolver(), fold=True)
            self._frontier = self._reset_regs(self._cnf)
        while len(self._frames) <= bound:
            env, nxt = self._frame(self._cnf, self._frontier)
            self._frames.append(env)
            self._frontier = nxt

    def _viol_lit(self, key, clauses: Clauses, frame: int) -> int:
        lit = self._viol.get((key, frame))
        if lit is None:
            lit = self._violation_lit_clauses(clauses, self._frames[frame],
                                              self._cnf)
            self._viol[(key, frame)] = lit
        return lit

    @staticmethod
    def _validate_clauses(clauses: Clauses, netlist: Netlist) -> None:
        for clause in clauses:
            if not clause:
                raise ValueError("empty clause is unsatisfiable")
            for name, op, __ in clause:
                if op not in _OPS:
                    raise ValueError(f"bad operator {op!r}")
                netlist.width_of(name)  # raises on unknown signal

    # -- checking ----------------------------------------------------------------------------

    def check_invariant(
        self,
        atoms: list[Atom],
        bound: int,
        max_conflicts: int = 2_000_000,
    ) -> BmcResult:
        """Check the invariant ``AND(signal op const)`` for ``bound`` steps."""
        return self.check_invariant_clauses([[a] for a in atoms], bound,
                                            max_conflicts)

    def check_invariant_clauses(
        self,
        clauses: Clauses,
        bound: int,
        max_conflicts: int = 2_000_000,
    ) -> BmcResult:
        """Check an invariant in CNF over atoms: AND over clauses of
        OR over ``(signal, op, const)`` atoms.

        Implications are written as clauses: ``a -> b`` is
        ``[negate(a), b]``.  Returns a violation trace if some reachable
        step within the bound falsifies any clause.
        """
        self._validate_clauses(clauses, self.netlist)
        text = property_text(clauses)
        if not self.incremental:
            return self._check_oneshot(clauses, bound, max_conflicts, text)

        key = tuple(tuple(clause) for clause in clauses)
        self._extend(bound)
        cnf = self._cnf
        violation_lits = [self._viol_lit(key, clauses, i)
                          for i in range(bound + 1)]
        query = self._query.get((key, bound))
        if query is None:
            query = cnf.new_var()
            cnf.add_clause([-query] + violation_lits)
            self._query[(key, bound)] = query

        result, model = cnf.solve(assumptions=[query],
                                  max_conflicts=max_conflicts)
        if result is SatResult.UNSAT:
            return BmcResult(text, bound, violated=False)
        if result is SatResult.UNKNOWN:
            return BmcResult(text, bound, violated=False,
                             solver_result=SatResult.UNKNOWN)
        trace = self._build_trace(clauses, self._frames[:bound + 1], model)
        return BmcResult(text, bound, violated=True, trace=trace,
                         solver_result=SatResult.SAT)

    def _check_oneshot(self, clauses: Clauses, bound: int,
                       max_conflicts: int, text: str) -> BmcResult:
        """The non-incremental path: encode, solve and throw away."""
        cnf = Cnf()
        regs = self._reset_regs(cnf)
        violation_lits: list[int] = []
        frames: list[dict[str, BitVector]] = []
        for __ in range(bound + 1):
            env, next_regs = self._frame(cnf, regs)
            frames.append(env)
            violation_lits.append(self._violation_lit_clauses(clauses, env, cnf))
            regs = next_regs
        cnf.add_clause(violation_lits)

        result, model = cnf.solve(max_conflicts=max_conflicts)
        if result is SatResult.UNSAT:
            return BmcResult(text, bound, violated=False)
        if result is SatResult.UNKNOWN:
            return BmcResult(text, bound, violated=False,
                             solver_result=SatResult.UNKNOWN)
        trace = self._build_trace(clauses, frames, model)
        return BmcResult(text, bound, violated=True, trace=trace,
                         solver_result=SatResult.SAT)

    def _build_trace(self, clauses: Clauses,
                     frames: list[dict[str, BitVector]],
                     model: dict[int, bool]) -> list[dict[str, int]]:
        trace = []
        for env in frames:
            step = {}
            for name in list(self.netlist.inputs) + list(self.netlist.registers) \
                    + list(self.netlist.wires):
                vec = env[name]
                raw = vec.value_in(model)
                width = self.netlist.width_of(name)
                step[name] = raw & ((1 << width) - 1)
            trace.append(step)
            if self._violated_in(clauses, step):
                break
        return trace

    # -- mutant cones -------------------------------------------------------------------

    def add_mutant(self, driver: str, expr: Expr, bound: int) -> int:
        """Encode a mutated design's diff cone under an activation literal.

        ``driver`` is the mutated wire or register (next-value) name and
        ``expr`` its rewritten expression.  Only signals whose value can
        differ from the baseline are re-encoded, per frame, guarded by a
        fresh activation literal; everything else (inputs, reset state,
        untouched logic) is shared with the baseline unrolling.  Returns
        the activation literal, the handle for :meth:`check_mutant` and
        :meth:`retire_mutant`.  Requires ``incremental=True``.
        """
        if not self.incremental:
            raise ValueError("mutant cones need an incremental checker")
        if driver not in self.netlist.wires \
                and driver not in self.netlist.registers:
            raise ValueError(f"unknown driver {driver!r}")
        self._extend(bound)
        act = self._cnf.new_var()
        cone = _MutantCone(act=act, driver=driver, expr=expr)
        self._mutants[act] = cone
        self._extend_cone(cone, bound)
        return act

    def _extend_cone(self, cone: _MutantCone, bound: int) -> None:
        """Encode the mutant's changed signals for frames up to ``bound``."""
        self._extend(bound)
        cnf = self._cnf
        netlist = self.netlist
        with cnf.guard(cone.act):
            while len(cone.envs) <= bound:
                frame = len(cone.envs)
                env = dict(self._frames[frame])
                env.update(cone.frontier)
                changed = set(cone.frontier)
                for name in netlist.wire_order():
                    width, expr = netlist.wires[name]
                    if name == cone.driver:
                        expr = cone.expr
                    elif not (expr.refs() & changed):
                        continue
                    value = self._blast(expr, env, cnf)
                    env[name] = self._truncate(value, width, cnf)
                    changed.add(name)
                frontier: dict[str, BitVector] = {}
                for reg in netlist.registers.values():
                    expr = reg.next_expr
                    if reg.name == cone.driver:
                        expr = cone.expr
                    elif not (expr.refs() & changed):
                        continue
                    value = self._blast(expr, env, cnf)
                    frontier[reg.name] = self._truncate(value, reg.width, cnf)
                cone.envs.append(env)
                cone.changed.append(changed)
                cone.frontier = frontier

    def _mutant_viol_lits(self, cone: _MutantCone, clauses: Clauses,
                          bound: int) -> list[int]:
        """Per-frame violation literals for one property on one mutant.

        Frames the cone does not touch share the baseline literal.
        """
        cnf = self._cnf
        key = tuple(tuple(clause) for clause in clauses)
        prop_signals = {name for clause in clauses for name, __, __ in clause}
        violation_lits = []
        for frame in range(bound + 1):
            if prop_signals & cone.changed[frame]:
                lit = cone.viol.get((key, frame))
                if lit is None:
                    with cnf.guard(cone.act):
                        lit = self._violation_lit_clauses(
                            clauses, cone.envs[frame], cnf)
                    cone.viol[(key, frame)] = lit
            else:
                lit = self._viol_lit(key, clauses, frame)
            violation_lits.append(lit)
        return violation_lits

    def _mutant_query(self, cone: _MutantCone, query_key,
                      violation_lits: list[int]) -> int:
        cnf = self._cnf
        query = cone.query.get(query_key)
        if query is None:
            query = cnf.new_var()
            cnf.add_clause([-query] + violation_lits)
            cone.query[query_key] = query
        return query

    def check_mutant(self, act: int, clauses: Clauses, bound: int,
                     max_conflicts: int = 2_000_000) -> BmcResult:
        """Bounded-check an invariant on the mutant behind ``act``.

        The result carries no trace (PCC only needs the verdict).
        """
        self._validate_clauses(clauses, self.netlist)
        text = property_text(clauses)
        cone = self._mutants[act]
        self._extend_cone(cone, bound)
        cnf = self._cnf
        key = tuple(tuple(clause) for clause in clauses)
        violation_lits = self._mutant_viol_lits(cone, clauses, bound)
        query = self._mutant_query(cone, (key, bound), violation_lits)

        solver = cnf.solver
        solver.num_vars = max(solver.num_vars, cnf.num_vars)
        result = solver.solve([cone.act, query], max_conflicts=max_conflicts)
        if result is SatResult.UNKNOWN:
            return BmcResult(text, bound, violated=False,
                             solver_result=SatResult.UNKNOWN)
        return BmcResult(text, bound, violated=result is SatResult.SAT,
                         solver_result=result)

    def check_mutant_any(self, act: int, properties: list[Clauses],
                         bound: int,
                         max_conflicts: int = 2_000_000) -> SatResult:
        """One aggregate query: can the mutant violate ANY of ``properties``?

        UNSAT means the mutant survives the whole set -- the common PCC
        outcome -- for the price of a single solver call.  On SAT the
        caller still runs :meth:`check_mutant` per property to attribute
        the kill; on UNKNOWN it should fall back to per-property checks.
        """
        for clauses in properties:
            self._validate_clauses(clauses, self.netlist)
        cone = self._mutants[act]
        self._extend_cone(cone, bound)
        cnf = self._cnf
        all_lits: list[int] = []
        for clauses in properties:
            all_lits.extend(self._mutant_viol_lits(cone, clauses, bound))
        agg_key = ("any",
                   tuple(tuple(tuple(c) for c in clauses)
                         for clauses in properties),
                   bound)
        query = self._mutant_query(cone, agg_key, all_lits)
        solver = cnf.solver
        solver.num_vars = max(solver.num_vars, cnf.num_vars)
        return solver.solve([cone.act, query], max_conflicts=max_conflicts)

    def retire_mutant(self, act: int) -> None:
        """Permanently disable a mutant cone's clauses."""
        self._mutants.pop(act)
        self._cnf.add_clause([-act])

    def _atom_lit(self, atom: Atom, env: dict[str, BitVector],
                  cnf: Cnf) -> int:
        name, op, value = atom
        vec = env[name]
        const = BitVector.constant(cnf, value & ((1 << self.word) - 1), self.word)
        if op == "==":
            return vec.eq(const)
        if op == "!=":
            return vec.ne(const)
        if op == "<":
            return self._lt_unsigned(vec, const, cnf)
        if op == "<=":
            return cnf.gate_or(self._lt_unsigned(vec, const, cnf), vec.eq(const))
        if op == ">":
            return self._lt_unsigned(const, vec, cnf)
        return cnf.gate_or(self._lt_unsigned(const, vec, cnf), vec.eq(const))

    def _violation_lit_clauses(self, clauses, env: dict[str, BitVector],
                               cnf: Cnf) -> int:
        """Literal true iff some clause is falsified in this frame."""
        clause_violations = []
        for clause in clauses:
            atom_lits = [self._atom_lit(a, env, cnf) for a in clause]
            clause_violations.append(-cnf.gate_or_many(atom_lits))
        return cnf.gate_or_many(clause_violations)

    @staticmethod
    def _violated_in(clauses, step: dict[str, int]) -> bool:
        import operator
        ops = {"==": operator.eq, "!=": operator.ne, "<": operator.lt,
               "<=": operator.le, ">": operator.gt, ">=": operator.ge}
        return any(
            not any(ops[op](step[name], value) for name, op, value in clause)
            for clause in clauses
        )
