"""SAT-based bounded model checking of RTL netlists.

Unrolls the netlist's transition relation ``k`` steps into CNF
(bit-blasting every expression at the netlist's uniform word width,
matching interpreted simulation exactly) and asks the CDCL solver for a
step violating an invariant.  A SAT answer yields a concrete
counter-example trace (register/input values per step); UNSAT up to
``k`` is a bounded proof.

Invariants are conjunctions of atomic predicates ``signal <op> const``
over netlist signals — the property shape the paper's level-4 interface
checks use (``AG (handshake consistent)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.rtl.netlist import (
    BinExpr,
    ConstExpr,
    Expr,
    MuxExpr,
    Netlist,
    SigExpr,
    UnExpr,
)
from repro.verify.cnf import BitVector, Cnf
from repro.verify.sat import SatResult


@dataclass
class BmcResult:
    """Outcome of one bounded check."""

    property_text: str
    bound: int
    violated: bool
    #: step-indexed signal valuations when violated
    trace: list[dict[str, int]] = field(default_factory=list)
    solver_result: SatResult = SatResult.UNSAT

    @property
    def holds_up_to_bound(self) -> bool:
        return not self.violated and self.solver_result is not SatResult.UNKNOWN

    def to_dict(self) -> dict:
        return {
            "property": self.property_text,
            "bound": self.bound,
            "violated": self.violated,
            "holds_up_to_bound": self.holds_up_to_bound,
            "solver": self.solver_result.name,
        }

    def describe(self) -> str:
        if self.violated:
            lines = [
                f"BMC: {self.property_text} VIOLATED at bound {self.bound}",
                "  counter-example:",
            ]
            for i, step in enumerate(self.trace):
                shown = {k: step[k] for k in sorted(step)}
                lines.append(f"    cycle {i}: {shown}")
            return "\n".join(lines)
        return f"BMC: {self.property_text} holds for all traces of length <= {self.bound}"


_OPS = ("==", "!=", "<", "<=", ">", ">=")


class BoundedModelChecker:
    """BMC engine for one netlist."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self.word = netlist.word_width

    # -- expression bit-blasting ---------------------------------------------------

    def _blast(self, expr: Expr, env: dict[str, BitVector], cnf: Cnf) -> BitVector:
        word = self.word
        if isinstance(expr, ConstExpr):
            value = expr.value & ((1 << expr.width) - 1)
            return BitVector.constant(cnf, value, word)
        if isinstance(expr, SigExpr):
            return env[expr.name]
        if isinstance(expr, UnExpr):
            operand = self._blast(expr.operand, env, cnf)
            if expr.op == "~":
                return operand.bit_not()
            bit = operand.is_zero()
            return self._bool_to_vec(bit, cnf)
        if isinstance(expr, MuxExpr):
            sel = self._blast(expr.sel, env, cnf).is_nonzero()
            then = self._blast(expr.then, env, cnf)
            other = self._blast(expr.other, env, cnf)
            return then.ite(sel, other)
        if isinstance(expr, BinExpr):
            left = self._blast(expr.left, env, cnf)
            right = self._blast(expr.right, env, cnf)
            return self._blast_binop(expr.op, left, right, expr.right, cnf)
        raise TypeError(f"cannot bit-blast {expr!r}")  # pragma: no cover

    def _blast_binop(self, op: str, left: BitVector, right: BitVector,
                     right_expr: Expr, cnf: Cnf) -> BitVector:
        if op == "+":
            return left.add(right)
        if op == "-":
            return left.sub(right)
        if op == "*":
            return left.mul(right)
        if op == "&":
            return left.bit_and(right)
        if op == "|":
            return left.bit_or(right)
        if op == "^":
            return left.bit_xor(right)
        if op in ("<<", ">>"):
            if not isinstance(right_expr, ConstExpr):
                raise TypeError("BMC supports shifts by constants only")
            amount = right_expr.value
            if op == "<<":
                return left.shift_left_const(amount)
            return left.shift_right_const(amount, arithmetic=False)
        if op == "==":
            return self._bool_to_vec(left.eq(right), cnf)
        if op == "!=":
            return self._bool_to_vec(left.ne(right), cnf)
        if op == "<":
            return self._bool_to_vec(self._lt_unsigned(left, right, cnf), cnf)
        if op == "<=":
            lt = self._lt_unsigned(left, right, cnf)
            return self._bool_to_vec(cnf.gate_or(lt, left.eq(right)), cnf)
        raise TypeError(f"cannot bit-blast operator {op!r}")  # pragma: no cover

    def _lt_unsigned(self, left: BitVector, right: BitVector, cnf: Cnf) -> int:
        """Unsigned comparison via MSB-first prefix equality."""
        result = cnf.false_lit
        prefix_eq = cnf.true_lit
        for a, b in zip(reversed(left.bits), reversed(right.bits)):
            here = cnf.gate_and(prefix_eq, cnf.gate_and(-a, b))
            result = cnf.gate_or(result, here)
            prefix_eq = cnf.gate_and(prefix_eq, cnf.gate_eq(a, b))
        return result

    def _bool_to_vec(self, bit: int, cnf: Cnf) -> BitVector:
        bits = [bit] + [cnf.false_lit] * (self.word - 1)
        return BitVector(cnf, bits)

    # -- unrolling ------------------------------------------------------------------------

    def _frame(self, cnf: Cnf, regs: dict[str, BitVector]
               ) -> tuple[dict[str, BitVector], dict[str, BitVector]]:
        """One time frame: free inputs + wires; returns (env, next regs)."""
        env: dict[str, BitVector] = dict(regs)
        for name, width in self.netlist.inputs.items():
            vec = BitVector.fresh(cnf, self.word)
            # Constrain bits above the declared input width to zero.
            for bit in vec.bits[width:]:
                cnf.assert_lit(-bit)
            env[name] = vec
        for name in self.netlist.wire_order():
            width, expr = self.netlist.wires[name]
            value = self._blast(expr, env, cnf)
            env[name] = self._truncate(value, width, cnf)
        nxt: dict[str, BitVector] = {}
        for reg in self.netlist.registers.values():
            value = self._blast(reg.next_expr, env, cnf)
            nxt[reg.name] = self._truncate(value, reg.width, cnf)
        return env, nxt

    def _truncate(self, vec: BitVector, width: int, cnf: Cnf) -> BitVector:
        if width >= self.word:
            return vec
        bits = vec.bits[:width] + [cnf.false_lit] * (self.word - width)
        return BitVector(cnf, bits)

    # -- checking ----------------------------------------------------------------------------

    def check_invariant(
        self,
        atoms: list[tuple[str, str, int]],
        bound: int,
        max_conflicts: int = 2_000_000,
    ) -> BmcResult:
        """Check the invariant ``AND(signal op const)`` for ``bound`` steps."""
        return self.check_invariant_clauses([[a] for a in atoms], bound,
                                            max_conflicts)

    def check_invariant_clauses(
        self,
        clauses: list[list[tuple[str, str, int]]],
        bound: int,
        max_conflicts: int = 2_000_000,
    ) -> BmcResult:
        """Check an invariant in CNF over atoms: AND over clauses of
        OR over ``(signal, op, const)`` atoms.

        Implications are written as clauses: ``a -> b`` is
        ``[negate(a), b]``.  Returns a violation trace if some reachable
        step within the bound falsifies any clause.
        """
        for clause in clauses:
            if not clause:
                raise ValueError("empty clause is unsatisfiable")
            for name, op, __ in clause:
                if op not in _OPS:
                    raise ValueError(f"bad operator {op!r}")
                self.netlist.width_of(name)  # raises on unknown signal
        text = " && ".join(
            "(" + " || ".join(f"{n} {op} {v}" for n, op, v in clause) + ")"
            if len(clause) > 1 else
            " || ".join(f"{n} {op} {v}" for n, op, v in clause)
            for clause in clauses
        )

        cnf = Cnf()
        regs: dict[str, BitVector] = {}
        for reg in self.netlist.registers.values():
            vec = BitVector.constant(cnf, reg.reset, self.word)
            regs[reg.name] = vec
        violation_lits: list[int] = []
        frames: list[dict[str, BitVector]] = []
        for __ in range(bound + 1):
            env, next_regs = self._frame(cnf, regs)
            frames.append(env)
            violation_lits.append(self._violation_lit_clauses(clauses, env, cnf))
            regs = next_regs
        cnf.add_clause(violation_lits)

        result, model = cnf.solve(max_conflicts=max_conflicts)
        if result is SatResult.UNSAT:
            return BmcResult(text, bound, violated=False)
        if result is SatResult.UNKNOWN:
            return BmcResult(text, bound, violated=False,
                             solver_result=SatResult.UNKNOWN)
        trace = []
        for env in frames:
            step = {}
            for name in list(self.netlist.inputs) + list(self.netlist.registers) \
                    + list(self.netlist.wires):
                vec = env[name]
                raw = vec.value_in(model)
                width = self.netlist.width_of(name)
                step[name] = raw & ((1 << width) - 1)
            trace.append(step)
            if self._violated_in(clauses, step):
                break
        return BmcResult(text, bound, violated=True, trace=trace,
                         solver_result=SatResult.SAT)

    def _atom_lit(self, atom: tuple[str, str, int], env: dict[str, BitVector],
                  cnf: Cnf) -> int:
        name, op, value = atom
        vec = env[name]
        const = BitVector.constant(cnf, value & ((1 << self.word) - 1), self.word)
        if op == "==":
            return vec.eq(const)
        if op == "!=":
            return vec.ne(const)
        if op == "<":
            return self._lt_unsigned(vec, const, cnf)
        if op == "<=":
            return cnf.gate_or(self._lt_unsigned(vec, const, cnf), vec.eq(const))
        if op == ">":
            return self._lt_unsigned(const, vec, cnf)
        return cnf.gate_or(self._lt_unsigned(const, vec, cnf), vec.eq(const))

    def _violation_lit_clauses(self, clauses, env: dict[str, BitVector],
                               cnf: Cnf) -> int:
        """Literal true iff some clause is falsified in this frame."""
        clause_violations = []
        for clause in clauses:
            atom_lits = [self._atom_lit(a, env, cnf) for a in clause]
            clause_violations.append(-cnf.gate_or_many(atom_lits))
        return cnf.gate_or_many(clause_violations)

    @staticmethod
    def _violated_in(clauses, step: dict[str, int]) -> bool:
        import operator
        ops = {"==": operator.eq, "!=": operator.ne, "<": operator.lt,
               "<=": operator.le, ">": operator.gt, ">=": operator.ge}
        return any(
            not any(ops[op](step[name], value) for name, op, value in clause)
            for clause in clauses
        )
