"""CTL property language.

The property vocabulary of a RuleBase-class tool, reduced to CTL:
atomic predicates over state valuations, Boolean connectives, and the
temporal operators EX/EG/EU (primitive) with AX/AF/AG/EF/AU derived.

Atoms are predicates over the state valuation dictionary, e.g.::

    Atom("done == 1", lambda v: v["done"] == 1)
    parse_atom("state != 3")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable


class Formula:
    """Base class of CTL formulas; ``str()`` renders the property text."""

    __slots__ = ()


@dataclass(frozen=True)
class Atom(Formula):
    text: str
    predicate: Callable[[dict[str, int]], bool] = field(compare=False)

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


def Implies(left: Formula, right: Formula) -> Formula:
    """Sugar: ``left -> right``."""
    return Or(Not(left), right)


@dataclass(frozen=True)
class EX(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"EX ({self.operand})"


@dataclass(frozen=True)
class EG(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"EG ({self.operand})"


@dataclass(frozen=True)
class EU(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"E [{self.left} U {self.right}]"


def EF(operand: Formula) -> Formula:
    """EF p == E [true U p]."""
    return EU(TRUE, operand)


def AX(operand: Formula) -> Formula:
    """AX p == !EX !p."""
    return Not(EX(Not(operand)))


def AG(operand: Formula) -> Formula:
    """AG p == !EF !p."""
    return Not(EF(Not(operand)))


def AF(operand: Formula) -> Formula:
    """AF p == !EG !p."""
    return Not(EG(Not(operand)))


def AU(left: Formula, right: Formula) -> Formula:
    """A [p U q] == !(E [!q U (!p && !q)] || EG !q)."""
    return Not(Or(EU(Not(right), And(Not(left), Not(right))), EG(Not(right))))


TRUE = Atom("true", lambda __: True)
FALSE = Atom("false", lambda __: False)

_ATOM_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z_0-9.]*)\s*"
    r"(?P<op>==|!=|<=|>=|<|>)\s*(?P<value>-?\d+)\s*$"
)

_OPS: dict[str, Callable[[int, int], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def parse_atom(text: str) -> Atom:
    """Parse ``"signal <op> constant"`` into an :class:`Atom`.

    >>> parse_atom("done == 1").text
    'done == 1'
    """
    match = _ATOM_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse atomic proposition {text!r}")
    name = match.group("name")
    op = _OPS[match.group("op")]
    value = int(match.group("value"))

    def predicate(valuation: dict[str, int], name=name, op=op, value=value) -> bool:
        if name not in valuation:
            raise KeyError(f"atomic proposition over unknown signal {name!r}")
        return op(valuation[name], value)

    return Atom(text.strip(), predicate)
