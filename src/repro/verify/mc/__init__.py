"""Model checking (level-4 verification).

*"Depending on the architecture chosen at level 2, some properties are
defined to formally check the correctness of the HW/SW interface.  Model
checking and SAT solving are used at this level [8][9]."*

- :mod:`~repro.verify.mc.kripke` — Kripke structures, including
  extraction from RTL netlists by explicit state enumeration;
- :mod:`~repro.verify.mc.ctl` — a CTL property language (AG/AF/EF/EG/
  EX/EU and Boolean combinations over atomic signal predicates);
- :mod:`~repro.verify.mc.explicit` — fixpoint CTL checking with
  counter-example paths for refuted universal properties;
- :mod:`~repro.verify.mc.bmc` — SAT-based bounded model checking of
  netlist invariants (the "SAT solving" of the paper's level 4).
"""

from repro.verify.mc.kripke import KripkeStructure, kripke_from_netlist
from repro.verify.mc.ctl import (
    AF,
    AG,
    AU,
    AX,
    EF,
    EG,
    EU,
    EX,
    And,
    Atom,
    Formula,
    Implies,
    Not,
    Or,
    parse_atom,
)
from repro.verify.mc.explicit import CheckOutcome, ExplicitModelChecker
from repro.verify.mc.bmc import BmcResult, BoundedModelChecker

__all__ = [
    "KripkeStructure",
    "kripke_from_netlist",
    "AF", "AG", "AU", "AX", "EF", "EG", "EU", "EX",
    "And", "Atom", "Formula", "Implies", "Not", "Or", "parse_atom",
    "CheckOutcome",
    "ExplicitModelChecker",
    "BmcResult",
    "BoundedModelChecker",
]
