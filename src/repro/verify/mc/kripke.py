"""Kripke structures.

A finite transition system over which CTL is checked.  States are
opaque hashable objects; the labelling maps each state to the valuation
dictionary its atomic propositions are evaluated on.

:func:`kripke_from_netlist` extracts the reachable state graph of an RTL
netlist by explicit enumeration over all input valuations (inputs of a
few bits — the HW/SW interface FSMs the paper checks are exactly that
size).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Optional

from repro.rtl.netlist import Netlist


@dataclass
class KripkeStructure:
    """Explicit transition system with state valuations."""

    name: str
    initial: list[Hashable] = field(default_factory=list)
    transitions: dict[Hashable, list[Hashable]] = field(default_factory=dict)
    #: state -> {variable: value} used by atomic predicates
    valuations: dict[Hashable, dict[str, int]] = field(default_factory=dict)

    def add_state(self, state: Hashable, valuation: dict[str, int],
                  initial: bool = False) -> None:
        if state not in self.transitions:
            self.transitions[state] = []
        self.valuations[state] = dict(valuation)
        if initial and state not in self.initial:
            self.initial.append(state)

    def add_transition(self, src: Hashable, dst: Hashable) -> None:
        if src not in self.transitions or dst not in self.transitions:
            raise ValueError("both endpoints must be added before the transition")
        if dst not in self.transitions[src]:
            self.transitions[src].append(dst)

    @property
    def states(self) -> list[Hashable]:
        return list(self.transitions)

    def successors(self, state: Hashable) -> list[Hashable]:
        return self.transitions[state]

    def validate(self) -> None:
        if not self.initial:
            raise ValueError(f"kripke {self.name!r} has no initial states")
        for state, succs in self.transitions.items():
            if not succs:
                raise ValueError(
                    f"kripke {self.name!r}: state {state!r} has no successor; "
                    "add a self-loop for terminal states (CTL requires total "
                    "transition relations)"
                )

    def stats(self) -> dict[str, int]:
        return {
            "states": len(self.transitions),
            "transitions": sum(len(s) for s in self.transitions.values()),
            "initial": len(self.initial),
        }


def kripke_from_netlist(
    netlist: Netlist,
    input_values: Optional[dict[str, list[int]]] = None,
    max_states: int = 100_000,
    observe: Optional[Callable[[dict[str, int]], dict[str, int]]] = None,
) -> KripkeStructure:
    """Reachable-state Kripke structure of an RTL netlist.

    ``input_values`` lists, per input, the stimulus values the
    environment may apply each cycle (default: all values for 1-bit
    inputs, ``[0]`` otherwise — override for wider inputs).  The
    valuation of a state includes every register and, for determinism of
    atomic predicates over wires, the wire values under the *first*
    input choice; ``observe`` may replace that projection.
    """
    netlist.validate()
    input_values = dict(input_values or {})
    for name, width in netlist.inputs.items():
        if name not in input_values:
            input_values[name] = [0, 1] if width == 1 else [0]
    input_names = sorted(netlist.inputs)
    choices = list(itertools.product(*(input_values[n] for n in input_names)))
    if not choices:
        raise ValueError("empty input stimulus set")

    def freeze(state: dict[str, int]):
        return tuple(sorted(state.items()))

    def valuation_of(state: dict[str, int]) -> dict[str, int]:
        first_inputs = dict(zip(input_names, choices[0]))
        values = netlist.eval_combinational(state, first_inputs)
        return observe(values) if observe else values

    ks = KripkeStructure(f"kripke.{netlist.name}")
    init = netlist.reset_state()
    init_key = freeze(init)
    ks.add_state(init_key, valuation_of(init), initial=True)
    frontier = [init]
    seen = {init_key}
    while frontier:
        if len(seen) > max_states:
            raise ValueError(f"state space exceeds {max_states} states")
        state = frontier.pop()
        src_key = freeze(state)
        for combo in choices:
            inputs = dict(zip(input_names, combo))
            nxt, __ = netlist.step(state, inputs)
            dst_key = freeze(nxt)
            if dst_key not in seen:
                seen.add(dst_key)
                ks.add_state(dst_key, valuation_of(nxt))
                frontier.append(nxt)
            ks.add_transition(src_key, dst_key)
    ks.validate()
    return ks
