"""LPV: verification based on linear programming [7].

The paper uses LPV twice:

- at level 1, to prove **deadlock freeness**: the SystemC model is
  translated to an abstract model preserving communication and
  synchronisation, each deadlock situation becomes an unreachability
  property, and LP disposes of it (*"LPV being only able to deal with
  reachability problems"*);
- at level 2, to prove **real-time properties**: timing deadline
  achievement and FIFO channel dimensioning.

Our abstract model is a place/transition Petri net
(:mod:`~repro.verify.lpv.petri`); the application graph translates into
one with data and free-space places per channel
(:mod:`~repro.verify.lpv.translate`).  Unreachability proofs use the
state-equation LP relaxation with scipy
(:mod:`~repro.verify.lpv.reach`), deadlock hunting enumerates dead
markings and checks each (:mod:`~repro.verify.lpv.deadlock`), and the
real-time layer formulates longest-path / buffer-occupancy questions as
linear programs (:mod:`~repro.verify.lpv.realtime`).
"""

from repro.verify.lpv.petri import PetriNet, PetriError
from repro.verify.lpv.translate import graph_to_petri
from repro.verify.lpv.reach import (
    ReachabilityResult,
    ReachVerdict,
    check_submarking_unreachable,
    place_invariants,
)
from repro.verify.lpv.deadlock import DeadlockReport, check_deadlock_freedom
from repro.verify.lpv.realtime import (
    DeadlineReport,
    FifoSizingReport,
    check_deadline,
    size_fifos,
)
from repro.verify.lpv.bounds import (
    BoundsReport,
    PlaceBound,
    channel_bounds,
    place_bound,
)

__all__ = [
    "PetriNet",
    "PetriError",
    "graph_to_petri",
    "ReachabilityResult",
    "ReachVerdict",
    "check_submarking_unreachable",
    "place_invariants",
    "DeadlockReport",
    "check_deadlock_freedom",
    "DeadlineReport",
    "FifoSizingReport",
    "check_deadline",
    "size_fifos",
    "BoundsReport",
    "PlaceBound",
    "channel_bounds",
    "place_bound",
]
