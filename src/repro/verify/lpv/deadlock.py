"""Deadlock hunting via LP unreachability.

A marking is *dead* when every transition is disabled.  With unit arc
weights (our translated nets), a dead marking is witnessed by a set of
empty places hitting every transition's preset.  The checker explores
the tree of such witness sets with **LP-guided pruning**: adding an
emptiness constraint only shrinks the state-equation LP's feasible
region, so as soon as a partial witness set is proven unreachable the
entire subtree of dead-marking classes extending it is proven
unreachable in one LP call.

Complete witness sets whose LP stays feasible are *potential* deadlocks
(the state equation is necessary, not sufficient); a bounded token-game
search then tries to confirm them with a concrete firing sequence.

This mirrors the paper's description: deadlock situations are translated
into unreachability properties, automatically generated, and checked by
linear programming.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.verify.lpv.petri import PetriNet
from repro.verify.lpv.reach import (
    ReachVerdict,
    check_submarking_unreachable,
)


@dataclass
class DeadlockCandidate:
    """One dead-marking class that the LP could not exclude."""

    empty_places: frozenset[str]
    verdict: ReachVerdict
    confirmed_trace: Optional[list[str]] = None  # firing sequence to a dead marking

    @property
    def proven_impossible(self) -> bool:
        return self.verdict is ReachVerdict.UNREACHABLE


@dataclass
class DeadlockReport:
    """Result of the deadlock-freeness analysis."""

    net_name: str
    #: dead-marking classes the LP could not exclude
    candidates: list[DeadlockCandidate] = field(default_factory=list)
    #: subtrees of dead-marking classes proven unreachable (partial sets)
    pruned_proofs: int = 0
    #: complete classes individually proven unreachable
    proven_classes: int = 0
    lp_calls: int = 0
    truncated: bool = False

    @property
    def deadlock_free(self) -> bool:
        return not self.truncated and not self.candidates

    @property
    def confirmed(self) -> list[DeadlockCandidate]:
        return [c for c in self.candidates if c.confirmed_trace is not None]

    @property
    def unresolved(self) -> list[DeadlockCandidate]:
        return [c for c in self.candidates if c.confirmed_trace is None]

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lpv_deadlock/v1",
            "net": self.net_name,
            "deadlock_free": self.deadlock_free,
            "confirmed": [sorted(c.empty_places) for c in self.confirmed],
            "unresolved": [sorted(c.empty_places) for c in self.unresolved],
            "pruned_proofs": self.pruned_proofs,
            "proven_classes": self.proven_classes,
            "lp_calls": self.lp_calls,
            "truncated": self.truncated,
        }

    def describe(self) -> str:
        lines = [f"LPV deadlock analysis of {self.net_name}:"]
        if self.deadlock_free:
            lines.append(
                "  deadlock-free: every dead-marking class proven unreachable "
                f"({self.pruned_proofs} pruned subtrees, "
                f"{self.proven_classes} complete classes, {self.lp_calls} LP calls)"
            )
        else:
            for cand in self.confirmed:
                places = ", ".join(sorted(cand.empty_places))
                trace = " -> ".join(cand.confirmed_trace or [])
                lines.append(f"  CONFIRMED deadlock: empty({places}) via [{trace}]")
            for cand in self.unresolved:
                places = ", ".join(sorted(cand.empty_places))
                lines.append(f"  potential deadlock (LP inconclusive): empty({places})")
            if self.truncated:
                lines.append("  WARNING: exploration truncated")
        return "\n".join(lines)


def _confirm_by_search(net: PetriNet, empty_places: frozenset[str],
                       max_states: int = 20_000) -> Optional[list[str]]:
    """Bounded BFS in the token game for a dead marking with the places empty."""
    def freeze(marking: dict[str, int]):
        return tuple(sorted((p, v) for p, v in marking.items() if v))

    start = dict(net.initial_marking)
    seen = {freeze(start)}
    queue: list[tuple[dict[str, int], list[str]]] = [(start, [])]
    explored = 0
    while queue and explored < max_states:
        marking, path = queue.pop(0)
        explored += 1
        enabled = net.enabled_transitions(marking)
        if not enabled and all(marking.get(p, 0) == 0 for p in empty_places):
            return path
        for transition in enabled:
            successor = net.fire(marking, transition)
            key = freeze(successor)
            if key not in seen:
                seen.add(key)
                queue.append((successor, path + [transition]))
    return None


def check_deadlock_freedom(
    net: PetriNet,
    max_lp_calls: int = 20_000,
    confirm: bool = True,
) -> DeadlockReport:
    """Prove deadlock freeness or report (potential) deadlocks."""
    presets: list[frozenset[str]] = []
    for transition in net.transitions:
        preset = frozenset(net.preset(transition))
        if not preset:
            # A transition with no inputs can always fire: no deadlock at all.
            return DeadlockReport(net_name=net.name)
        presets.append(preset)
    # Branch on small presets first: conflicts surface earlier.
    presets.sort(key=len)

    report = DeadlockReport(net_name=net.name)
    seen_partial: set[frozenset[str]] = set()

    def lp_unreachable(places: frozenset[str]) -> bool:
        report.lp_calls += 1
        constraints = [(p, "==", 0) for p in sorted(places)]
        result = check_submarking_unreachable(net, constraints)
        return result.proven_unreachable

    def recurse(index: int, chosen: frozenset[str]) -> None:
        if report.truncated:
            return
        if report.lp_calls >= max_lp_calls:
            report.truncated = True
            return
        # Skip families already hit.
        while index < len(presets) and (presets[index] & chosen):
            index += 1
        if index == len(presets):
            # Complete dead-marking class.
            if lp_unreachable(chosen):
                report.proven_classes += 1
                return
            candidate = DeadlockCandidate(chosen, ReachVerdict.POSSIBLY_REACHABLE)
            if confirm:
                candidate.confirmed_trace = _confirm_by_search(net, chosen)
            report.candidates.append(candidate)
            return
        # LP pruning: if the partial set is already unreachable, the whole
        # subtree (every extension) is unreachable.
        if chosen and lp_unreachable(chosen):
            report.pruned_proofs += 1
            return
        for element in sorted(presets[index]):
            extended = chosen | {element}
            if extended in seen_partial:
                continue
            seen_partial.add(extended)
            recurse(index + 1, extended)

    recurse(0, frozenset())
    return report
