"""Translation of the application model into the LPV abstract model.

*"The SystemC model is translated in an abstract model where
communication and synchronization characteristics remains un-abstracted"*
(Section 3.1).  Computation is abstracted away entirely; what remains is
the token flow through bounded FIFO channels:

- each channel ``c`` with capacity ``k`` becomes two places,
  ``c.data`` (initially per ``initial_tokens``) and ``c.free``
  (initially ``k - initial``), so blocking writes on full FIFOs are
  captured;
- each task becomes one transition consuming a data token per input and
  a free slot per output (and returning the symmetric tokens);
- source tasks get a self-replenishing ``run`` place so they stay
  fireable (the environment keeps producing frames).
"""

from __future__ import annotations

from typing import Optional

from repro.platform.taskgraph import AppGraph
from repro.verify.lpv.petri import PetriNet


def graph_to_petri(
    graph: AppGraph,
    initial_tokens: Optional[dict[str, int]] = None,
    unbounded_sources: bool = True,
) -> PetriNet:
    """Build the communication-preserving Petri net of ``graph``.

    ``initial_tokens`` places data tokens on channels at start-up (used
    to model pre-loaded credits or pipeline priming).  With
    ``unbounded_sources`` source transitions are always enabled; disable
    it to model a finite stimulus budget.
    """
    graph.validate()
    initial = initial_tokens or {}
    net = PetriNet(f"lpv.{graph.name}")

    for chan in graph.channels.values():
        primed = initial.get(chan.name, 0)
        if primed > chan.capacity:
            raise ValueError(
                f"channel {chan.name!r}: initial tokens {primed} exceed "
                f"capacity {chan.capacity}"
            )
        net.add_place(f"{chan.name}.data", primed)
        net.add_place(f"{chan.name}.free", chan.capacity - primed)

    for task in graph.tasks.values():
        net.add_transition(task.name)
        for chan_name in task.reads:
            net.add_arc(f"{chan_name}.data", task.name)
            net.add_arc(task.name, f"{chan_name}.free")
        for chan_name in task.writes:
            net.add_arc(f"{chan_name}.free", task.name)
            net.add_arc(task.name, f"{chan_name}.data")
        if not task.reads and unbounded_sources:
            run_place = net.add_place(f"{task.name}.run", 1)
            net.add_arc(run_place, task.name)
            net.add_arc(task.name, run_place)
    return net
