"""Real-time properties by linear programming (level-2 LPV usage).

*"In that phase, LPV is used to prove real-time properties like timing
deadline achievement and FIFO channel dimensioning."* (Section 3.2)

Both properties are formulated as linear programs over the timed task
graph (annotated execution times + channel transfer times):

- **Deadline achievement**: per-frame completion times are the least
  solution of ``f_t >= f_src + transfer + exec_t``; solving
  ``min sum f`` with those constraints yields exactly the longest-path
  (critical-path) times.  The deadline property holds iff the latest
  sink completion is within the deadline; otherwise the tight
  constraints reconstruct the critical path as the counter-example.
- **FIFO dimensioning**: under self-timed periodic pipelining with
  initiation interval ``P`` (the slowest stage), a producer may run
  ahead of its consumer by the schedule skew; the minimal safe capacity
  of channel ``c`` is ``floor(skew / P) + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.platform.annotation import AnnotatedTask
from repro.platform.taskgraph import AppGraph


@dataclass
class DeadlineReport:
    """Outcome of the deadline-achievement check."""

    deadline_ps: int
    latency_ps: int
    holds: bool
    completion_ps: dict[str, int] = field(default_factory=dict)
    critical_path: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lpv_deadline/v1",
            "deadline_ps": self.deadline_ps,
            "latency_ps": self.latency_ps,
            "holds": self.holds,
            "critical_path": list(self.critical_path),
        }

    def describe(self) -> str:
        status = "PROVED" if self.holds else "VIOLATED"
        lines = [
            f"LPV deadline property: latency <= {self.deadline_ps} ps: {status}",
            f"  worst-case frame latency: {self.latency_ps} ps",
            f"  critical path: {' -> '.join(self.critical_path)}",
        ]
        return "\n".join(lines)


@dataclass
class FifoSizingReport:
    """Minimal safe FIFO capacities under pipelined execution."""

    period_ps: int
    capacities: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.lpv_fifo_sizing/v1",
            "period_ps": self.period_ps,
            "capacities": dict(sorted(self.capacities.items())),
        }

    def describe(self) -> str:
        lines = [f"LPV FIFO dimensioning (initiation interval {self.period_ps} ps):"]
        for chan, cap in sorted(self.capacities.items()):
            lines.append(f"  {chan}: capacity >= {cap}")
        return "\n".join(lines)


def _transfer_ps(graph: AppGraph, chan_name: str, ps_per_word: int) -> int:
    return graph.channels[chan_name].words_per_token * ps_per_word


def completion_times(
    graph: AppGraph,
    annotations: dict[str, AnnotatedTask],
    transfer_ps_per_word: int = 0,
) -> dict[str, int]:
    """Worst-case per-frame completion time of every task, via LP.

    Constraints: ``f_t - f_src >= transfer(c) + exec(t)`` for each
    channel ``c: src -> t`` and ``f_t >= exec(t)`` for sources.
    Minimising ``sum f`` makes every ``f_t`` exactly its longest-path
    value.
    """
    graph.validate()
    tasks = list(graph.tasks)
    index = {t: i for i, t in enumerate(tasks)}
    n = len(tasks)
    a_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    for chan in graph.channels.values():
        # f_src - f_dst <= -(transfer + exec_dst)
        row = np.zeros(n)
        row[index[chan.src]] = 1.0
        row[index[chan.dst]] = -1.0
        cost = _transfer_ps(graph, chan.name, transfer_ps_per_word)
        cost += annotations[chan.dst].time_per_firing_ps
        a_ub_rows.append(row)
        b_ub.append(-float(cost))
    bounds = []
    for t in tasks:
        exec_ps = annotations[t].time_per_firing_ps
        bounds.append((float(exec_ps), None))
    result = linprog(
        c=np.ones(n),
        A_ub=np.vstack(a_ub_rows) if a_ub_rows else None,
        b_ub=np.array(b_ub) if b_ub else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - DAG LPs are always feasible
        raise RuntimeError(f"linprog failed: {result.message}")
    return {t: int(round(result.x[index[t]])) for t in tasks}


def _critical_path(
    graph: AppGraph,
    annotations: dict[str, AnnotatedTask],
    completion: dict[str, int],
    transfer_ps_per_word: int,
    end_task: str,
) -> list[str]:
    """Walk tight constraints backwards from ``end_task``."""
    path = [end_task]
    current = end_task
    while True:
        step = None
        for chan in graph.in_channels(current):
            cost = _transfer_ps(graph, chan.name, transfer_ps_per_word)
            cost += annotations[current].time_per_firing_ps
            if completion[chan.src] + cost == completion[current]:
                step = chan.src
                break
        if step is None:
            break
        path.append(step)
        current = step
    path.reverse()
    return path


def check_deadline(
    graph: AppGraph,
    annotations: dict[str, AnnotatedTask],
    deadline_ps: int,
    transfer_ps_per_word: int = 0,
) -> DeadlineReport:
    """Prove (or refute) per-frame deadline achievement."""
    completion = completion_times(graph, annotations, transfer_ps_per_word)
    sinks = [t.name for t in graph.sinks()] or list(graph.tasks)
    worst_sink = max(sinks, key=lambda t: completion[t])
    latency = completion[worst_sink]
    return DeadlineReport(
        deadline_ps=deadline_ps,
        latency_ps=latency,
        holds=latency <= deadline_ps,
        completion_ps=completion,
        critical_path=_critical_path(
            graph, annotations, completion, transfer_ps_per_word, worst_sink
        ),
    )


def size_fifos(
    graph: AppGraph,
    annotations: dict[str, AnnotatedTask],
    transfer_ps_per_word: int = 0,
    period_ps: Optional[int] = None,
) -> FifoSizingReport:
    """Minimal safe capacity per channel under periodic pipelining."""
    completion = completion_times(graph, annotations, transfer_ps_per_word)
    if period_ps is None:
        period_ps = max(
            annotations[t].time_per_firing_ps for t in graph.tasks
        ) or 1
    period_ps = max(1, period_ps)
    capacities: dict[str, int] = {}
    for chan in graph.channels.values():
        produce_ps = completion[chan.src]
        consume_ps = completion[chan.dst]
        skew = max(0, consume_ps - produce_ps)
        capacities[chan.name] = int(skew // period_ps) + 1
    return FifoSizingReport(period_ps=period_ps, capacities=capacities)
