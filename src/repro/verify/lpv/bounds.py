"""Structural bounds on place markings (LP, companion to FIFO sizing).

For a place ``p``, the LP

    maximise M[p]   s.t.   M = M0 + C sigma,  sigma >= 0,  M >= 0

over-approximates the highest token count any reachable marking can put
on ``p`` (the state equation is a relaxation, so the LP optimum is an
upper bound; unbounded LP means the structure cannot bound the place).
Applied to the ``<channel>.data`` places of a translated application
net, this yields *formally safe* FIFO capacities: the channel can never
hold more tokens than the bound, whatever the schedule — a stronger,
schedule-independent counterpart of
:func:`repro.verify.lpv.realtime.size_fifos`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.verify.lpv.petri import PetriNet


@dataclass
class PlaceBound:
    """LP bound for one place; ``None`` = structurally unbounded."""

    place: str
    bound: Optional[int]

    @property
    def bounded(self) -> bool:
        return self.bound is not None


@dataclass
class BoundsReport:
    """Bounds for a set of places."""

    net_name: str
    bounds: dict[str, PlaceBound] = field(default_factory=dict)

    @property
    def all_bounded(self) -> bool:
        return all(b.bounded for b in self.bounds.values())

    def describe(self) -> str:
        lines = [f"LPV structural place bounds for {self.net_name}:"]
        for name in sorted(self.bounds):
            bound = self.bounds[name]
            rendered = str(bound.bound) if bound.bounded else "unbounded"
            lines.append(f"  {name}: <= {rendered}")
        return "\n".join(lines)


def place_bound(net: PetriNet, place: str) -> PlaceBound:
    """LP upper bound on the reachable marking of ``place``."""
    if place not in net.places:
        raise ValueError(f"unknown place {place!r}")
    c_matrix = net.incidence_matrix().astype(float)
    m0 = net.marking_vector().astype(float)
    n_places, n_transitions = c_matrix.shape
    pi = net.place_index()
    n_vars = n_transitions + n_places
    # Variables: [sigma | M]; equality M - C sigma = M0.
    a_eq = np.hstack([-c_matrix, np.eye(n_places)])
    objective = np.zeros(n_vars)
    objective[n_transitions + pi[place]] = -1.0  # maximise M[place]
    result = linprog(
        c=objective,
        A_eq=a_eq,
        b_eq=m0,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    if result.status == 3:  # unbounded
        return PlaceBound(place, None)
    if not result.success:  # pragma: no cover - solver trouble
        raise RuntimeError(f"linprog failed: {result.message}")
    return PlaceBound(place, int(math.floor(-result.fun + 1e-9)))


def channel_bounds(net: PetriNet, channels: Optional[list[str]] = None) -> BoundsReport:
    """Bounds for every ``<channel>.data`` place of a translated net.

    ``channels`` (channel base names) restricts the computation.
    """
    report = BoundsReport(net_name=net.name)
    targets = []
    for place in net.places:
        if not place.endswith(".data"):
            continue
        base = place[: -len(".data")]
        if channels is not None and base not in channels:
            continue
        targets.append(place)
    for place in targets:
        report.bounds[place] = place_bound(net, place)
    return report
