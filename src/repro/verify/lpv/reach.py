"""LP-based unreachability proofs (the LPV core).

For a net with incidence matrix ``C`` and initial marking ``M0``, any
reachable marking ``M`` satisfies the *state equation*

    M = M0 + C @ sigma,    sigma >= 0,    M >= 0

for some firing-count vector ``sigma``.  The equation is necessary but
not sufficient; therefore **infeasibility of the LP relaxation proves
unreachability** — exactly the one-sided reasoning the paper ascribes to
LPV ("each deadlock situation being translated in an unreachability
property").  Feasibility is inconclusive and reported as such.

Place invariants (non-negative ``y`` with ``y^T C = 0``) are computed by
the Farkas procedure; they both strengthen proofs and document the
conservation laws of the model (e.g. ``data + free = capacity`` for every
channel).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.verify.lpv.petri import PetriNet


class ReachVerdict(enum.Enum):
    """Outcome of one unreachability check."""

    UNREACHABLE = "unreachable"      # LP infeasible: proof
    POSSIBLY_REACHABLE = "possibly"  # LP feasible: inconclusive


@dataclass
class ReachabilityResult:
    """One checked submarking."""

    verdict: ReachVerdict
    constraints: tuple[tuple[str, str, int], ...]
    #: a fractional firing-count witness when the LP is feasible
    sigma: Optional[dict[str, float]] = None

    @property
    def proven_unreachable(self) -> bool:
        return self.verdict is ReachVerdict.UNREACHABLE


_OPS = ("==", "<=", ">=")


def check_submarking_unreachable(
    net: PetriNet,
    constraints: list[tuple[str, str, int]],
) -> ReachabilityResult:
    """Check whether any reachable marking satisfies ``constraints``.

    ``constraints`` are triples ``(place, op, value)`` with op one of
    ``==``, ``<=``, ``>=``.  Returns a proof of unreachability (LP
    infeasible) or a POSSIBLY_REACHABLE verdict with the LP witness.
    """
    for place, op, value in constraints:
        if op not in _OPS:
            raise ValueError(f"bad constraint op {op!r}")
        if place not in net.places:
            raise ValueError(f"unknown place {place!r}")

    c_matrix = net.incidence_matrix().astype(float)
    m0 = net.marking_vector().astype(float)
    n_places, n_transitions = c_matrix.shape
    pi = net.place_index()

    # Variables: sigma (n_transitions), M (n_places).
    n_vars = n_transitions + n_places
    # Equality: M - C sigma = M0  ->  [-C | I] x = M0
    a_eq = np.hstack([-c_matrix, np.eye(n_places)])
    b_eq = m0.copy()
    a_ub_rows: list[np.ndarray] = []
    b_ub: list[float] = []
    eq_rows: list[np.ndarray] = [a_eq]
    eq_rhs: list[np.ndarray] = [b_eq]

    extra_eq_rows: list[np.ndarray] = []
    extra_eq_rhs: list[float] = []
    for place, op, value in constraints:
        row = np.zeros(n_vars)
        row[n_transitions + pi[place]] = 1.0
        if op == "==":
            extra_eq_rows.append(row)
            extra_eq_rhs.append(float(value))
        elif op == "<=":
            a_ub_rows.append(row)
            b_ub.append(float(value))
        else:  # ">="
            a_ub_rows.append(-row)
            b_ub.append(-float(value))

    a_eq_full = np.vstack([a_eq] + [r.reshape(1, -1) for r in extra_eq_rows]) \
        if extra_eq_rows else a_eq
    b_eq_full = np.concatenate([b_eq, np.array(extra_eq_rhs)]) \
        if extra_eq_rhs else b_eq
    a_ub = np.vstack(a_ub_rows) if a_ub_rows else None
    b_ub_arr = np.array(b_ub) if a_ub_rows else None

    result = linprog(
        c=np.zeros(n_vars),
        A_ub=a_ub,
        b_ub=b_ub_arr,
        A_eq=a_eq_full,
        b_eq=b_eq_full,
        bounds=[(0, None)] * n_vars,
        method="highs",
    )
    frozen = tuple(constraints)
    if result.status == 2:  # infeasible
        return ReachabilityResult(ReachVerdict.UNREACHABLE, frozen)
    if not result.success:  # pragma: no cover - solver trouble
        raise RuntimeError(f"linprog failed: {result.message}")
    sigma = {
        t: float(result.x[i])
        for i, t in enumerate(net.transitions)
        if result.x[i] > 1e-9
    }
    return ReachabilityResult(ReachVerdict.POSSIBLY_REACHABLE, frozen, sigma)


def place_invariants(net: PetriNet, max_invariants: int = 200) -> list[dict[str, int]]:
    """Non-negative integer place invariants (P-semiflows), Farkas style.

    Returns minimal-support invariants ``y`` (as place->weight dicts)
    satisfying ``y^T C = 0``.  Every invariant yields a conservation law
    ``sum_p y_p M_p = const`` holding in all reachable markings.
    """
    c_matrix = net.incidence_matrix()
    n_places, n_transitions = c_matrix.shape
    # Rows: [y | y^T C] over the rationals; start with identity.
    rows: list[tuple[list[Fraction], list[Fraction]]] = []
    for p in range(n_places):
        y = [Fraction(int(p == i)) for i in range(n_places)]
        image = [Fraction(int(c_matrix[p, t])) for t in range(n_transitions)]
        rows.append((y, image))
    for t in range(n_transitions):
        positive = [r for r in rows if r[1][t] > 0]
        negative = [r for r in rows if r[1][t] < 0]
        keep = [r for r in rows if r[1][t] == 0]
        combos = []
        for yp, ip in positive:
            for yn, im in negative:
                alpha, beta = -im[t], ip[t]
                y = [alpha * a + beta * b for a, b in zip(yp, yn)]
                image = [alpha * a + beta * b for a, b in zip(ip, im)]
                combos.append((y, image))
                if len(keep) + len(combos) > max_invariants * 4:
                    break
            else:
                continue
            break
        rows = keep + combos
        rows = _minimal_support(rows)
        if len(rows) > max_invariants * 4:
            rows = rows[: max_invariants * 4]
    invariants = []
    for y, image in rows:
        if all(v == 0 for v in image) and any(v > 0 for v in y):
            denom_lcm = 1
            for v in y:
                if v != 0:
                    denom_lcm = denom_lcm * v.denominator // np.gcd(
                        denom_lcm, v.denominator
                    )
            ints = [int(v * denom_lcm) for v in y]
            g = 0
            for v in ints:
                g = int(np.gcd(g, v))
            if g > 1:
                ints = [v // g for v in ints]
            invariants.append({
                net.places[i]: ints[i] for i in range(n_places) if ints[i]
            })
    # Deduplicate.
    unique = []
    seen = set()
    for inv in invariants:
        key = tuple(sorted(inv.items()))
        if key not in seen:
            seen.add(key)
            unique.append(inv)
    return unique[:max_invariants]


def _minimal_support(rows):
    """Drop rows whose support strictly contains another row's support."""
    supports = [frozenset(i for i, v in enumerate(y) if v != 0) for y, __ in rows]
    keep = []
    for i, row in enumerate(rows):
        if not supports[i]:
            continue
        dominated = any(
            j != i and supports[j] < supports[i] for j in range(len(rows))
        )
        if not dominated:
            keep.append(row)
    return keep


def invariant_token_count(net: PetriNet, invariant: dict[str, int]) -> int:
    """The conserved quantity ``y^T M0`` of an invariant."""
    return sum(
        weight * net.initial_marking.get(place, 0)
        for place, weight in invariant.items()
    )
