"""Place/transition Petri nets.

The LPV abstract model: places carry tokens, transitions consume and
produce them.  The class keeps the incidence matrix for the LP machinery
and provides token-game simulation for validating translations against
the executable model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class PetriError(ValueError):
    """Raised for malformed nets or illegal firings."""


@dataclass
class PetriNet:
    """A P/T net with integer arc weights."""

    name: str
    places: list[str] = field(default_factory=list)
    transitions: list[str] = field(default_factory=list)
    #: arcs[(place, transition)] = weight consumed; arcs[(transition, place)] = produced
    input_arcs: dict[tuple[str, str], int] = field(default_factory=dict)
    output_arcs: dict[tuple[str, str], int] = field(default_factory=dict)
    initial_marking: dict[str, int] = field(default_factory=dict)

    # -- construction -----------------------------------------------------------

    def add_place(self, name: str, tokens: int = 0) -> str:
        if name in self.places:
            raise PetriError(f"duplicate place {name!r}")
        if tokens < 0:
            raise PetriError(f"negative initial marking for {name!r}")
        self.places.append(name)
        self.initial_marking[name] = tokens
        return name

    def add_transition(self, name: str) -> str:
        if name in self.transitions:
            raise PetriError(f"duplicate transition {name!r}")
        self.transitions.append(name)
        return name

    def add_arc(self, src: str, dst: str, weight: int = 1) -> None:
        """Arc place->transition (input) or transition->place (output)."""
        if weight < 1:
            raise PetriError("arc weight must be >= 1")
        if src in self.places and dst in self.transitions:
            self.input_arcs[(src, dst)] = self.input_arcs.get((src, dst), 0) + weight
        elif src in self.transitions and dst in self.places:
            self.output_arcs[(src, dst)] = self.output_arcs.get((src, dst), 0) + weight
        else:
            raise PetriError(f"arc {src!r}->{dst!r} must connect place and transition")

    # -- matrices ---------------------------------------------------------------------

    def place_index(self) -> dict[str, int]:
        return {p: i for i, p in enumerate(self.places)}

    def transition_index(self) -> dict[str, int]:
        return {t: i for i, t in enumerate(self.transitions)}

    def incidence_matrix(self) -> np.ndarray:
        """C[p, t] = produced - consumed."""
        pi, ti = self.place_index(), self.transition_index()
        c = np.zeros((len(self.places), len(self.transitions)), dtype=np.int64)
        for (p, t), w in self.input_arcs.items():
            c[pi[p], ti[t]] -= w
        for (t, p), w in self.output_arcs.items():
            c[pi[p], ti[t]] += w
        return c

    def marking_vector(self, marking: Optional[dict[str, int]] = None) -> np.ndarray:
        marking = marking if marking is not None else self.initial_marking
        pi = self.place_index()
        m = np.zeros(len(self.places), dtype=np.int64)
        for place, tokens in marking.items():
            if place not in pi:
                raise PetriError(f"unknown place {place!r}")
            m[pi[place]] = tokens
        return m

    # -- token game -----------------------------------------------------------------------

    def preset(self, transition: str) -> dict[str, int]:
        return {
            p: w for (p, t), w in self.input_arcs.items() if t == transition
        }

    def postset(self, transition: str) -> dict[str, int]:
        return {
            p: w for (t, p), w in self.output_arcs.items() if t == transition
        }

    def enabled(self, marking: dict[str, int], transition: str) -> bool:
        return all(
            marking.get(p, 0) >= w for p, w in self.preset(transition).items()
        )

    def enabled_transitions(self, marking: dict[str, int]) -> list[str]:
        return [t for t in self.transitions if self.enabled(marking, t)]

    def fire(self, marking: dict[str, int], transition: str) -> dict[str, int]:
        """Fire ``transition``; returns the successor marking."""
        if not self.enabled(marking, transition):
            raise PetriError(f"transition {transition!r} not enabled")
        new = dict(marking)
        for p, w in self.preset(transition).items():
            new[p] = new.get(p, 0) - w
        for p, w in self.postset(transition).items():
            new[p] = new.get(p, 0) + w
        return new

    def is_dead(self, marking: dict[str, int]) -> bool:
        """No transition enabled: a deadlock marking."""
        return not self.enabled_transitions(marking)

    def run_greedy(self, max_firings: int = 10_000) -> tuple[dict[str, int], int]:
        """Fire deterministically (first enabled) until dead or budget.

        Used to validate translations; returns (final marking, firings).
        """
        marking = dict(self.initial_marking)
        fired = 0
        while fired < max_firings:
            enabled = self.enabled_transitions(marking)
            if not enabled:
                return marking, fired
            marking = self.fire(marking, enabled[0])
            fired += 1
        return marking, fired

    def describe(self) -> str:
        lines = [
            f"petri net {self.name}: {len(self.places)} places, "
            f"{len(self.transitions)} transitions"
        ]
        for place in self.places:
            tokens = self.initial_marking.get(place, 0)
            if tokens:
                lines.append(f"  {place}: {tokens} token(s)")
        return "\n".join(lines)
