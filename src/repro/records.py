"""repro.records — one typed layer over every persisted record shape.

Store entry envelopes (:mod:`repro.store`), service job records
(:mod:`repro.service.queue`) and fleet lease/runner stats
(:mod:`repro.fleet.coordinator`) grew up as three ad-hoc dict shapes in
three modules.  This module is their single source of truth: a frozen
(or, for live counters, mutable) dataclass per shape, each with a
stable ``SCHEMA`` id, a ``to_dict()`` that reproduces the historical
wire/disk shape **byte-for-byte** (every document in the system is
serialized with ``sort_keys=True``, so byte compatibility reduces to
key-set and value compatibility — pinned by the golden fixtures under
``tests/golden/``), and a validating ``from_dict()``.

The producers keep building documents through these classes; the
:mod:`repro.ledger` fact extractor consumes them, so a field added or
renamed here is the *one* place the whole provenance story changes.

Schema ids:

- ``repro.store_entry/v1``  — :class:`StoreEntry`
- ``repro.service_job/v1``  — :class:`JobRecord`
- ``repro.fleet_lease/v1``  — :class:`Lease` (the on-record lease doc;
  the id is nominal — lease docs ride inside job records and never
  carry a ``schema`` key themselves)
- ``repro.fleet_runner/v1`` — :class:`RunnerStats` (ditto: rows inside
  ``/v1/stats``, no embedded ``schema`` key)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: Schema tag of every store entry envelope.
ENTRY_SCHEMA = "repro.store_entry/v1"
#: Schema tag of every service job record.
JOB_SCHEMA = "repro.service_job/v1"
#: Nominal schema ids of the embedded (schema-key-less) record shapes.
LEASE_SCHEMA = "repro.fleet_lease/v1"
RUNNER_SCHEMA = "repro.fleet_runner/v1"

#: The statuses a store entry envelope may carry.
ENTRY_STATUSES = ("ok", "error")
#: Every state a job record can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a job never leaves on its own (re-submission re-queues them).
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


def _require_mapping(document: Any, what: str) -> Mapping:
    if not isinstance(document, Mapping):
        raise ValueError(f"{what} must be a JSON object, "
                         f"got {type(document).__name__}")
    return document


@dataclass(frozen=True)
class StoreEntry:
    """One content-addressed store entry envelope.

    ``to_dict()`` is the exact shape :meth:`repro.store.CampaignStore`
    journals (and ``repro store show`` prints); ``is_valid`` is the
    read-path acceptance test every store generation (loose sharded,
    loose flat, packed) applies before trusting bytes.
    """

    SCHEMA = ENTRY_SCHEMA

    key: str
    kind: str
    status: str
    identity: dict
    spec: Optional[dict]
    payload: Optional[dict]
    error: Optional[dict]
    attempts: int
    created_at: Optional[float]

    def to_dict(self) -> dict:
        return {
            "schema": ENTRY_SCHEMA,
            "key": self.key,
            "kind": self.kind,
            "status": self.status,
            "identity": self.identity,
            "spec": self.spec,
            "payload": self.payload,
            "error": self.error,
            "attempts": self.attempts,
            "created_at": self.created_at,
        }

    @staticmethod
    def is_valid(envelope: Optional[Mapping], key: str) -> bool:
        """The store read path's acceptance test: schema, key echo,
        and a known status — anything else is treated as corrupt."""
        return (envelope is not None
                and isinstance(envelope, Mapping)
                and envelope.get("schema") == ENTRY_SCHEMA
                and envelope.get("key") == key
                and envelope.get("status") in ENTRY_STATUSES)

    @classmethod
    def from_dict(cls, document: Mapping) -> "StoreEntry":
        document = _require_mapping(document, "store entry envelope")
        key = document.get("key")
        if not cls.is_valid(document, key):
            raise ValueError(
                f"not a valid {ENTRY_SCHEMA} envelope "
                f"(schema={document.get('schema')!r}, "
                f"status={document.get('status')!r})")
        return cls(
            key=key,
            kind=str(document.get("kind", "?")),
            status=document["status"],
            identity=dict(document.get("identity") or {}),
            spec=document.get("spec"),
            payload=document.get("payload"),
            error=document.get("error"),
            attempts=int(document.get("attempts", 1) or 0),
            created_at=document.get("created_at"),
        )


@dataclass(frozen=True)
class Lease:
    """The lease document riding on a running job record."""

    SCHEMA = LEASE_SCHEMA

    id: str
    runner: str
    ttl: float
    expires_at: float

    def to_dict(self) -> dict:
        return {"id": self.id, "runner": self.runner,
                "ttl": self.ttl, "expires_at": self.expires_at}

    @classmethod
    def from_dict(cls, document: Mapping) -> "Lease":
        document = _require_mapping(document, "lease document")
        return cls(id=str(document["id"]),
                   runner=str(document["runner"]),
                   ttl=float(document["ttl"]),
                   expires_at=float(document["expires_at"]))


@dataclass(frozen=True)
class LeaseRow:
    """One live-lease row of ``GET /v1/stats``'s fleet section."""

    SCHEMA = LEASE_SCHEMA

    job_id: str
    runner: str
    lease_id: str
    generation: int
    expires_in: float

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "runner": self.runner,
            "lease_id": self.lease_id,
            "generation": self.generation,
            "expires_in": self.expires_in,
        }

    @classmethod
    def from_job(cls, job: Mapping, now: float) -> Optional["LeaseRow"]:
        """The row for a running job's live lease, or None (no lease,
        or one that already lapsed)."""
        lease = job.get("lease")
        if lease is None or lease["expires_at"] <= now:
            return None
        return cls(job_id=job["id"], runner=lease["runner"],
                   lease_id=lease["id"],
                   generation=job.get("generation", 0),
                   expires_in=lease["expires_at"] - now)


@dataclass(frozen=True)
class JobRecord:
    """One durable service job record (``<queue>/jobs/<id>.json``)."""

    SCHEMA = JOB_SCHEMA

    id: str
    kind: str
    status: str
    priority: int
    seq: int
    spec: dict
    sweep: Optional[dict]
    jobs: int
    name: str
    workload: str
    tenant: Optional[str]
    attempts: int
    generation: int
    lease: Optional[dict]
    submitted_at: Optional[float]
    started_at: Optional[float]
    finished_at: Optional[float]
    worker: Optional[str]
    error: Optional[dict]
    result: Optional[dict]

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "seq": self.seq,
            "spec": self.spec,
            "sweep": self.sweep,
            "jobs": self.jobs,
            "name": self.name,
            "workload": self.workload,
            "tenant": self.tenant,
            "attempts": self.attempts,
            "generation": self.generation,
            "lease": self.lease,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "error": self.error,
            "result": self.result,
        }

    @staticmethod
    def is_valid(document: Optional[Mapping], job_id: str) -> bool:
        """The queue read path's acceptance test (schema + id echo)."""
        return (document is not None
                and isinstance(document, Mapping)
                and document.get("schema") == JOB_SCHEMA
                and document.get("id") == job_id)

    @classmethod
    def from_dict(cls, document: Mapping) -> "JobRecord":
        document = _require_mapping(document, "job record")
        if not cls.is_valid(document, document.get("id")):
            raise ValueError(
                f"not a valid {JOB_SCHEMA} record "
                f"(schema={document.get('schema')!r})")
        status = document.get("status")
        if status not in JOB_STATES:
            raise ValueError(f"unknown job status {status!r}; "
                             f"states: {list(JOB_STATES)}")
        return cls(
            id=document["id"],
            kind=str(document.get("kind", "run")),
            status=status,
            priority=int(document.get("priority", 0) or 0),
            seq=int(document.get("seq", 0) or 0),
            spec=dict(document.get("spec") or {}),
            sweep=document.get("sweep"),
            jobs=int(document.get("jobs", 1) or 1),
            name=str(document.get("name", "")),
            workload=str(document.get("workload", "")),
            tenant=document.get("tenant"),
            attempts=int(document.get("attempts", 0) or 0),
            generation=int(document.get("generation", 0) or 0),
            lease=document.get("lease"),
            submitted_at=document.get("submitted_at"),
            started_at=document.get("started_at"),
            finished_at=document.get("finished_at"),
            worker=document.get("worker"),
            error=document.get("error"),
            result=document.get("result"),
        )

    def summary(self) -> dict:
        """The listing row (no spec/sweep/result bodies) — the exact
        shape ``GET /v1/jobs`` has always served per job."""
        row = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "seq": self.seq,
            "name": self.name,
            "workload": self.workload,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "error": self.error,
            "tenant": self.tenant,
            "generation": self.generation,
        }
        lease = self.lease
        row["lease"] = (None if lease is None
                        else {"runner": lease["runner"],
                              "expires_at": lease["expires_at"]})
        return row


@dataclass
class RunnerStats:
    """Per-runner activity counters in the fleet's ``/v1/stats`` ledger.

    Mutable on purpose — :class:`repro.fleet.coordinator.FleetState`
    bumps these in place under its lock; ``to_dict()`` is the snapshot
    shape the stats document has always served.
    """

    SCHEMA = RUNNER_SCHEMA

    first_seen: float
    last_seen: float
    claims: int = 0
    heartbeats: int = 0
    uploads: int = 0

    #: The counter names :meth:`saw` accepts (one per protocol verb).
    EVENTS = ("claims", "heartbeats", "uploads")

    def saw(self, now: float, event: Optional[str] = None) -> None:
        """Mark the runner seen now, bumping ``event``'s counter."""
        self.last_seen = now
        if event in self.EVENTS:
            setattr(self, event, getattr(self, event) + 1)

    def to_dict(self) -> dict:
        return {
            "first_seen": self.first_seen,
            "claims": self.claims,
            "heartbeats": self.heartbeats,
            "uploads": self.uploads,
            "last_seen": self.last_seen,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "RunnerStats":
        document = _require_mapping(document, "runner stats row")
        return cls(first_seen=float(document["first_seen"]),
                   last_seen=float(document["last_seen"]),
                   claims=int(document.get("claims", 0) or 0),
                   heartbeats=int(document.get("heartbeats", 0) or 0),
                   uploads=int(document.get("uploads", 0) or 0))


__all__ = [
    "ENTRY_SCHEMA", "JOB_SCHEMA", "LEASE_SCHEMA", "RUNNER_SCHEMA",
    "ENTRY_STATUSES", "JOB_STATES", "TERMINAL_STATES",
    "StoreEntry", "JobRecord", "Lease", "LeaseRow", "RunnerStats",
]
