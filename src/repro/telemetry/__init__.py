"""Unified telemetry: hierarchical tracing + a process-wide metrics registry.

Both halves are **off by default and byte-invisible**: result documents
of traced runs stay ``documents_equal`` to untraced runs — span and
metric data ride only in sidecar JSONL files and volatile keys, never
in canonical document content.

- :mod:`repro.telemetry.trace` — :class:`Tracer` / :class:`Span`
  (thread-local context propagation, context-manager/decorator APIs,
  picklable :func:`handoff`/:func:`adopt` across process boundaries,
  durable per-process JSONL sinks).
- :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry`
  (counters/gauges/histograms with cheap no-op mutation while
  disabled, Prometheus text rendering for ``GET /v1/metrics``).

Enable tracing by pointing the tracer at a sink directory (by
convention ``<store root>/spans`` — :func:`spans_dir_for`)::

    from repro import telemetry
    telemetry.configure(spans_dir=telemetry.spans_dir_for(store_root))
    with telemetry.span("campaign.run", workload="facerec"):
        ...

and query the sink through the ledger's ``span`` relation::

    repro query "span where name == 'level4.pcc' and duration_ms > 1000
                 order by duration_ms" --store DIR
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.telemetry.trace import (
    SPAN_SCHEMA,
    SPAN_STATUSES,
    Span,
    Tracer,
    adopt,
    attach_context,
    current_context,
    disable,
    enabled,
    handoff,
    read_spans,
    span,
    spans_dir_for,
    traced,
    tracer,
)


def configure(spans_dir=None, enable_metrics=None) -> None:
    """One-call setup: sink directory for spans, metrics on/off.

    ``spans_dir=None`` leaves tracing as it is; ``enable_metrics=None``
    leaves the registry as it is.
    """
    if spans_dir is not None:
        tracer.configure(spans_dir)
    if enable_metrics is True:
        metrics.enable()
    elif enable_metrics is False:
        metrics.disable()


__all__ = [
    "SPAN_SCHEMA", "SPAN_STATUSES", "Span", "Tracer", "tracer",
    "configure", "disable", "enabled", "span", "traced",
    "current_context", "attach_context", "handoff", "adopt",
    "spans_dir_for", "read_spans",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "metrics",
]
