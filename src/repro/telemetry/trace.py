"""Hierarchical tracing: spans, context propagation, JSONL sinks.

A :class:`Span` is one timed unit of work — a flow stage, a PCC run, a
service job — carrying a trace id (shared by every span of one logical
operation), its own span id, its parent's span id, a name, a
wall-clock start anchor, a monotonic-measured duration, typed
attributes and a terminal status (``ok`` / ``error`` / ``aborted``).

The process-wide :class:`Tracer` is **off by default**: until
:func:`configure` points it at a sink directory, :func:`span` returns a
shared no-op object and tracing costs one attribute check.  Enabled, it
keeps a thread-local span stack (new spans parent under the innermost
open span of the current thread) and appends one JSON line per
*finished* span to a per-process file under ``<sink>/``, flushed
per line so a crash loses at most the line being written — readers
(:func:`read_spans`) skip unparseable lines, the same corruption
tolerance discipline as :func:`repro.store.read_json_document`.

Crossing a process boundary (the multiprocessing sweep pool, the
fork-isolated service/fleet job children) is explicit: the submitting
side captures :func:`handoff` (a picklable dict naming the sink and the
current span), the child calls :func:`adopt`, and everything the child
traces re-parents under the submitting span.  Each process writes its
own sink file (re-opened on pid change, so forked children never share
a file descriptor's write position with their parent), which keeps
concurrent JSONL appends torn-line free by construction.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional

#: Schema tag of one serialized span record (the JSONL line and the
#: ledger ``span`` relation both carry records of this shape).
SPAN_SCHEMA = "repro.span/v1"

#: The statuses a span can end with.
SPAN_STATUSES = ("ok", "error", "aborted")


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def _safe_attr(value: Any) -> Any:
    """Clamp an attribute to a JSON scalar (rich values stringify)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class Span:
    """One open unit of work; a context manager that emits on exit."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "status", "start_unix", "duration_ms",
                 "_start", "_ended")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.start_unix = time.time()
        self.duration_ms: Optional[float] = None
        self._start = time.perf_counter()
        self._ended = False

    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = _safe_attr(value)

    def set_status(self, status: str) -> None:
        if status not in SPAN_STATUSES:
            raise ValueError(
                f"unknown span status {status!r}; one of {SPAN_STATUSES}")
        self.status = status

    def context(self) -> dict:
        """The picklable hand-off identity of this span."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def to_dict(self) -> dict:
        return {
            "schema": SPAN_SCHEMA,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_ms": self.duration_ms,
            "status": self.status,
            "pid": os.getpid(),
            "attrs": {key: _safe_attr(value)
                      for key, value in self.attrs.items()},
        }

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end(error=exc_type is not None)
        return False

    def end(self, error: bool = False) -> None:
        """Close the span (idempotent) and flush its record."""
        if self._ended:
            return
        self._ended = True
        self.duration_ms = (time.perf_counter() - self._start) * 1e3
        if error and self.status == "ok":
            self.status = "error"
        self.tracer._pop(self)
        self.tracer._emit(self.to_dict())


class _NoopSpan:
    """The shared disabled-tracer span: every operation is free."""

    __slots__ = ()

    trace_id = span_id = parent_id = None
    status = "ok"

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def set_status(self, status: str) -> None:
        pass

    def context(self) -> None:
        return None

    def end(self, error: bool = False) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """The process-wide span factory and sink writer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._dir: Optional[Path] = None
        self._file = None
        self._pid: Optional[int] = None
        # A fork can happen (worker pools, service job children) while
        # another thread holds the sink lock; the child gets a fresh
        # lock and file so its first emit can't deadlock or interleave
        # writes with the parent.
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(after_in_child=self._after_fork)

    def _after_fork(self) -> None:
        self._lock = threading.Lock()
        self._file = None
        self._pid = None

    # -- configuration ------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._dir is not None

    @property
    def sink_dir(self) -> Optional[Path]:
        return self._dir

    def configure(self, spans_dir) -> None:
        """Enable tracing, appending finished spans under ``spans_dir``."""
        directory = Path(spans_dir)
        directory.mkdir(parents=True, exist_ok=True)
        with self._lock:
            if self._file is not None and self._dir != directory:
                self._file.close()
                self._file = None
            self._dir = directory

    def disable(self) -> None:
        """Turn tracing off and close the sink file."""
        with self._lock:
            if self._file is not None:
                self._file.close()
            self._file = None
            self._dir = None
            self._pid = None
        self._local = threading.local()

    # -- span creation ------------------------------------------------------------

    def span(self, name: str, /, **attrs: Any) -> "Span | _NoopSpan":
        """Open a span under the current thread's innermost open span.

        Use as a context manager; with tracing disabled this returns a
        shared no-op object.  The span name is positional-only so that
        ``name`` stays available as an attribute key.
        """
        if self._dir is None:
            return _NOOP_SPAN
        parent = self.current()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            base = getattr(self._local, "base", None)
            if base:
                trace_id, parent_id = base["trace_id"], base["span_id"]
            else:
                trace_id, parent_id = _new_id(8), None
        return Span(self, name, trace_id, _new_id(8), parent_id,
                    {key: _safe_attr(value) for key, value in attrs.items()})

    def current(self) -> Optional[Span]:
        """The innermost open span of the calling thread."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_context(self) -> Optional[dict]:
        """The hand-off identity of the calling thread's position."""
        span = self.current()
        if span is not None:
            return span.context()
        base = getattr(self._local, "base", None)
        return dict(base) if base else None

    def attach(self, context: Optional[dict]) -> None:
        """Adopt ``context`` as the calling thread's root parent.

        New spans with no open local parent re-parent under it — the
        receiving half of a cross-process (or cross-thread) hand-off.
        """
        if context and context.get("trace_id") and context.get("span_id"):
            self._local.base = {"trace_id": context["trace_id"],
                                "span_id": context["span_id"]}
        else:
            self._local.base = None

    # -- stack + sink internals ---------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack and span in stack:
            stack.remove(span)

    def _emit(self, record: dict) -> None:
        with self._lock:
            stream = self._ensure_stream()
            if stream is None:
                return
            try:
                stream.write(json.dumps(record, sort_keys=True) + "\n")
                stream.flush()
            except OSError:  # a full disk must never fail the traced work
                pass

    def _ensure_stream(self):
        """The per-process sink file, re-opened after a fork."""
        if self._dir is None:
            return None
        pid = os.getpid()
        if self._file is None or self._pid != pid:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:
                    pass
            name = f"spans-{pid}-{_new_id(4)}.jsonl"
            try:
                self._file = open(self._dir / name, "a", encoding="utf-8")
            except OSError:
                self._file = None
                return None
            self._pid = pid
        return self._file


#: The process-wide tracer every instrumentation site goes through.
tracer = Tracer()


def configure(spans_dir) -> None:
    tracer.configure(spans_dir)


def disable() -> None:
    tracer.disable()


def enabled() -> bool:
    return tracer.enabled


def span(name: str, /, **attrs: Any):
    return tracer.span(name, **attrs)


def current_context() -> Optional[dict]:
    return tracer.current_context()


def attach_context(context: Optional[dict]) -> None:
    tracer.attach(context)


def traced(name: Optional[str] = None, **attrs: Any):
    """Decorator form: run the function under a span of its name."""

    def wrap(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            with tracer.span(label, **attrs):
                return fn(*args, **kwargs)

        return inner

    return wrap


# -- cross-process hand-off -------------------------------------------------------


def handoff() -> Optional[dict]:
    """The picklable hand-off for a child process, or None when off.

    Names the sink directory plus the submitting span, so the child can
    :func:`adopt` both in one call.
    """
    if not tracer.enabled:
        return None
    return {"dir": str(tracer.sink_dir), "ctx": tracer.current_context()}


def adopt(package: Optional[dict]) -> None:
    """Adopt a :func:`handoff` package in a child process (None = no-op)."""
    if not package or not package.get("dir"):
        return
    tracer.configure(package["dir"])
    tracer.attach(package.get("ctx"))


# -- reading sinks back -----------------------------------------------------------


def spans_dir_for(root) -> Path:
    """The conventional sink directory under a campaign/service store root."""
    return Path(root) / "spans"


def read_spans(spans_dir) -> list[dict]:
    """Every well-formed span record under ``spans_dir``.

    Tolerant by the store's read discipline: missing directory is empty,
    unreadable files are skipped, and unparseable lines (a process
    killed mid-write leaves at most one torn tail line per file) are
    skipped without failing the read.
    """
    records: list[dict] = []
    directory = Path(spans_dir)
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and record.get("schema") == SPAN_SCHEMA:
                records.append(record)
    return records


__all__ = ["SPAN_SCHEMA", "SPAN_STATUSES", "Span", "Tracer", "tracer",
           "configure", "disable", "enabled", "span", "traced",
           "current_context", "attach_context", "handoff", "adopt",
           "spans_dir_for", "read_spans"]
