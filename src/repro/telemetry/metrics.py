"""The process-wide metrics registry: counters, gauges, histograms.

Instrumentation sites bind their instruments once at import time::

    _SOLVES = metrics.counter("repro_sat_solves_total", "SAT solve() calls")
    ...
    _SOLVES.inc()

The registry is **disabled by default**: every mutation checks one flag
and returns, so an instrumented hot path costs a method call and a
branch until someone (the service daemon, a bench, ``REPRO_METRICS=1``)
enables it.  Handles stay valid across enable/disable — binding time
never matters.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (``text/plain; version=0.0.4``): ``# HELP`` / ``# TYPE``
comments, one sample per label set, histograms as cumulative
``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Optional

#: Default histogram bucket upper bounds, in seconds-ish magnitudes.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   60.0, 300.0)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _label_key(labels: dict[str, Any]) -> tuple:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value))
                        for name, value in labels.items()))


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _labels_text(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in key)
    return "{" + inner + "}"


class _Instrument:
    """Shared plumbing: a named, typed, label-keyed value table."""

    kind = ""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self._registry = registry
        self.name = name
        self.help = help
        self._values: dict[tuple, Any] = {}

    def clear(self) -> None:
        self._values.clear()

    def value(self, **labels: Any):
        """The current value for one label set (None when never touched)."""
        return self._values.get(_label_key(labels))


class Counter(_Instrument):
    kind = "counter"

    def inc(self, amount: float = 1, **labels: Any) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with registry._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, key, value)
                for key, value in sorted(self._values.items())]


class Gauge(_Instrument):
    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: Any) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def samples(self) -> list[tuple[str, tuple, float]]:
        return [(self.name, key, value)
                for key, value in sorted(self._values.items())]


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(registry, name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")

    def observe(self, value: float, **labels: Any) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = _label_key(labels)
        with registry._lock:
            row = self._values.get(key)
            if row is None:
                row = self._values[key] = {
                    "buckets": [0] * len(self.buckets),
                    "sum": 0.0, "count": 0}
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    row["buckets"][index] += 1
            row["sum"] += value
            row["count"] += 1

    def samples(self) -> list[tuple[str, tuple, float]]:
        # observe() increments every covering bucket, so the stored
        # counts are already the cumulative `le` series.
        out = []
        for key, row in sorted(self._values.items()):
            for bound, count in zip(self.buckets, row["buckets"]):
                out.append((f"{self.name}_bucket",
                            key + (("le", _fmt(bound)),), count))
            out.append((f"{self.name}_bucket", key + (("le", "+Inf"),),
                        row["count"]))
            out.append((f"{self.name}_sum", key, row["sum"]))
            out.append((f"{self.name}_count", key, row["count"]))
        return out


class MetricsRegistry:
    """A named instrument table with one enable flag."""

    def __init__(self, enabled: bool = False):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self.enabled = enabled
        # Forked children (worker pools, job children) must not inherit
        # a lock another thread held at fork time.
        import os
        if hasattr(os, "register_at_fork"):
            os.register_at_fork(
                after_in_child=lambda: setattr(
                    self, "_lock", threading.Lock()))

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (tests; handles stay valid)."""
        with self._lock:
            for instrument in self._instruments.values():
                instrument.clear()

    # -- instrument factories -----------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(self, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(self, name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram,
                         lambda: Histogram(self, name, help, buckets))

    def _get(self, name, cls, factory):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = self._instruments[name] = factory()
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}")
        return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    # -- output -------------------------------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample_name, key, value in instrument.samples():
                lines.append(
                    f"{sample_name}{_labels_text(key)} {_fmt(value)}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """Counter/gauge totals as a plain document (stats tables, tests).

        Label sets fold into ``name{k=v,...}`` keys; histograms report
        their ``_count`` totals.
        """
        out: dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                for key, row in sorted(instrument._values.items()):
                    out[f"{name}_count{_labels_text(key)}"] = row["count"]
                continue
            for key, value in sorted(instrument._values.items()):
                out[f"{name}{_labels_text(key)}"] = value
        return out


#: The process-wide registry every instrumentation site binds against.
metrics = MetricsRegistry()


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "metrics"]
