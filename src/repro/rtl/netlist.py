"""FSMD netlists: registers + combinational expression wires.

A :class:`Netlist` holds input ports, registers (with reset values and
next-value expressions) and named combinational wires.  Evaluation is
cycle-accurate: wires are computed in dependency order from the current
register/input values, then registers update simultaneously — the
standard synchronous-RTL semantics a VHDL description would have.

All values are unsigned integers masked to the signal width (two's
complement views are applied by comparison operators where relevant).
The same expression trees are interpreted here for simulation and
bit-blasted by :mod:`repro.verify.mc.bmc` for SAT-based checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class NetlistError(ValueError):
    """Raised on malformed netlists (cycles, width clashes, bad refs)."""


def mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    value = mask(value, width)
    return value - (1 << width) if value & (1 << (width - 1)) else value


# -- expressions ---------------------------------------------------------------

class Expr:
    """Base class of combinational expressions."""

    __slots__ = ()

    def refs(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstExpr(Expr):
    value: int
    width: int

    def refs(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return f"{self.value}'{self.width}"


@dataclass(frozen=True)
class SigExpr(Expr):
    """Reference to an input, register or wire by name."""

    name: str

    def refs(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


BIN_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=")
UN_OPS = ("~", "!")


@dataclass(frozen=True)
class BinExpr(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BIN_OPS:
            raise NetlistError(f"unknown RTL operator {self.op!r}")

    def refs(self) -> set[str]:
        return self.left.refs() | self.right.refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnExpr(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UN_OPS:
            raise NetlistError(f"unknown RTL operator {self.op!r}")

    def refs(self) -> set[str]:
        return self.operand.refs()

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class MuxExpr(Expr):
    """sel ? then : other (sel is any nonzero value)."""

    sel: Expr
    then: Expr
    other: Expr

    def refs(self) -> set[str]:
        return self.sel.refs() | self.then.refs() | self.other.refs()

    def __str__(self) -> str:
        return f"({self.sel} ? {self.then} : {self.other})"


@dataclass
class Register:
    """A clocked register with reset value and next-value expression."""

    name: str
    width: int
    reset: int = 0
    next_expr: Optional[Expr] = None


class Netlist:
    """A synchronous FSMD design."""

    def __init__(self, name: str):
        self.name = name
        self.inputs: dict[str, int] = {}
        self.registers: dict[str, Register] = {}
        self.wires: dict[str, tuple[int, Expr]] = {}
        self.outputs: list[str] = []
        self._order: Optional[list[str]] = None

    # -- construction -----------------------------------------------------------

    def add_input(self, name: str, width: int) -> SigExpr:
        self._declare(name, width)
        self.inputs[name] = width
        return SigExpr(name)

    def add_register(self, name: str, width: int, reset: int = 0) -> SigExpr:
        self._declare(name, width)
        self.registers[name] = Register(name, width, mask(reset, width))
        return SigExpr(name)

    def add_wire(self, name: str, width: int, expr: Expr) -> SigExpr:
        self._declare(name, width)
        self.wires[name] = (width, expr)
        self._order = None
        return SigExpr(name)

    def set_next(self, register: str, expr: Expr) -> None:
        if register not in self.registers:
            raise NetlistError(f"unknown register {register!r}")
        self.registers[register].next_expr = expr

    def mark_output(self, name: str) -> None:
        if name not in self.wires and name not in self.registers:
            raise NetlistError(f"unknown signal {name!r}")
        if name not in self.outputs:
            self.outputs.append(name)

    def _declare(self, name: str, width: int) -> None:
        if width < 1:
            raise NetlistError(f"signal {name!r}: width must be >= 1")
        if name in self.inputs or name in self.registers or name in self.wires:
            raise NetlistError(f"duplicate signal {name!r}")

    @property
    def word_width(self) -> int:
        """Uniform working width of expression evaluation.

        Every operation result is wrapped modulo ``2**word_width`` (the
        widest declared signal), and narrower operands are zero-extended.
        This makes interpreted simulation bit-exact with the SAT
        bit-blasting used by bounded model checking.
        """
        widths = [1]
        widths += list(self.inputs.values())
        widths += [r.width for r in self.registers.values()]
        widths += [w for w, __ in self.wires.values()]
        return max(widths)

    def width_of(self, name: str) -> int:
        if name in self.inputs:
            return self.inputs[name]
        if name in self.registers:
            return self.registers[name].width
        if name in self.wires:
            return self.wires[name][0]
        raise NetlistError(f"unknown signal {name!r}")

    # -- elaboration ---------------------------------------------------------------

    def wire_order(self) -> list[str]:
        """Wires in dependency order; raises on combinational cycles."""
        if self._order is not None:
            return self._order
        order: list[str] = []
        visiting: set[str] = set()
        done: set[str] = set()

        def visit(name: str) -> None:
            if name in done or name not in self.wires:
                return
            if name in visiting:
                raise NetlistError(f"combinational cycle through {name!r}")
            visiting.add(name)
            __, expr = self.wires[name]
            for ref in expr.refs():
                visit(ref)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in self.wires:
            visit(name)
        self._order = order
        return order

    def validate(self) -> None:
        """Check every referenced signal exists and every register drives."""
        known = set(self.inputs) | set(self.registers) | set(self.wires)
        for name, (__, expr) in self.wires.items():
            missing = expr.refs() - known
            if missing:
                raise NetlistError(f"wire {name!r} references unknown {sorted(missing)}")
        for reg in self.registers.values():
            if reg.next_expr is None:
                raise NetlistError(f"register {reg.name!r} has no next-value expression")
            missing = reg.next_expr.refs() - known
            if missing:
                raise NetlistError(
                    f"register {reg.name!r} references unknown {sorted(missing)}"
                )
        self.wire_order()

    # -- evaluation -------------------------------------------------------------------

    def reset_state(self) -> dict[str, int]:
        return {r.name: r.reset for r in self.registers.values()}

    def eval_combinational(self, state: dict[str, int],
                           inputs: dict[str, int]) -> dict[str, int]:
        """All signal values (inputs, registers, wires) for one cycle."""
        values: dict[str, int] = {}
        for name, width in self.inputs.items():
            if name not in inputs:
                raise NetlistError(f"missing input {name!r}")
            values[name] = mask(inputs[name], width)
        word = self.word_width
        for name, value in state.items():
            values[name] = mask(value, self.registers[name].width)
        for name in self.wire_order():
            width, expr = self.wires[name]
            values[name] = mask(self._eval(expr, values, word), width)
        return values

    def step(self, state: dict[str, int],
             inputs: dict[str, int]) -> tuple[dict[str, int], dict[str, int]]:
        """One clock cycle: returns (next register state, signal values)."""
        values = self.eval_combinational(state, inputs)
        word = self.word_width
        next_state = {}
        for reg in self.registers.values():
            next_state[reg.name] = mask(self._eval(reg.next_expr, values, word),
                                        reg.width)
        return next_state, values

    def _eval(self, expr: Expr, values: dict[str, int], word: int) -> int:
        if isinstance(expr, ConstExpr):
            return mask(expr.value, expr.width)
        if isinstance(expr, SigExpr):
            if expr.name not in values:
                raise NetlistError(f"evaluation of undeclared signal {expr.name!r}")
            return values[expr.name]
        if isinstance(expr, UnExpr):
            operand = self._eval(expr.operand, values, word)
            if expr.op == "~":
                return mask(~operand, word)
            return 0 if operand else 1
        if isinstance(expr, MuxExpr):
            sel = self._eval(expr.sel, values, word)
            return self._eval(expr.then if sel else expr.other, values, word)
        if isinstance(expr, BinExpr):
            left = self._eval(expr.left, values, word)
            right = self._eval(expr.right, values, word)
            return mask(_apply(expr.op, left, right), word)
        raise NetlistError(f"cannot evaluate {expr!r}")  # pragma: no cover

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "inputs": len(self.inputs),
            "registers": len(self.registers),
            "wires": len(self.wires),
            "state_bits": sum(r.width for r in self.registers.values()),
        }


def _apply(op: str, left: int, right: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return left << min(right, 64)
    if op == ">>":
        return left >> min(right, 64)
    if op == "==":
        return 1 if left == right else 0
    if op == "!=":
        return 1 if left != right else 0
    if op == "<":
        return 1 if left < right else 0
    if op == "<=":
        return 1 if left <= right else 0
    raise NetlistError(f"unknown operator {op!r}")  # pragma: no cover
