"""Interface synthesis: TL <-> RTL wrappers.

At level 4 the paper's team built, for each HW module, a dedicated
wrapper converting the RTL protocol (start/done handshake + argument and
result registers) to the transactional level used by the connection
resource — a week of manual work they note "could be significantly
reduced by the automation of the phase".  :class:`RtlWrapper` is that
automation: given any synthesised FSMD, it exposes a blocking
transactional ``call`` that drives the handshake cycle by cycle on the
simulation kernel's clock, and optionally charges the bus for argument
and result transfers.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.events import wait
from repro.kernel.scheduler import Simulator
from repro.rtl.netlist import Netlist
from repro.tlm.transaction import Transaction


class WrapperError(RuntimeError):
    """Raised on protocol misuse (bad arguments, overlong runs)."""


class RtlWrapper:
    """Transactional wrapper around one FSMD accelerator.

    ``call`` is a generator (use ``yield from``): it writes arguments,
    pulses ``start``, advances the netlist one clock per kernel cycle
    until ``done``, and returns the result — the RTL-protocol-to-TL
    conversion of the paper, made reusable.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        netlist: Netlist,
        clock_ps: int = 20_000,
        bus_socket=None,
        bus_base: int = 0,
        max_cycles: int = 100_000,
    ):
        netlist.validate()
        for required in ("start",):
            if required not in netlist.inputs:
                raise WrapperError(f"netlist {netlist.name!r} has no {required!r} input")
        if "done" not in netlist.wires and "done" not in netlist.registers:
            raise WrapperError(f"netlist {netlist.name!r} has no 'done' signal")
        self.name = name
        self.sim = sim
        self.netlist = netlist
        self.clock_ps = clock_ps
        self.bus_socket = bus_socket
        self.bus_base = bus_base
        self.max_cycles = max_cycles
        self.arg_names = [n[4:] for n in netlist.inputs if n.startswith("arg_")]
        self._state = netlist.reset_state()
        self.calls = 0
        self.total_cycles = 0

    def reset(self) -> None:
        self._state = self.netlist.reset_state()

    def call(self, args: dict[str, int]):
        """Invoke the accelerator (generator; returns the result value)."""
        missing = set(self.arg_names) - set(args)
        if missing:
            raise WrapperError(f"{self.name}: missing arguments {sorted(missing)}")
        # Argument transfer over the bus (one word per argument).
        if self.bus_socket is not None and self.arg_names:
            txn = Transaction.write(
                self.bus_base,
                [args[a] for a in self.arg_names],
                origin=self.name,
            )
            yield from self.bus_socket.transport(txn)
        inputs = {"start": 1}
        for arg in self.arg_names:
            inputs[f"arg_{arg}"] = int(args[arg])
        cycles = 0
        while True:
            values = self.netlist.eval_combinational(self._state, inputs)
            if values["done"]:
                break
            self._state, __ = self.netlist.step(self._state, inputs)
            inputs["start"] = 0
            cycles += 1
            if cycles > self.max_cycles:
                raise WrapperError(
                    f"{self.name}: no done after {self.max_cycles} cycles"
                )
            yield wait(self.clock_ps)
        result = values["result"] if "result" in values else 0
        # Advance past DONE so the FSMD returns to idle for the next call.
        self._state, __ = self.netlist.step(self._state, inputs)
        self.calls += 1
        self.total_cycles += cycles
        # Result transfer over the bus.
        if self.bus_socket is not None:
            txn = Transaction.read(self.bus_base, burst_len=1, origin=self.name)
            yield from self.bus_socket.transport(txn)
        return result

    def stats(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "total_cycles": self.total_cycles,
            "avg_cycles": self.total_cycles / self.calls if self.calls else 0.0,
        }
