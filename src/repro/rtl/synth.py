"""Behavioural synthesis-lite: software IR -> FSMD netlist.

Compiles a :class:`repro.swir.ast.Function` into a synchronous FSMD with
the classic accelerator handshake:

- inputs: ``start`` (1 bit) and one ``arg_<param>`` per parameter;
- outputs: ``done`` (1 bit, high for one cycle) and ``result``;
- one register per program variable, one FSM state per statement
  (one-operation-per-cycle schedule — the simplest legal schedule, as a
  1996-2004-era behavioural synthesiser would emit without chaining).

Supported subset: integer assignments, ``if``/``while``, the operators
``+ - * & | ^ << >> == != < <= > >=``, and division by powers of two
(strength-reduced to shifts).  General division, calls and FPGA
statements are rejected — they are not single-cycle datapath operations.
Arithmetic is unsigned at the chosen ``width``; algorithms must keep
intermediate values non-negative (true of the case-study ROOT module).
"""

from __future__ import annotations

from typing import Optional

from repro.swir import ast as sw
from repro.rtl.netlist import (
    BinExpr,
    ConstExpr,
    Expr,
    MuxExpr,
    Netlist,
    SigExpr,
    UnExpr,
)


class SynthError(ValueError):
    """Raised for IR constructs outside the synthesisable subset."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class _Synthesizer:
    def __init__(self, function: sw.Function, width: int):
        self.function = function
        self.width = width
        self.variables: list[str] = list(function.params)
        #: (state, kind, payload); kinds: assign(var, expr, next), branch(cond, t, f),
        #: result(expr)
        self.ops: list[tuple] = []
        self._next_state = 1  # 0 is IDLE

    def alloc_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        return state

    def note_var(self, name: str) -> None:
        if name not in self.variables:
            self.variables.append(name)

    # -- expression translation ----------------------------------------------------

    def tx(self, expr: sw.Expr) -> Expr:
        if isinstance(expr, sw.Const):
            if expr.value < 0:
                raise SynthError("negative constants are outside the unsigned subset")
            return ConstExpr(expr.value, self.width)
        if isinstance(expr, sw.Var):
            self.note_var(expr.name)
            return SigExpr(f"v_{expr.name}")
        if isinstance(expr, sw.UnOp):
            if expr.op == "~":
                return UnExpr("~", self.tx(expr.operand))
            if expr.op == "!":
                return UnExpr("!", self.tx(expr.operand))
            raise SynthError(f"unary {expr.op!r} not synthesisable (unsigned domain)")
        if isinstance(expr, sw.BinOp):
            return self._tx_binop(expr)
        if isinstance(expr, sw.Call):
            raise SynthError(f"call to {expr.func!r} is not a datapath operation")
        raise SynthError(f"cannot synthesise expression {expr!r}")

    def _tx_binop(self, expr: sw.BinOp) -> Expr:
        op = expr.op
        if op in ("/", "%"):
            if isinstance(expr.right, sw.Const) and _is_power_of_two(expr.right.value):
                shift = expr.right.value.bit_length() - 1
                left = self.tx(expr.left)
                if op == "/":
                    return BinExpr(">>", left, ConstExpr(shift, self.width))
                return BinExpr("&", left, ConstExpr(expr.right.value - 1, self.width))
            raise SynthError("division only by power-of-two constants")
        if op in (">", ">="):
            flipped = "<" if op == ">" else "<="
            return BinExpr(flipped, self.tx(expr.right), self.tx(expr.left))
        if op in ("&&", "||"):
            left = UnExpr("!", UnExpr("!", self.tx(expr.left)))
            right = UnExpr("!", UnExpr("!", self.tx(expr.right)))
            return BinExpr("&" if op == "&&" else "|", left, right)
        if op in ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<="):
            return BinExpr(op, self.tx(expr.left), self.tx(expr.right))
        raise SynthError(f"operator {op!r} not synthesisable")

    # -- statement lowering -------------------------------------------------------------

    def lower_block(self, stmts: list[sw.Stmt], entry: int, exit_state: int,
                    done_state: int) -> None:
        """Lower ``stmts`` starting at FSM state ``entry``; fall through to
        ``exit_state``."""
        current = entry
        for index, stmt in enumerate(stmts):
            is_last = index == len(stmts) - 1
            next_state = exit_state if is_last else self.alloc_state()
            current = self.lower_stmt(stmt, current, next_state, done_state)

    def lower_stmt(self, stmt: sw.Stmt, state: int, next_state: int,
                   done_state: int) -> int:
        if isinstance(stmt, sw.Assign):
            self.note_var(stmt.target)
            self.ops.append((state, "assign", stmt.target, self.tx(stmt.expr),
                             next_state))
            return next_state
        if isinstance(stmt, sw.Return):
            expr = self.tx(stmt.expr) if stmt.expr is not None else ConstExpr(0, self.width)
            self.ops.append((state, "result", expr, done_state))
            return next_state
        if isinstance(stmt, sw.If):
            then_entry = self.alloc_state()
            else_entry = self.alloc_state() if stmt.else_body else next_state
            self.ops.append((state, "branch", self.tx(stmt.cond), then_entry,
                             else_entry))
            self.lower_block(stmt.then_body or [sw.Assign("__nop__", sw.Const(0))],
                             then_entry, next_state, done_state)
            if stmt.else_body:
                self.lower_block(stmt.else_body, else_entry, next_state, done_state)
            return next_state
        if isinstance(stmt, sw.While):
            body_entry = self.alloc_state()
            self.ops.append((state, "branch", self.tx(stmt.cond), body_entry,
                             next_state))
            self.lower_block(stmt.body or [sw.Assign("__nop__", sw.Const(0))],
                             body_entry, state, done_state)
            return next_state
        if isinstance(stmt, (sw.FpgaCall, sw.Reconfigure)):
            raise SynthError(f"{type(stmt).__name__} cannot be synthesised to RTL")
        raise SynthError(f"cannot lower {stmt!r}")

    # -- netlist emission -------------------------------------------------------------------

    def build(self) -> Netlist:
        body = self.function.body
        if not body:
            raise SynthError(f"function {self.function.name!r} has an empty body")
        entry = self.alloc_state()
        done_state = None  # allocated after lowering so it is the last state
        # Reserve the done state id up-front by lowering with a placeholder.
        done_placeholder = -1
        self.lower_block(body, entry, done_placeholder, done_placeholder)
        done_state = self._next_state
        self._next_state += 1
        # Patch placeholder targets.
        patched = []
        for op in self.ops:
            patched.append(tuple(done_state if x == done_placeholder else x
                                 for x in op))
        self.ops = patched

        n_states = self._next_state
        state_width = max(1, (n_states - 1).bit_length())
        net = Netlist(f"fsmd_{self.function.name}")
        net.add_input("start", 1)
        for param in self.function.params:
            net.add_input(f"arg_{param}", self.width)
        state_sig = net.add_register("state", state_width, reset=0)
        for var in self.variables:
            net.add_register(f"v_{var}", self.width, reset=0)
        net.add_register("result_reg", self.width, reset=0)

        def at(state: int) -> Expr:
            return BinExpr("==", state_sig, ConstExpr(state, state_width))

        # done / busy outputs.
        net.add_wire("done", 1, at(done_state))
        net.add_wire("busy", 1,
                     UnExpr("!", BinExpr("|", at(0), at(done_state))))
        net.add_wire("result", self.width, SigExpr("result_reg"))
        net.mark_output("done")
        net.mark_output("busy")
        net.mark_output("result")

        # Next-state logic.
        next_state: Expr = SigExpr("state")
        # IDLE: wait for start.
        idle_next = MuxExpr(SigExpr("start"), ConstExpr(entry, state_width),
                            ConstExpr(0, state_width))
        next_state = MuxExpr(at(0), idle_next, next_state)
        for op in self.ops:
            if op[1] == "assign":
                state, __, __, __, target = op
                next_state = MuxExpr(at(state), ConstExpr(target, state_width),
                                     next_state)
            elif op[1] == "branch":
                state, __, cond, t_true, t_false = op
                choice = MuxExpr(cond, ConstExpr(t_true, state_width),
                                 ConstExpr(t_false, state_width))
                next_state = MuxExpr(at(state), choice, next_state)
            elif op[1] == "result":
                state, __, __, target = op
                next_state = MuxExpr(at(state), ConstExpr(target, state_width),
                                     next_state)
        # DONE returns to IDLE.
        next_state = MuxExpr(at(done_state), ConstExpr(0, state_width), next_state)
        net.set_next("state", next_state)

        # Per-variable next-value logic.
        for var in self.variables:
            reg = f"v_{var}"
            value: Expr = SigExpr(reg)
            if var in self.function.params:
                latch = MuxExpr(SigExpr("start"), SigExpr(f"arg_{var}"), SigExpr(reg))
                value = MuxExpr(at(0), latch, value)
            else:
                # Fresh locals reset to zero when a run starts (C locals are
                # garbage; zero keeps reruns deterministic).
                value = MuxExpr(BinExpr("&", at(0), SigExpr("start")),
                                ConstExpr(0, self.width), value)
            for op in self.ops:
                if op[1] == "assign" and op[2] == var:
                    state, __, __, expr, __ = op
                    value = MuxExpr(at(state), expr, value)
            net.set_next(reg, value)

        # Result register.
        result_value: Expr = SigExpr("result_reg")
        for op in self.ops:
            if op[1] == "result":
                state, __, expr, __ = op
                result_value = MuxExpr(at(state), expr, result_value)
        net.set_next("result_reg", result_value)

        net.validate()
        return net


def synthesize(function: sw.Function, width: int = 16) -> Netlist:
    """Compile ``function`` into an FSMD netlist (see module docstring)."""
    if width < 2:
        raise SynthError("width must be >= 2")
    return _Synthesizer(function, width).build()


def run_fsmd(net: Netlist, args: dict[str, int], max_cycles: int = 10_000,
             width: Optional[int] = None) -> tuple[int, int]:
    """Drive an FSMD through one start/done handshake.

    Returns ``(result, cycles)``.  Utility shared by tests, the TL
    wrapper and the PCC mutation analysis.
    """
    state = net.reset_state()
    inputs = {"start": 1}
    for name in net.inputs:
        if name.startswith("arg_"):
            param = name[4:]
            if param not in args:
                raise ValueError(f"missing argument {param!r}")
            inputs[name] = args[param]
    for cycle in range(max_cycles):
        values = net.eval_combinational(state, inputs)
        if values["done"]:
            return values["result"], cycle
        state, __ = net.step(state, inputs)
        inputs["start"] = 0
    raise RuntimeError(f"FSMD {net.name} did not finish in {max_cycles} cycles")
