"""RTL substrate: FSMD netlists, synthesis-lite and TL wrappers.

Level 4 of the flow produces RTL.  Our RTL is an FSMD (finite state
machine + datapath) netlist:

- :mod:`~repro.rtl.netlist` — signals, registers, combinational
  expressions; cycle-accurate evaluation;
- :mod:`~repro.rtl.synth` — behavioural synthesis-lite: compile a
  software-IR function into an FSMD with a start/done handshake (the
  paper's "Behavioral Synthesis and IP reuse" box);
- :mod:`~repro.rtl.wrapper` — interface synthesis: the dedicated
  wrappers that "convert RTL SystemC protocol, used by HW modules, to
  transactional level, used by the connection resource" (Section 4.1).
"""

from repro.rtl.netlist import (
    BinExpr,
    ConstExpr,
    MuxExpr,
    Netlist,
    NetlistError,
    Register,
    SigExpr,
    UnExpr,
)
from repro.rtl.synth import SynthError, synthesize
from repro.rtl.wrapper import RtlWrapper, WrapperError

__all__ = [
    "BinExpr",
    "ConstExpr",
    "MuxExpr",
    "Netlist",
    "NetlistError",
    "Register",
    "SigExpr",
    "UnExpr",
    "SynthError",
    "synthesize",
    "RtlWrapper",
    "WrapperError",
]
