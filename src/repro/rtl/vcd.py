"""VCD (Value Change Dump) waveform output.

Any 2004-era RTL flow lives and dies by waveforms; this writer produces
standard IEEE-1364 VCD files viewable in GTKWave from either a generic
record stream or a cycle-accurate FSMD run, so synthesised modules can
be debugged the way the paper's designers debugged their VHDL.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Optional, TextIO

from repro.rtl.netlist import Netlist

_ID_ALPHABET = string.ascii_letters + string.digits + "!#$%&'()*+,-./:;<=>?@"


def _identifier(index: int) -> str:
    """Short VCD identifier for the index-th variable."""
    base = len(_ID_ALPHABET)
    out = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, base)
        out.append(_ID_ALPHABET[rem])
    return "".join(reversed(out))


@dataclass
class VcdVariable:
    name: str
    width: int
    ident: str
    last: Optional[int] = None


class VcdWriter:
    """Streams value changes into a VCD file.

    >>> with open("/tmp/x.vcd", "w") as fh:           # doctest: +SKIP
    ...     vcd = VcdWriter(fh, timescale="1ns", module="dut")
    ...     vcd.declare("clk", 1)
    ...     vcd.declare("data", 8)
    ...     vcd.begin()
    ...     vcd.change(0, "clk", 0); vcd.change(0, "data", 0xAB)
    ...     vcd.change(5, "clk", 1)
    ...     vcd.close()
    """

    def __init__(self, stream: TextIO, timescale: str = "1ns",
                 module: str = "top", date: str = "reproducible"):
        self.stream = stream
        self.timescale = timescale
        self.module = module
        self.date = date
        self.variables: dict[str, VcdVariable] = {}
        self._started = False
        self._current_time: Optional[int] = None

    # -- declaration ------------------------------------------------------------

    def declare(self, name: str, width: int) -> None:
        if self._started:
            raise RuntimeError("cannot declare variables after begin()")
        if name in self.variables:
            raise ValueError(f"duplicate VCD variable {name!r}")
        if width < 1:
            raise ValueError("width must be >= 1")
        ident = _identifier(len(self.variables))
        self.variables[name] = VcdVariable(name, width, ident)

    def begin(self) -> None:
        """Emit the header; after this only changes may be recorded."""
        if self._started:
            raise RuntimeError("begin() called twice")
        write = self.stream.write
        write(f"$date {self.date} $end\n")
        write("$version repro.rtl.vcd $end\n")
        write(f"$timescale {self.timescale} $end\n")
        write(f"$scope module {self.module} $end\n")
        for var in self.variables.values():
            kind = "wire"
            write(f"$var {kind} {var.width} {var.ident} {var.name} $end\n")
        write("$upscope $end\n")
        write("$enddefinitions $end\n")
        self._started = True

    # -- recording ---------------------------------------------------------------

    def change(self, time: int, name: str, value: int) -> None:
        """Record ``name`` taking ``value`` at ``time`` (monotone times)."""
        if not self._started:
            raise RuntimeError("begin() must be called before change()")
        var = self.variables.get(name)
        if var is None:
            raise KeyError(f"undeclared VCD variable {name!r}")
        if self._current_time is not None and time < self._current_time:
            raise ValueError(f"time went backwards: {time} < {self._current_time}")
        value &= (1 << var.width) - 1
        if var.last == value:
            return
        if self._current_time != time:
            self.stream.write(f"#{time}\n")
            self._current_time = time
        if var.width == 1:
            self.stream.write(f"{value}{var.ident}\n")
        else:
            self.stream.write(f"b{value:b} {var.ident}\n")
        var.last = value

    def snapshot(self, time: int, values: dict[str, int]) -> None:
        """Record every declared variable present in ``values``."""
        for name in self.variables:
            if name in values:
                self.change(time, name, values[name])

    def close(self) -> None:
        if self._started and self._current_time is not None:
            self.stream.write(f"#{self._current_time + 1}\n")


def dump_fsmd_run(
    netlist: Netlist,
    stimulus: list[dict[str, int]],
    stream: TextIO,
    clock_ns: int = 20,
    signals: Optional[list[str]] = None,
) -> int:
    """Simulate ``netlist`` over ``stimulus`` (one dict per cycle), dumping
    all (or ``signals``) nets as a VCD trace.  Returns the cycle count.
    """
    netlist.validate()
    names = signals if signals is not None else (
        list(netlist.inputs) + list(netlist.registers) + list(netlist.wires)
    )
    vcd = VcdWriter(stream, timescale="1ns", module=netlist.name)
    for name in names:
        vcd.declare(name, netlist.width_of(name))
    vcd.begin()
    state = netlist.reset_state()
    for cycle, inputs in enumerate(stimulus):
        values = netlist.eval_combinational(state, inputs)
        vcd.snapshot(cycle * clock_ns, values)
        state, __ = netlist.step(state, inputs)
    vcd.close()
    return len(stimulus)
