"""repro — the Symbad reconfigurable-SoC design and verification flow.

A from-scratch reproduction of Borgatti et al., "An Integrated Design
and Verification Methodology for Reconfigurable Multimedia Systems"
(DATE 2004/2005).  See the top-level README.md for the architecture
overview and the campaign API guide.

Package map:

- :mod:`repro.api` — the composable campaign API: stage registry,
  sessions with cached intermediate results, declarative campaign
  specs and grid sweeps;
- :mod:`repro.kernel` — discrete-event simulation kernel;
- :mod:`repro.tlm` — transaction-level communication;
- :mod:`repro.platform` — CPU/bus/memory models, profiling, partitions,
  the timed architecture and exploration (the Vista substitute);
- :mod:`repro.fpga` — embedded-FPGA contexts and reconfiguration;
- :mod:`repro.swir` — the C-like software IR;
- :mod:`repro.rtl` — FSMD netlists, synthesis-lite, wrappers, VCD;
- :mod:`repro.verify` — SAT, ATPG (Laerte++), LPV, SymbC, model
  checking, PCC;
- :mod:`repro.facerec` — the face-recognition case study;
- :mod:`repro.flow` — the four-level methodology drivers.
"""

__version__ = "1.0.0"
