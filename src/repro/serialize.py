"""JSON-safe conversion for result serialization.

Every result object in the flow exposes ``to_dict()`` returning a plain,
schema-stable dictionary; :func:`json_safe` is the shared coercion those
methods use so numpy scalars, tuples, sets and nested containers all
land as types the stdlib ``json`` encoder accepts.

Schema stability contract: each top-level document carries a
``"schema"`` key of the form ``"repro.<kind>/v<N>"``.  Consumers key off
that string; producers bump ``N`` whenever a field is removed or changes
meaning (adding fields is backwards compatible).
"""

from __future__ import annotations

import json
from typing import Any, Iterable

try:  # numpy is a hard dependency of the case study, but keep this generic
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def json_safe(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-encodable builtins.

    tuples and sets become (sorted, for sets) lists, numpy scalars become
    Python scalars, numpy arrays become nested lists, dict keys become
    strings, and objects exposing ``to_dict`` are serialized through it.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if _np is not None:
        if isinstance(value, _np.integer):
            return int(value)
        if isinstance(value, _np.floating):
            return float(value)
        if isinstance(value, _np.ndarray):
            return json_safe(value.tolist())
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(v) for v in value)
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return repr(value)


#: Keys whose values are host-timing measurements or execution metadata
#: (how a result was computed), not flow results.  Everything else in a
#: result document is a deterministic function of the spec, which is
#: what determinism, serial-vs-parallel equality and cold-vs-resumed
#: store equality are all asserted on.  ``from_store``/``store_resume``
#: record whether a result was recomputed or reloaded from a
#: :class:`repro.store.CampaignStore`; ``created_at`` stamps store entry
#: envelopes; ``submitted_at``/``started_at``/``finished_at``/``worker``/
#: ``uptime_seconds`` are the :mod:`repro.service` job-queue and stats
#: timing fields; ``wait_polls``/``wait_seconds`` are the client-side
#: poll bookkeeping :meth:`repro.service.client.ServiceClient.wait`
#: stamps onto the record it returns.  None of them may enter result
#: equality — which is also what keeps telemetry byte-invisible: span
#: and metric data ride only in sidecar files and keys listed here.
VOLATILE_KEYS = frozenset({"wall_seconds", "sim_speed_ratio", "jobs",
                           "from_cache", "from_store", "store_resume",
                           "created_at", "submitted_at", "started_at",
                           "finished_at", "worker", "uptime_seconds",
                           "wait_polls", "wait_seconds"})


def canonical_document(document: Any,
                       volatile: Iterable[str] = VOLATILE_KEYS) -> Any:
    """``document`` with every volatile (wall-clock) key removed.

    Two runs of the same spec produce byte-identical
    :func:`canonical_json` of their result documents; only the stripped
    keys may differ between runs.
    """
    volatile = frozenset(volatile)

    def strip(value: Any) -> Any:
        if isinstance(value, dict):
            return {k: strip(v) for k, v in value.items() if k not in volatile}
        if isinstance(value, list):
            return [strip(v) for v in value]
        return value

    return strip(json_safe(document))


def canonical_json(document: Any,
                   volatile: Iterable[str] = VOLATILE_KEYS) -> str:
    """Deterministic JSON encoding of :func:`canonical_document`."""
    return json.dumps(canonical_document(document, volatile), sort_keys=True)


def documents_equal(first: Any, second: Any,
                    volatile: Iterable[str] = VOLATILE_KEYS) -> bool:
    """Whether two documents are equal minus the volatile keys.

    This is the equality the store and the resume machinery promise:
    a stage result or campaign outcome reloaded from a
    :class:`repro.store.CampaignStore` entry envelope compares equal to
    the one that was computed live, however long ago and on whichever
    host the entry was written.
    """
    return canonical_json(first, volatile) == canonical_json(second, volatile)
