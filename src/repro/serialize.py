"""JSON-safe conversion for result serialization.

Every result object in the flow exposes ``to_dict()`` returning a plain,
schema-stable dictionary; :func:`json_safe` is the shared coercion those
methods use so numpy scalars, tuples, sets and nested containers all
land as types the stdlib ``json`` encoder accepts.

Schema stability contract: each top-level document carries a
``"schema"`` key of the form ``"repro.<kind>/v<N>"``.  Consumers key off
that string; producers bump ``N`` whenever a field is removed or changes
meaning (adding fields is backwards compatible).
"""

from __future__ import annotations

from typing import Any

try:  # numpy is a hard dependency of the case study, but keep this generic
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def json_safe(value: Any) -> Any:
    """Recursively coerce ``value`` into JSON-encodable builtins.

    tuples and sets become (sorted, for sets) lists, numpy scalars become
    Python scalars, numpy arrays become nested lists, dict keys become
    strings, and objects exposing ``to_dict`` are serialized through it.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if _np is not None:
        if isinstance(value, _np.integer):
            return int(value)
        if isinstance(value, _np.floating):
            return float(value)
        if isinstance(value, _np.ndarray):
            return json_safe(value.tolist())
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json_safe(v) for v in value)
    if hasattr(value, "to_dict"):
        return value.to_dict()
    return repr(value)
