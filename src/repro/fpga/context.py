"""FPGA configurations (contexts).

A :class:`Configuration` is one loadable FPGA personality: the set of
functions (application tasks) it implements plus the registers/area they
occupy.  In the paper's case study the modules DISTANCE and ROOT are
split into two contexts named ``config1`` and ``config2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ContextError(ValueError):
    """Raised for invalid context definitions (empty, over capacity...)."""


@dataclass(frozen=True)
class Configuration:
    """A named FPGA context.

    ``functions`` are the task/function names available while this
    context is loaded.  ``gate_count`` is the implemented area (used for
    the capacity check); ``bitstream_words`` the download size in bus
    words (computed by :class:`~repro.fpga.bitstream.BitstreamModel` when
    not given explicitly).
    """

    name: str
    functions: frozenset[str]
    gate_count: int
    bitstream_words: int

    def __post_init__(self) -> None:
        if not self.functions:
            raise ContextError(f"context {self.name!r} implements no functions")
        if self.gate_count <= 0:
            raise ContextError(f"context {self.name!r}: gate_count must be positive")
        if self.bitstream_words <= 0:
            raise ContextError(f"context {self.name!r}: bitstream_words must be positive")

    def provides(self, function: str) -> bool:
        """Whether ``function`` is callable while this context is loaded."""
        return function in self.functions

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "functions": sorted(self.functions),
            "gate_count": self.gate_count,
            "bitstream_words": self.bitstream_words,
        }

    @classmethod
    def build(
        cls,
        name: str,
        functions: set[str],
        gate_counts: dict[str, int],
        bitstream_model,
    ) -> "Configuration":
        """Build a context from task gate counts and a bitstream model."""
        gates = sum(gate_counts[f] for f in functions)
        return cls(
            name=name,
            functions=frozenset(functions),
            gate_count=gates,
            bitstream_words=bitstream_model.words_for_gates(gates),
        )

    def __str__(self) -> str:
        funcs = ", ".join(sorted(self.functions))
        return (
            f"{self.name}: functions=[{funcs}] gates={self.gate_count} "
            f"bitstream={self.bitstream_words} words"
        )
