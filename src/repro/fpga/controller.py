"""Run-time reconfiguration policy.

The paper puts the software in sole charge of reconfiguration: *"the
software is lonely responsible for initiating an FPGA reconfiguration"*,
and the designer manually instruments the code so that *"a specific
configuration is loaded into the FPGA before the functions that belong
to it are called"*.

:class:`ReconfigController` reproduces that instrumentation as an
explicit, analysable object: before the SW invokes an FPGA-hosted
function, it asks the controller, which loads the owning context on a
miss.  Every decision is journalled as a :class:`ReconfigEvent`; the
journal is what SymbC verifies and what the ablation benches count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fpga.context import ContextError
from repro.fpga.device import FpgaDevice


@dataclass(frozen=True)
class ReconfigEvent:
    """One controller decision: a call that did or did not need a switch."""

    function: str
    context: str
    switched: bool
    time_ps: int


class ReconfigController:
    """Demand-driven (load-on-miss) reconfiguration policy.

    This is exactly the behaviour of the paper's manual instrumentation,
    made mechanical.  A *faulty* instrumentation — the bug class SymbC
    exists to catch — can be emulated with ``skip_functions``: calls to
    those functions are issued without ensuring their context first.
    """

    def __init__(self, device: FpgaDevice, skip_functions: Optional[set[str]] = None):
        self.device = device
        self.skip_functions = skip_functions or set()
        self.journal: list[ReconfigEvent] = []
        #: calls that reached the device while the function was absent
        self.consistency_violations: list[str] = []

    def ensure_loaded(self, function: str):
        """Make ``function`` available (generator; use with ``yield from``).

        Returns the context that serves the call.  With a faulty
        instrumentation this may leave the wrong context loaded, which is
        recorded as a consistency violation (the run-time symptom SymbC
        proves absent statically).
        """
        context = self.device.context_of(function)
        if context is None:
            raise ContextError(
                f"function {function!r} is not implemented by any context of "
                f"{self.device.name!r}"
            )
        if function in self.skip_functions:
            # Faulty instrumentation: call goes through without a check.
            if not self.device.provides(function):
                self.consistency_violations.append(function)
            self.journal.append(
                ReconfigEvent(function, context.name, False, self.device.sim.now_ps)
            )
            return self.device.loaded
        switched = not self.device.provides(function)
        if switched:
            yield from self.device.reconfigure(context.name)
        self.journal.append(
            ReconfigEvent(function, context.name, switched, self.device.sim.now_ps)
        )
        return context

    @property
    def switch_count(self) -> int:
        return sum(1 for e in self.journal if e.switched)

    def call_sequence(self) -> list[str]:
        """The dynamic sequence of FPGA function calls (for offline analysis)."""
        return [e.function for e in self.journal]
