"""Design-time context partitioning.

*"The partition of algorithms and registers among the different
configurations is an important architectural aspect which must be
thoroughly tuned for obtaining optimal performances"* (Section 3.3).

:class:`ContextMapper` enumerates partitions of the FPGA-mapped tasks
into contexts that respect the device capacity, scores each candidate by
the reconfigurations (and downloaded words) it would incur on a given
firing schedule, and returns the ranking.  This powers the A-CONTEXT
ablation bench.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.fpga.bitstream import BitstreamModel
from repro.fpga.context import Configuration, ContextError


def count_switches(schedule: list[str], owner: dict[str, str]) -> int:
    """Context switches a demand-driven policy performs on ``schedule``.

    ``owner`` maps each function to its context name.  The first call
    always loads a context (counted), later calls switch only when the
    owning context differs from the loaded one.
    """
    loaded = None
    switches = 0
    for function in schedule:
        ctx = owner[function]
        if ctx != loaded:
            switches += 1
            loaded = ctx
    return switches


def _set_partitions(items: list[str]):
    """Yield all partitions of ``items`` into non-empty blocks."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partial in _set_partitions(rest):
        # first joins an existing block
        for i in range(len(partial)):
            yield partial[:i] + [partial[i] + [first]] + partial[i + 1:]
        # first forms its own block
        yield [[first]] + partial


@dataclass(frozen=True)
class MappingChoice:
    """One evaluated context partition."""

    contexts: tuple[Configuration, ...]
    switches: int
    downloaded_words: int

    @property
    def context_count(self) -> int:
        return len(self.contexts)

    def describe(self) -> str:
        parts = "; ".join(str(c) for c in self.contexts)
        return (
            f"{self.context_count} context(s): {parts} -> "
            f"{self.switches} switches, {self.downloaded_words} words downloaded"
        )

    def to_dict(self) -> dict:
        return {
            "contexts": [c.to_dict() for c in self.contexts],
            "switches": self.switches,
            "downloaded_words": self.downloaded_words,
        }


class ContextMapper:
    """Enumerate and rank context partitions for a set of FPGA tasks."""

    def __init__(
        self,
        gate_counts: dict[str, int],
        capacity_gates: int,
        bitstream_model: BitstreamModel | None = None,
    ):
        if capacity_gates <= 0:
            raise ContextError("capacity must be positive")
        self.gate_counts = dict(gate_counts)
        self.capacity_gates = capacity_gates
        self.bitstream_model = bitstream_model or BitstreamModel()

    def feasible(self, blocks: list[list[str]]) -> bool:
        """Whether every block fits the device capacity."""
        return all(
            sum(self.gate_counts[f] for f in block) <= self.capacity_gates
            for block in blocks
        )

    def build_contexts(self, blocks: list[list[str]], prefix: str = "config") -> list[Configuration]:
        """Materialise context objects for a feasible block partition."""
        contexts = []
        for i, block in enumerate(sorted(blocks, key=lambda b: sorted(b)), start=1):
            contexts.append(
                Configuration.build(
                    f"{prefix}{i}", set(block), self.gate_counts, self.bitstream_model
                )
            )
        return contexts

    def evaluate(self, blocks: list[list[str]], schedule: list[str]) -> MappingChoice:
        """Score one partition against a dynamic call schedule."""
        if not self.feasible(blocks):
            raise ContextError(f"partition {blocks} exceeds capacity {self.capacity_gates}")
        contexts = self.build_contexts(blocks)
        owner: dict[str, str] = {}
        words: dict[str, int] = {}
        for ctx in contexts:
            for fn in ctx.functions:
                owner[fn] = ctx.name
            words[ctx.name] = ctx.bitstream_words
        loaded = None
        switches = 0
        downloaded = 0
        for function in schedule:
            ctx_name = owner[function]
            if ctx_name != loaded:
                switches += 1
                downloaded += words[ctx_name]
                loaded = ctx_name
        return MappingChoice(tuple(contexts), switches, downloaded)

    def explore(self, tasks: list[str], schedule: list[str]) -> list[MappingChoice]:
        """Evaluate every feasible partition; best (fewest words) first.

        Exhaustive over set partitions — fine for the handful of FPGA
        candidates a real design carries (the case study has two).
        """
        unknown = set(tasks) - set(self.gate_counts)
        if unknown:
            raise ContextError(f"no gate counts for {sorted(unknown)}")
        choices = []
        for blocks in _set_partitions(sorted(tasks)):
            if not blocks or not self.feasible(blocks):
                continue
            choices.append(self.evaluate(blocks, schedule))
        if not choices:
            raise ContextError(
                f"no feasible context partition of {tasks} within "
                f"{self.capacity_gates} gates"
            )
        choices.sort(key=lambda c: (c.downloaded_words, c.switches, c.context_count))
        return choices

    def best(self, tasks: list[str], schedule: list[str]) -> MappingChoice:
        """The minimum-download feasible partition."""
        return self.explore(tasks, schedule)[0]
