"""Bitstream sizing.

Embedded-FPGA configuration memories store a fixed number of
configuration bits per logic element.  We size bitstreams from the
equivalent gate count of the functions a context implements, with a
fixed frame overhead — enough fidelity to make download cost scale with
context complexity, which is what drives the paper's level-3 bus-loading
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BitstreamModel:
    """Converts implemented gates into configuration words.

    Defaults correspond to a small 2000s-era embedded FPGA: ~12
    configuration bits per equivalent gate plus a 2 KiB header/frame
    overhead, downloaded over a 32-bit bus.
    """

    bits_per_gate: float = 12.0
    overhead_bits: int = 16_384
    word_bits: int = 32

    def __post_init__(self) -> None:
        if self.bits_per_gate <= 0:
            raise ValueError("bits_per_gate must be positive")
        if self.word_bits <= 0:
            raise ValueError("word_bits must be positive")

    def words_for_gates(self, gate_count: int) -> int:
        """Bitstream length in bus words for ``gate_count`` gates."""
        if gate_count < 0:
            raise ValueError(f"negative gate count {gate_count}")
        bits = gate_count * self.bits_per_gate + self.overhead_bits
        words = int(bits // self.word_bits)
        if bits % self.word_bits:
            words += 1
        return max(1, words)

    def download_cycles(self, words: int, words_per_cycle: float = 1.0) -> int:
        """Bus cycles needed to ship ``words`` configuration words."""
        if words_per_cycle <= 0:
            raise ValueError("words_per_cycle must be positive")
        return max(1, round(words / words_per_cycle))
