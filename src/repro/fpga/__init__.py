"""Embedded-FPGA modelling: contexts, bitstreams, dynamic reconfiguration.

Level 3 of the Symbad flow instantiates a dynamically reconfigurable
device and carries some HW modules inside it.  *The characteristics of
the reconfigurable hardware consist in a set of FPGA configurations which
can be changed by the software at run-time ... downloading bit streams is
costly in terms of bus loading* (Section 3.3).

- :class:`~repro.fpga.context.Configuration` — one loadable context: a
  named set of functions (tasks) plus its bitstream size.
- :class:`~repro.fpga.bitstream.BitstreamModel` — bitstream sizing from
  gate counts (configuration bits per equivalent gate).
- :class:`~repro.fpga.device.FpgaDevice` — the device model: capacity
  check, currently loaded context, timed reconfiguration via bus
  transactions, usage statistics.
- :class:`~repro.fpga.controller.ReconfigController` — the run-time
  policy inserted into the SW: reconfigure before calling a function
  absent from the loaded context (and count how often).
- :class:`~repro.fpga.mapper.ContextMapper` — design-time partitioning
  of FPGA tasks into contexts under a capacity constraint, minimising
  reconfigurations over a firing schedule.
"""

from repro.fpga.context import Configuration, ContextError
from repro.fpga.bitstream import BitstreamModel
from repro.fpga.device import FpgaDevice, FpgaStats
from repro.fpga.controller import ReconfigController, ReconfigEvent
from repro.fpga.mapper import ContextMapper, MappingChoice, count_switches

__all__ = [
    "Configuration",
    "ContextError",
    "BitstreamModel",
    "FpgaDevice",
    "FpgaStats",
    "ReconfigController",
    "ReconfigEvent",
    "ContextMapper",
    "MappingChoice",
    "count_switches",
]
