"""The embedded FPGA device model.

Holds the set of defined contexts, tracks which one is loaded, and
performs *timed* reconfiguration: a reconfiguration is a bitstream
download — a burst of ``kind="bitstream"`` bus transactions read from
the configuration store and pushed into the device, competing with
application traffic for the connection resource exactly as in the
paper's level-3 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.events import wait
from repro.kernel.scheduler import Simulator
from repro.fpga.context import Configuration, ContextError
from repro.tlm.transaction import Transaction


@dataclass
class FpgaStats:
    """Reconfiguration accounting for the level-3 reports."""

    reconfigurations: int = 0
    bitstream_words: int = 0
    reconfig_time_ps: int = 0
    switches_by_context: dict[str, int] = field(default_factory=dict)


class FpgaDevice:
    """A dynamically reconfigurable logic array with single-context load.

    ``capacity_gates`` bounds the size of any single context (the device
    holds exactly one context at a time, as in the paper's platform where
    configurations "can be changed by the software at run-time").

    Reconfiguration traffic is issued through ``bus_socket`` (an
    initiator-socket-like object with a ``transport`` generator) reading
    the bitstream from ``config_store_base`` in ``burst_len``-word
    chunks.  Without a bus socket, reconfiguration still takes
    ``fallback_ps_per_word`` per word — used by unit tests and analytic
    sweeps.
    """

    def __init__(
        self,
        name: str,
        sim: Simulator,
        capacity_gates: int,
        bus_socket=None,
        config_store_base: int = 0x4000_0000,
        burst_len: int = 16,
        fallback_ps_per_word: int = 20_000,
    ):
        if capacity_gates <= 0:
            raise ContextError("FPGA capacity must be positive")
        self.name = name
        self.sim = sim
        self.capacity_gates = capacity_gates
        self.bus_socket = bus_socket
        self.config_store_base = config_store_base
        self.burst_len = burst_len
        self.fallback_ps_per_word = fallback_ps_per_word
        self.contexts: dict[str, Configuration] = {}
        self.loaded: Optional[Configuration] = None
        self.stats = FpgaStats()
        self.busy = False
        self._reconfiguring = False
        self._idle_event = sim.event(f"{name}.idle")

    # -- context management ------------------------------------------------------

    def define_context(self, context: Configuration) -> None:
        """Register a context, enforcing the capacity constraint."""
        if context.gate_count > self.capacity_gates:
            raise ContextError(
                f"context {context.name!r} needs {context.gate_count} gates, "
                f"device {self.name!r} holds {self.capacity_gates}"
            )
        if context.name in self.contexts:
            raise ContextError(f"duplicate context {context.name!r}")
        self.contexts[context.name] = context

    def provides(self, function: str) -> bool:
        """Whether ``function`` is available *right now*."""
        return self.loaded is not None and self.loaded.provides(function)

    def context_of(self, function: str) -> Optional[Configuration]:
        """The context implementing ``function``, if any."""
        for ctx in self.contexts.values():
            if ctx.provides(function):
                return ctx
        return None

    # -- computation occupancy -----------------------------------------------------

    def begin_compute(self) -> None:
        self.busy = True

    def end_compute(self) -> None:
        self.busy = False
        self._idle_event.notify(0)

    # -- reconfiguration -------------------------------------------------------------

    def reconfigure(self, context_name: str):
        """Load ``context_name`` (generator; use with ``yield from``).

        No-op when the context is already loaded.  Waits for any
        in-flight computation to finish (a context switch must not rip
        logic out from under a running function), then streams the
        bitstream over the bus.
        """
        context = self.contexts.get(context_name)
        if context is None:
            raise ContextError(f"unknown context {context_name!r} on {self.name!r}")
        # Serialise against computation AND other in-flight reconfigurations.
        while self.busy or self._reconfiguring:
            yield wait(self._idle_event)
        if self.loaded is context:
            return self.loaded
        self._reconfiguring = True
        try:
            start_ps = self.sim.now_ps
            self.loaded = None  # device is blank while the bitstream streams in
            remaining = context.bitstream_words
            offset = 0
            while remaining > 0:
                chunk = min(self.burst_len, remaining)
                if self.bus_socket is not None:
                    txn = Transaction.read(
                        self.config_store_base + offset * 4,
                        burst_len=chunk,
                        origin=f"{self.name}.config",
                        kind="bitstream",
                    )
                    yield from self.bus_socket.transport(txn)
                else:
                    yield wait(chunk * self.fallback_ps_per_word)
                remaining -= chunk
                offset += chunk
            self.loaded = context
        finally:
            self._reconfiguring = False
            self._idle_event.notify(0)
        self.stats.reconfigurations += 1
        self.stats.bitstream_words += context.bitstream_words
        self.stats.reconfig_time_ps += self.sim.now_ps - start_ps
        count = self.stats.switches_by_context.get(context.name, 0)
        self.stats.switches_by_context[context.name] = count + 1
        return context

    def report(self) -> dict:
        return {
            "device": self.name,
            "capacity_gates": self.capacity_gates,
            "contexts": sorted(self.contexts),
            "loaded": self.loaded.name if self.loaded else None,
            "reconfigurations": self.stats.reconfigurations,
            "bitstream_words": self.stats.bitstream_words,
            "reconfig_time_ps": self.stats.reconfig_time_ps,
            "switches_by_context": dict(self.stats.switches_by_context),
        }
