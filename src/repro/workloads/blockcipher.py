"""Block-cipher streaming workload ("blockcipher").

A third scenario with a completely different traffic shape: a secure
streaming link encrypts plaintext blocks through an AES-flavoured round
structure (key whitening, GF(2^8) byte substitution, byte rotation, a
linear mixing layer, final key sealing) and immediately decrypts them
through the inverse chain; the sink verifies every block round-trips
bit-exactly.  Tokens are small (one cipher block) but the task chain is
deep, so bus behaviour and the reconfiguration schedule stress the flow
differently from the imaging pipelines.

SOURCE -> WHITEN -> SUB -> ROT -> MIX -> SEAL ->
  UNSEAL -> INVMIX -> INVROT -> INVSUB -> UNWHITEN -> CHECK
(SOURCE also feeds the original plaintext straight to CHECK.)

The SUB and MIX byte datapaths are the FPGA candidates; their level-4
models are the GF(2^8) doubling step (``xtime``) and the affine S-box
step built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.facerec.tracing import Trace
from repro.platform.partition import Partition, Side
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.swir.ast import BinOp, Const, Var
from repro.swir.builder import FunctionBuilder
from repro.workloads.base import VerifyPlan, register_workload, validated_params

#: The modules this workload carries into the FPGA at level 3.
FPGA_TASKS = frozenset({"SUB", "MIX"})

#: Area proxies (equivalent gates) per task.
GATE_COUNTS = {
    "SOURCE": 2_000,
    "WHITEN": 4_000,
    "SUB": 12_000,
    "ROT": 3_000,
    "MIX": 10_000,
    "SEAL": 4_000,
    "UNSEAL": 4_000,
    "INVMIX": 10_000,
    "INVROT": 3_000,
    "INVSUB": 12_000,
    "UNWHITEN": 4_000,
    "CHECK": 2_000,
}


# -- the byte algebra -------------------------------------------------------------

def xtime(value: int) -> int:
    """GF(2^8) doubling (AES ``xtime``): the MIX/SUB primitive."""
    doubled = (value << 1) & 0xFF
    return doubled ^ 0x1B if value & 0x80 else doubled


def sub_byte(value: int) -> int:
    """The affine S-box step: ``xtime(x) ^ 0x63`` (invertible)."""
    return xtime(value) ^ 0x63


def _xtime_vec(block: np.ndarray) -> np.ndarray:
    doubled = (block.astype(np.int32) << 1) & 0xFF
    return (doubled ^ np.where(block & 0x80, 0x1B, 0)).astype(np.uint8)


def sub_bytes(block: np.ndarray) -> np.ndarray:
    return _xtime_vec(block) ^ np.uint8(0x63)


def mix_bytes(block: np.ndarray) -> np.ndarray:
    """Pairwise butterfly ``(a, b) -> (a ^ b, a)`` — linear, invertible."""
    out = block.copy()
    a, b = block[0::2], block[1::2]
    out[0::2] = a ^ b
    out[1::2] = a
    return out


def inv_mix_bytes(block: np.ndarray) -> np.ndarray:
    out = block.copy()
    p, q = block[0::2], block[1::2]
    out[0::2] = q
    out[1::2] = p ^ q
    return out


@dataclass(frozen=True)
class CipherEnv:
    """Key schedule and inverse tables of one cipher instance."""

    k0: np.ndarray          # whitening key
    k1: np.ndarray          # sealing key
    inv_sub: np.ndarray     # 256-entry inverse S-box table
    rotation: int
    block_words: int


def derive_env(block_words: int, key_seed: int, rotation: int) -> CipherEnv:
    """Derive the key schedule deterministically from ``key_seed``."""
    rng = np.random.default_rng(90_000 + key_seed)
    k0 = rng.integers(0, 256, block_words, dtype=np.uint8)
    k1 = rng.integers(0, 256, block_words, dtype=np.uint8)
    forward = np.array([sub_byte(x) for x in range(256)], dtype=np.uint8)
    inv = np.zeros(256, dtype=np.uint8)
    inv[forward] = np.arange(256, dtype=np.uint8)
    return CipherEnv(k0=k0, k1=k1, inv_sub=inv,
                     rotation=rotation % block_words, block_words=block_words)


class CipherReference:
    """Sequential golden model of the encrypt/decrypt round trip."""

    def __init__(self, env: CipherEnv):
        self.env = env

    def recognize(self, block: np.ndarray, trace: list | None = None):
        env = self.env

        def emit(stage: str, channel: str, token) -> None:
            if trace is not None:
                trace.append((stage, channel, token))

        w = block ^ env.k0
        emit("WHITEN", "c_w", w)
        s = sub_bytes(w)
        emit("SUB", "c_s", s)
        r = np.roll(s, env.rotation)
        emit("ROT", "c_r", r)
        m = mix_bytes(r)
        emit("MIX", "c_m", m)
        ct = m ^ env.k1
        emit("SEAL", "c_ct", ct)
        us = ct ^ env.k1
        emit("UNSEAL", "c_us", us)
        im = inv_mix_bytes(us)
        emit("INVMIX", "c_im", im)
        ir = np.roll(im, -env.rotation)
        emit("INVROT", "c_ir", ir)
        isub = env.inv_sub[ir]
        emit("INVSUB", "c_is", isub)
        dec = isub ^ env.k0
        emit("UNWHITEN", "c_dec", dec)
        mismatches = int(np.count_nonzero(dec != block))
        return (mismatches == 0, mismatches)


# -- the graph --------------------------------------------------------------------

def build_cipher_graph(env: CipherEnv) -> AppGraph:
    """The level-1 application graph of the streaming link."""
    block_words = max(1, env.block_words // 4)
    graph = AppGraph("blockcipher")

    def byte_task(name: str, reads: str, writes: str, fn, ops_per_byte: int,
                  description: str) -> None:
        graph.add_task(TaskSpec(
            name=name,
            fn=lambda state, inputs: {writes: fn(inputs[reads])},
            reads=(reads,),
            writes=(writes,),
            ops_fn=lambda inputs: int(inputs[reads].size * ops_per_byte),
            gate_count=GATE_COUNTS[name],
            description=description,
        ))

    graph.add_task(TaskSpec(
        name="SOURCE",
        fn=lambda state, inputs: {
            "c_blk": inputs["__stimulus__"],
            "c_orig": inputs["__stimulus__"],
        },
        writes=("c_blk", "c_orig"),
        ops_fn=lambda inputs: env.block_words,
        gate_count=GATE_COUNTS["SOURCE"],
        description="plaintext block source (link ingress)",
    ))
    byte_task("WHITEN", "c_blk", "c_w", lambda b: b ^ env.k0, 2,
              "key whitening (xor round key 0)")
    byte_task("SUB", "c_w", "c_s", sub_bytes, 6,
              "GF(2^8) byte substitution (FPGA candidate)")
    byte_task("ROT", "c_s", "c_r", lambda b: np.roll(b, env.rotation), 1,
              "byte rotation (diffusion)")
    byte_task("MIX", "c_r", "c_m", mix_bytes, 3,
              "pairwise linear mixing layer (FPGA candidate)")
    byte_task("SEAL", "c_m", "c_ct", lambda b: b ^ env.k1, 2,
              "final key sealing -> ciphertext")
    byte_task("UNSEAL", "c_ct", "c_us", lambda b: b ^ env.k1, 2,
              "strip the sealing key")
    byte_task("INVMIX", "c_us", "c_im", inv_mix_bytes, 3,
              "inverse mixing layer")
    byte_task("INVROT", "c_im", "c_ir",
              lambda b: np.roll(b, -env.rotation), 1,
              "inverse byte rotation")
    byte_task("INVSUB", "c_ir", "c_is", lambda b: env.inv_sub[b], 6,
              "inverse byte substitution (table)")
    byte_task("UNWHITEN", "c_is", "c_dec", lambda b: b ^ env.k0, 2,
              "strip the whitening key -> recovered plaintext")
    graph.add_task(TaskSpec(
        name="CHECK",
        fn=lambda state, inputs: {
            "__result__": (
                bool((inputs["c_dec"] == inputs["c_orig"]).all()),
                int(np.count_nonzero(inputs["c_dec"] != inputs["c_orig"])),
            )
        },
        reads=("c_dec", "c_orig"),
        writes=(),
        ops_fn=lambda inputs: int(inputs["c_dec"].size * 2),
        gate_count=GATE_COUNTS["CHECK"],
        description="round-trip verifier (link egress)",
    ))

    for name, src, dst in (
        ("c_blk", "SOURCE", "WHITEN"),
        ("c_orig", "SOURCE", "CHECK"),
        ("c_w", "WHITEN", "SUB"),
        ("c_s", "SUB", "ROT"),
        ("c_r", "ROT", "MIX"),
        ("c_m", "MIX", "SEAL"),
        ("c_ct", "SEAL", "UNSEAL"),
        ("c_us", "UNSEAL", "INVMIX"),
        ("c_im", "INVMIX", "INVROT"),
        ("c_ir", "INVROT", "INVSUB"),
        ("c_is", "INVSUB", "UNWHITEN"),
        ("c_dec", "UNWHITEN", "CHECK"),
    ):
        graph.add_channel(ChannelSpec(name, src, dst, block_words))

    graph.validate()
    return graph


# -- level-4 datapaths ------------------------------------------------------------

def xtime_step_function():
    """GF(2^8) doubling: shift, conditional reduction, byte mask."""
    fb = FunctionBuilder("xtime_step", ["b"])
    fb.assign("d", BinOp("<<", Var("b"), Const(1)))
    with fb.if_(BinOp("!=", BinOp("&", Var("b"), Const(128)), Const(0))):
        fb.assign("d", BinOp("^", Var("d"), Const(0x1B)))
    fb.ret(BinOp("&", Var("d"), Const(0xFF)))
    return fb.build()


def sbox_step_function():
    """The affine S-box step: ``xtime(b) ^ 0x63`` (inlined doubling)."""
    fb = FunctionBuilder("sbox_step", ["b"])
    fb.assign("d", BinOp("<<", Var("b"), Const(1)))
    with fb.if_(BinOp("!=", BinOp("&", Var("b"), Const(128)), Const(0))):
        fb.assign("d", BinOp("^", Var("d"), Const(0x1B)))
    fb.assign("d", BinOp("&", Var("d"), Const(0xFF)))
    fb.ret(BinOp("^", Var("d"), Const(0x63)))
    return fb.build()


# -- the workload -----------------------------------------------------------------

@register_workload
class BlockCipherWorkload:
    """Encrypt/decrypt round-trip over a streaming block cipher."""

    name = "blockcipher"
    description = "AES-flavoured streaming encrypt/decrypt round-trip link"
    source_task = "SOURCE"
    reference_channels = ("c_w", "c_s", "c_r", "c_m", "c_ct", "c_us",
                          "c_im", "c_ir", "c_is", "c_dec")
    min_accuracy = 1.0
    conformance_overrides = {
        "frames": 2, "params": {"block_words": 8},
    }
    #: bump when results change (retires repro.store entries)
    revision = 1

    #: Datapath width of the synthesised accelerators.
    WIDTH = 16

    #: ``spec.params`` knobs and their defaults.
    DEFAULT_PARAMS = {"block_words": 16, "key_seed": 77, "rotation": 3}

    def config(self, spec: Any) -> dict:
        params = validated_params(self.name, spec.params, self.DEFAULT_PARAMS)
        if params["block_words"] < 4 or params["block_words"] % 2:
            raise ValueError("block_words must be an even integer >= 4")
        if params["rotation"] < 0:
            raise ValueError("rotation must be >= 0")
        return params

    def build_environment(self, spec: Any) -> CipherEnv:
        p = self.config(spec)
        return derive_env(p["block_words"], p["key_seed"], p["rotation"])

    def build_graph(self, spec: Any, environment: CipherEnv) -> AppGraph:
        return build_cipher_graph(environment)

    def reference_model(self, spec: Any, environment: CipherEnv):
        return CipherReference(environment)

    def shots(self, spec: Any) -> list[int]:
        return list(range(spec.frames))

    def sample_inputs(self, spec: Any, shots: list) -> list:
        p = self.config(spec)
        rng = np.random.default_rng(spec.seed)
        return [rng.integers(0, 256, p["block_words"], dtype=np.uint8)
                for __ in shots]

    def reference_trace(self, spec: Any, environment: CipherEnv,
                        inputs: list) -> Trace:
        model = self.reference_model(spec, environment)
        events: list = []
        for block in inputs:
            model.recognize(block, trace=events)
        return Trace.from_reference_events("reference", events)

    def partitions(self, graph: AppGraph) -> dict:
        hw = {"SUB", "MIX", "INVSUB", "INVMIX"}
        assignment = {
            name: (Side.HW if name in hw else Side.SW) for name in graph.tasks
        }
        return {
            "timed": Partition(graph, dict(assignment), set()),
            "reconfigurable": Partition(graph, dict(assignment),
                                        set(FPGA_TASKS)),
        }

    def verify_plan(self, spec: Any) -> VerifyPlan:
        return VerifyPlan(
            functions={
                "XTIME_STEP": xtime_step_function(),
                "SBOX_STEP": sbox_step_function(),
            },
            reference_impls={
                "XTIME_STEP": lambda b: xtime(b),
                "SBOX_STEP": lambda b: sub_byte(b),
            },
            test_inputs={
                "XTIME_STEP": [{"b": v} for v in (0, 1, 0x53, 0x7F, 0x80,
                                                  0xCA, 0xFF)],
                "SBOX_STEP": [{"b": v} for v in (0, 1, 0x63, 0x80, 0xFF)],
            },
            width=self.WIDTH,
        )

    def score(self, shots: list, results: dict) -> float:
        verdicts = results.get("CHECK", [])
        if not verdicts:
            return 0.0
        hits = sum(1 for v in verdicts if v is not None and v[0])
        return hits / len(verdicts)
