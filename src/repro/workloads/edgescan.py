"""Edge-detection shape-recognition workload ("edgescan").

A second imaging scenario for the flow: a camera streams noisy frames of
geometric parts on a conveyor; a convolution front end (box smoothing,
Sobel X/Y, gradient magnitude, thresholding) extracts a binary edge map,
the row/column edge profile is matched against a database of enrolled
part signatures, and the closest part wins — optical part inspection,
structurally a sibling of the face pipeline but with a different graph
shape (a diamond: one smoothed image feeds two gradient convolutions)
and different FPGA datapaths (saturating magnitude, threshold compare).

CAMERA -> GAUSS -> SOBELX --+
             |              +--> MAG -> THRESH -> PROFILE -> MATCH
             +---> SOBELY --+                                  ^
   |                                                           |
   +--> SIGDB ---------------------------------------------> MATCH
                                        MATCH -> SCOREACC -> CLASSIFY
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.facerec.tracing import Trace
from repro.platform.partition import Partition, Side
from repro.platform.taskgraph import AppGraph, ChannelSpec, TaskSpec
from repro.swir.ast import BinOp, Const, Var
from repro.swir.builder import FunctionBuilder
from repro.workloads.base import VerifyPlan, register_workload, validated_params

#: The modules this workload carries into the FPGA at level 3.
FPGA_TASKS = frozenset({"MAG", "THRESH"})

#: Area proxies (equivalent gates) per task.
GATE_COUNTS = {
    "CAMERA": 3_000,
    "GAUSS": 7_000,
    "SOBELX": 8_000,
    "SOBELY": 8_000,
    "MAG": 11_000,
    "THRESH": 9_000,
    "PROFILE": 5_000,
    "SIGDB": 2_000,
    "MATCH": 10_000,
    "SCOREACC": 6_000,
    "CLASSIFY": 2_000,
}


# -- the processing algorithms ----------------------------------------------------

def smooth(image: np.ndarray) -> np.ndarray:
    """3x3 box smoothing (integer mean), the convolution front end."""
    padded = np.pad(image.astype(np.int32), 1, mode="edge")
    acc = np.zeros(image.shape, dtype=np.int32)
    for dy in range(3):
        for dx in range(3):
            acc += padded[dy:dy + image.shape[0], dx:dx + image.shape[1]]
    return (acc // 9).astype(np.uint8)


def sobel_x(image: np.ndarray) -> np.ndarray:
    """Horizontal Sobel gradient (signed int32)."""
    img = image.astype(np.int32)
    padded = np.pad(img, 1, mode="edge")

    def w(dy: int, dx: int) -> np.ndarray:
        return padded[dy:dy + img.shape[0], dx:dx + img.shape[1]]

    return (-w(0, 0) + w(0, 2) - 2 * w(1, 0) + 2 * w(1, 2)
            - w(2, 0) + w(2, 2))


def sobel_y(image: np.ndarray) -> np.ndarray:
    """Vertical Sobel gradient (signed int32)."""
    img = image.astype(np.int32)
    padded = np.pad(img, 1, mode="edge")

    def w(dy: int, dx: int) -> np.ndarray:
        return padded[dy:dy + img.shape[0], dx:dx + img.shape[1]]

    return (-w(0, 0) - 2 * w(0, 1) - w(0, 2)
            + w(2, 0) + 2 * w(2, 1) + w(2, 2))


def grad_mag(gx: np.ndarray, gy: np.ndarray) -> np.ndarray:
    """Saturating L1 gradient magnitude — the MAG FPGA datapath, per pixel."""
    return np.minimum(np.abs(gx) + np.abs(gy), 255).astype(np.uint8)


def binarize(mag: np.ndarray, threshold: int) -> np.ndarray:
    """Threshold compare — the THRESH FPGA datapath, per pixel."""
    return np.where(mag >= threshold, 255, 0).astype(np.uint8)


def edge_profile(binary: np.ndarray) -> np.ndarray:
    """Row + column edge counts: the shape's projection signature."""
    rows = (binary.astype(np.int64) // 255).sum(axis=1)
    cols = (binary.astype(np.int64) // 255).sum(axis=0)
    return np.concatenate([rows, cols]).astype(np.int32)


def absdiff(signature: np.ndarray, db_matrix: np.ndarray) -> np.ndarray:
    """Per-entry absolute signature differences (the streaming compare)."""
    if signature.shape[0] != db_matrix.shape[1]:
        raise ValueError(
            f"signature length {signature.shape[0]} != "
            f"DB width {db_matrix.shape[1]}"
        )
    return np.abs(db_matrix.astype(np.int32) - signature.astype(np.int32))


def score_acc(diffs: np.ndarray) -> np.ndarray:
    """L1 distance per DB entry."""
    return diffs.astype(np.int64).sum(axis=1)


def classify(scores: np.ndarray, labels: list) -> tuple[int, int, int]:
    """Select the best match: ``(shape, scale, score)``."""
    if len(scores) != len(labels):
        raise ValueError("score vector and label list disagree")
    best = int(np.argmin(scores))
    shape, scale = labels[best]
    return shape, scale, int(scores[best])


# -- synthetic scenes and enrollment ---------------------------------------------

def render_shape(shape: int, scale: int, size: int) -> np.ndarray:
    """Render part ``shape`` at size variant ``scale`` (grayscale uint8).

    Six primitive outlines (square, disk, triangle, cross, ring,
    diamond); higher shape indices recycle the primitives with rotated
    placement so any ``shapes`` count stays separable.
    """
    yy, xx = np.mgrid[0:size, 0:size]
    cx = cy = size / 2 + ((shape // 6) % 3 - 1) * size * 0.08
    r = size * (0.24 + 0.05 * scale + 0.02 * ((shape // 6) % 2))
    nx, ny = xx - cx, yy - cy
    img = np.full((size, size), 190.0)

    kind = shape % 6
    if kind == 0:      # square
        mask = (np.abs(nx) <= r) & (np.abs(ny) <= r)
    elif kind == 1:    # disk
        mask = nx * nx + ny * ny <= r * r
    elif kind == 2:    # triangle
        mask = (ny >= -r) & (ny <= r) & (np.abs(nx) <= (ny + r) / 2)
    elif kind == 3:    # cross
        arm = max(2, int(r // 3))
        mask = ((np.abs(nx) <= arm) & (np.abs(ny) <= r)) | \
               ((np.abs(ny) <= arm) & (np.abs(nx) <= r))
    elif kind == 4:    # ring
        d2 = nx * nx + ny * ny
        mask = (d2 <= r * r) & (d2 >= (0.55 * r) ** 2)
    else:              # diamond
        mask = np.abs(nx) + np.abs(ny) <= r
    img[mask] = 60.0
    return np.clip(img, 0, 255).astype(np.uint8)


class SignatureDb:
    """Enrolled edge-profile signatures of every (shape, scale) part."""

    def __init__(self, matrix: np.ndarray, labels: list[tuple[int, int]],
                 threshold: int):
        self.matrix = matrix
        self.labels = labels
        self.threshold = threshold

    @property
    def entries(self) -> int:
        return self.matrix.shape[0]


def enroll_signatures(shapes: int, scales: int, size: int,
                      threshold: int) -> SignatureDb:
    """Enroll noise-free renders of every part through the front end."""
    rows, labels = [], []
    for shape in range(shapes):
        for scale in range(scales):
            blurred = smooth(render_shape(shape, scale, size))
            sig = edge_profile(binarize(
                grad_mag(sobel_x(blurred), sobel_y(blurred)), threshold))
            rows.append(sig)
            labels.append((shape, scale))
    return SignatureDb(np.stack(rows).astype(np.int32), labels, threshold)


class ConveyorSampler:
    """Deterministic stream of noisy part frames."""

    def __init__(self, size: int, noise_sigma: float, seed: int):
        self.size = size
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)

    def capture(self, shape: int, scale: int) -> np.ndarray:
        frame = render_shape(shape, scale, self.size).astype(np.float64)
        if self.noise_sigma > 0:
            frame += self._rng.normal(0, self.noise_sigma, frame.shape)
        return np.clip(frame, 0, 255).astype(np.uint8)

    def frames(self, shots: list[tuple[int, int]]) -> list[np.ndarray]:
        return [self.capture(s, v) for s, v in shots]


class EdgeScanReference:
    """Sequential golden model of the whole inspection pipeline."""

    def __init__(self, db: SignatureDb):
        self.db = db

    def recognize(self, frame: np.ndarray, trace: list | None = None):
        def emit(stage: str, channel: str, token) -> None:
            if trace is not None:
                trace.append((stage, channel, token))

        blurred = smooth(frame)
        gx = sobel_x(blurred)
        emit("SOBELX", "c_gx", gx)
        gy = sobel_y(blurred)
        emit("SOBELY", "c_gy", gy)
        mag = grad_mag(gx, gy)
        emit("MAG", "c_mag", mag)
        binary = binarize(mag, self.db.threshold)
        emit("THRESH", "c_bin", binary)
        sig = edge_profile(binary)
        emit("PROFILE", "c_sig", sig)
        diffs = absdiff(sig, self.db.matrix)
        emit("MATCH", "c_absdiff", diffs)
        scores = score_acc(diffs)
        emit("SCOREACC", "c_score", scores)
        return classify(scores, self.db.labels)


# -- the graph --------------------------------------------------------------------

def build_edgescan_graph(db: SignatureDb, size: int) -> AppGraph:
    """The level-1 application graph of the inspection pipeline."""
    frame_words = size * size // 4
    sig_words = 2 * size
    graph = AppGraph("edgescan")

    graph.add_task(TaskSpec(
        name="CAMERA",
        fn=lambda state, inputs: {
            "c_frame": inputs["__stimulus__"],
            "c_trig": 1,
        },
        writes=("c_frame", "c_trig"),
        ops_fn=lambda inputs: size * size * 2,
        gate_count=GATE_COUNTS["CAMERA"],
        description="conveyor camera: emits noisy part frames",
    ))
    graph.add_task(TaskSpec(
        name="GAUSS",
        fn=lambda state, inputs: (lambda blurred: {
            "c_sx": blurred, "c_sy": blurred,
        })(smooth(inputs["c_frame"])),
        reads=("c_frame",),
        writes=("c_sx", "c_sy"),
        ops_fn=lambda inputs: int(inputs["c_frame"].size * 11),
        gate_count=GATE_COUNTS["GAUSS"],
        description="3x3 box smoothing, fanned to both gradient engines",
    ))
    graph.add_task(TaskSpec(
        name="SOBELX",
        fn=lambda state, inputs: {"c_gx": sobel_x(inputs["c_sx"])},
        reads=("c_sx",),
        writes=("c_gx",),
        ops_fn=lambda inputs: int(inputs["c_sx"].size * 10),
        gate_count=GATE_COUNTS["SOBELX"],
        description="horizontal Sobel convolution",
    ))
    graph.add_task(TaskSpec(
        name="SOBELY",
        fn=lambda state, inputs: {"c_gy": sobel_y(inputs["c_sy"])},
        reads=("c_sy",),
        writes=("c_gy",),
        ops_fn=lambda inputs: int(inputs["c_sy"].size * 10),
        gate_count=GATE_COUNTS["SOBELY"],
        description="vertical Sobel convolution",
    ))
    graph.add_task(TaskSpec(
        name="MAG",
        fn=lambda state, inputs: {
            "c_mag": grad_mag(inputs["c_gx"], inputs["c_gy"])
        },
        reads=("c_gx", "c_gy"),
        writes=("c_mag",),
        ops_fn=lambda inputs: int(inputs["c_gx"].size * 4),
        gate_count=GATE_COUNTS["MAG"],
        description="saturating L1 gradient magnitude (FPGA candidate)",
    ))
    graph.add_task(TaskSpec(
        name="THRESH",
        fn=lambda state, inputs: {
            "c_bin": binarize(inputs["c_mag"], db.threshold)
        },
        reads=("c_mag",),
        writes=("c_bin",),
        ops_fn=lambda inputs: int(inputs["c_mag"].size * 2),
        gate_count=GATE_COUNTS["THRESH"],
        description="edge threshold compare (FPGA candidate)",
    ))
    graph.add_task(TaskSpec(
        name="PROFILE",
        fn=lambda state, inputs: {"c_sig": edge_profile(inputs["c_bin"])},
        reads=("c_bin",),
        writes=("c_sig",),
        ops_fn=lambda inputs: int(inputs["c_bin"].size * 2),
        gate_count=GATE_COUNTS["PROFILE"],
        description="row/column edge-count projection signature",
    ))
    graph.add_task(TaskSpec(
        name="SIGDB",
        fn=lambda state, inputs: {"c_db": db.matrix},
        reads=("c_trig",),
        writes=("c_db",),
        ops_fn=lambda inputs: db.entries * 4,
        gate_count=GATE_COUNTS["SIGDB"],
        description="non-volatile store streaming enrolled signatures",
    ))
    graph.add_task(TaskSpec(
        name="MATCH",
        fn=lambda state, inputs: {
            "c_absdiff": absdiff(inputs["c_sig"], inputs["c_db"])
        },
        reads=("c_sig", "c_db"),
        writes=("c_absdiff",),
        ops_fn=lambda inputs: int(inputs["c_db"].size * 2),
        gate_count=GATE_COUNTS["MATCH"],
        description="per-entry absolute signature differences",
    ))
    graph.add_task(TaskSpec(
        name="SCOREACC",
        fn=lambda state, inputs: {"c_score": score_acc(inputs["c_absdiff"])},
        reads=("c_absdiff",),
        writes=("c_score",),
        ops_fn=lambda inputs: int(inputs["c_absdiff"].size),
        gate_count=GATE_COUNTS["SCOREACC"],
        description="L1 distance accumulation per entry",
    ))
    graph.add_task(TaskSpec(
        name="CLASSIFY",
        fn=lambda state, inputs: {
            "__result__": classify(inputs["c_score"], db.labels)
        },
        reads=("c_score",),
        writes=(),
        ops_fn=lambda inputs: int(len(inputs["c_score"])),
        gate_count=GATE_COUNTS["CLASSIFY"],
        description="argmin selection of the recognised part",
    ))

    graph.add_channel(ChannelSpec("c_frame", "CAMERA", "GAUSS", frame_words))
    graph.add_channel(ChannelSpec("c_trig", "CAMERA", "SIGDB", 1))
    graph.add_channel(ChannelSpec("c_sx", "GAUSS", "SOBELX", frame_words))
    graph.add_channel(ChannelSpec("c_sy", "GAUSS", "SOBELY", frame_words))
    graph.add_channel(ChannelSpec("c_gx", "SOBELX", "MAG", frame_words))
    graph.add_channel(ChannelSpec("c_gy", "SOBELY", "MAG", frame_words))
    graph.add_channel(ChannelSpec("c_mag", "MAG", "THRESH", frame_words))
    graph.add_channel(ChannelSpec("c_bin", "THRESH", "PROFILE", frame_words))
    graph.add_channel(ChannelSpec("c_sig", "PROFILE", "MATCH", sig_words))
    graph.add_channel(ChannelSpec(
        "c_db", "SIGDB", "MATCH", db.entries * sig_words))
    graph.add_channel(ChannelSpec(
        "c_absdiff", "MATCH", "SCOREACC", db.entries * sig_words))
    graph.add_channel(ChannelSpec("c_score", "SCOREACC", "CLASSIFY", db.entries))

    graph.validate()
    return graph


# -- level-4 datapaths ------------------------------------------------------------

def mag_step_function():
    """Saturating magnitude of pre-rectified gradients: ``min(ax+ay, 255)``."""
    fb = FunctionBuilder("mag_step", ["ax", "ay"])
    fb.assign("s", BinOp("+", Var("ax"), Var("ay")))
    with fb.if_(BinOp(">", Var("s"), Const(255))):
        fb.assign("s", Const(255))
    fb.ret(Var("s"))
    return fb.build()


def mag_step_reference(ax: int, ay: int) -> int:
    return min(ax + ay, 255)


def thresh_step_function():
    """Threshold compare: 255 when ``x >= t``, else 0."""
    fb = FunctionBuilder("thresh_step", ["x", "t"])
    with fb.if_else(BinOp(">=", Var("x"), Var("t"))) as orelse:
        fb.assign("out", Const(255))
    with orelse():
        fb.assign("out", Const(0))
    fb.ret(Var("out"))
    return fb.build()


def thresh_step_reference(x: int, t: int) -> int:
    return 255 if x >= t else 0


# -- the workload -----------------------------------------------------------------

@register_workload
class EdgeScanWorkload:
    """Conveyor part inspection by edge-profile matching."""

    name = "edgescan"
    description = "edge-detection part inspection against enrolled signatures"
    source_task = "CAMERA"
    reference_channels = ("c_gx", "c_gy", "c_mag", "c_bin", "c_sig",
                          "c_absdiff", "c_score")
    min_accuracy = 0.5
    conformance_overrides = {
        "frames": 1, "params": {"shapes": 2, "scales": 1, "size": 32},
    }
    #: bump when results change (retires repro.store entries)
    revision = 1

    #: Datapath width of the synthesised accelerators.
    WIDTH = 16

    #: ``spec.params`` knobs and their defaults.
    DEFAULT_PARAMS = {"shapes": 6, "scales": 2, "size": 48, "threshold": 64}

    def config(self, spec: Any) -> dict:
        params = validated_params(self.name, spec.params, self.DEFAULT_PARAMS)
        if params["shapes"] < 1 or params["scales"] < 1:
            raise ValueError("shapes and scales must be >= 1")
        if params["size"] < 16 or params["size"] % 2:
            raise ValueError("size must be an even integer >= 16")
        if not 0 < params["threshold"] <= 255:
            raise ValueError("threshold must be in (0, 255]")
        return params

    def build_environment(self, spec: Any) -> SignatureDb:
        p = self.config(spec)
        return enroll_signatures(p["shapes"], p["scales"], p["size"],
                                 p["threshold"])

    def build_graph(self, spec: Any, environment: SignatureDb) -> AppGraph:
        return build_edgescan_graph(environment, self.config(spec)["size"])

    def reference_model(self, spec: Any, environment: SignatureDb):
        return EdgeScanReference(environment)

    def shots(self, spec: Any) -> list[tuple[int, int]]:
        p = self.config(spec)
        return [(i % p["shapes"], (i * 3) % p["scales"])
                for i in range(spec.frames)]

    def sample_inputs(self, spec: Any, shots: list) -> list:
        p = self.config(spec)
        sampler = ConveyorSampler(p["size"], spec.noise_sigma, spec.seed)
        return sampler.frames(shots)

    def reference_trace(self, spec: Any, environment: SignatureDb,
                        inputs: list) -> Trace:
        model = self.reference_model(spec, environment)
        events: list = []
        for frame in inputs:
            model.recognize(frame, trace=events)
        return Trace.from_reference_events("reference", events)

    def partitions(self, graph: AppGraph) -> dict:
        hw = {"CAMERA", "GAUSS", "SOBELX", "SOBELY", "MAG", "THRESH"}
        assignment = {
            name: (Side.HW if name in hw else Side.SW) for name in graph.tasks
        }
        return {
            "timed": Partition(graph, dict(assignment), set()),
            "reconfigurable": Partition(graph, dict(assignment),
                                        set(FPGA_TASKS)),
        }

    def verify_plan(self, spec: Any) -> VerifyPlan:
        return VerifyPlan(
            functions={
                "MAG_STEP": mag_step_function(),
                "THRESH_STEP": thresh_step_function(),
            },
            reference_impls={
                "MAG_STEP": mag_step_reference,
                "THRESH_STEP": thresh_step_reference,
            },
            test_inputs={
                "MAG_STEP": [
                    {"ax": 0, "ay": 0},
                    {"ax": 100, "ay": 99},
                    {"ax": 255, "ay": 255},
                    {"ax": 3, "ay": 252},
                ],
                "THRESH_STEP": [
                    {"x": 0, "t": 64},
                    {"x": 63, "t": 64},
                    {"x": 64, "t": 64},
                    {"x": 255, "t": 64},
                ],
            },
            width=self.WIDTH,
        )

    def score(self, shots: list, results: dict) -> float:
        winners = results.get("CLASSIFY", [])
        if not winners:
            return 0.0
        hits = sum(
            1 for (shape, __), result in zip(shots, winners)
            if result is not None and result[0] == shape
        )
        return hits / len(winners)
