"""repro.workloads — pluggable target applications for the flow.

The methodology (sessions, stages, campaigns) is workload-agnostic;
everything application-specific lives behind the
:class:`~repro.workloads.base.Workload` protocol, registered by name:

- ``facerec`` — the paper's face-recognition case study;
- ``edgescan`` — edge-detection part inspection (convolution pipeline);
- ``blockcipher`` — AES-flavoured streaming encrypt/decrypt round-trip.

A :class:`~repro.api.spec.CampaignSpec` selects one via its ``workload``
field; adding a scenario is implementing the protocol and calling
:func:`register_workload` (see README, "Workloads").
"""

from repro.workloads.base import (
    VerifyPlan,
    Workload,
    get_workload,
    register_workload,
    registry_info,
    validated_params,
    workload_names,
)

# Importing the built-in workload modules registers them.
from repro.workloads import facerec as _facerec  # noqa: F401
from repro.workloads import edgescan as _edgescan  # noqa: F401
from repro.workloads import blockcipher as _blockcipher  # noqa: F401

__all__ = [
    "VerifyPlan",
    "Workload",
    "get_workload",
    "register_workload",
    "registry_info",
    "validated_params",
    "workload_names",
]
