"""The workload protocol and registry.

A *workload* is everything the flow needs to know about one target
application: how to build its level-1 dataflow graph, how to sample its
stimuli, the golden reference model every level is checked against, the
designer partitions for the timed levels, the behavioural models of the
FPGA-hosted datapaths for level-4 synthesis, and the per-workload pass
thresholds.  The methodology itself (sessions, stages, campaigns) is
workload-agnostic: it drives whichever implementation the
:class:`~repro.api.spec.CampaignSpec` names.

Workloads are registered process-wide by name, mirroring the stage
registry (:mod:`repro.api.stages`): ``@register_workload`` on the class,
``get_workload(name)`` to resolve, ``workload_names()`` to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, runtime_checkable


@dataclass(frozen=True)
class VerifyPlan:
    """Level-4 synthesis and verification inputs of one workload.

    ``functions`` maps module name to its behavioural description in the
    software IR (restricted to the synthesisable subset);
    ``reference_impls`` the host-side references the synthesised wrappers
    are checked against; ``test_inputs`` the argument dictionaries driven
    through each wrapper.  The plan must depend only on the workload
    identity (not on spec parameters): level 4 is memoized process-wide
    per ``(workload, run_pcc)``.
    """

    functions: Mapping[str, Any]
    reference_impls: Mapping[str, Callable]
    test_inputs: Mapping[str, list]
    width: int = 16


@runtime_checkable
class Workload(Protocol):
    """The uniform workload interface the flow drives.

    Class attributes:

    - ``name`` — registry key, also the ``workload`` field of specs;
    - ``description`` — one line for ``repro workloads`` listings;
    - ``source_task`` — the graph's stimuli-fed source task;
    - ``reference_channels`` — channels the golden trace records (the
      level-1 trace comparison is restricted to these);
    - ``min_accuracy`` — the workload's level-1 pass threshold on
      :meth:`score`;
    - ``conformance_overrides`` — spec-field overrides giving a
      reduced-size campaign for the cross-workload conformance suite;
    - ``revision`` (optional, default 1) — implementation revision
      baked into :mod:`repro.store` content addresses; bump it whenever
      the workload's results change so stored entries computed by the
      old implementation are retired rather than reused.
    """

    name: str
    description: str
    source_task: str
    reference_channels: tuple[str, ...]
    min_accuracy: float
    conformance_overrides: Mapping[str, Any]

    def config(self, spec: Any) -> Any:
        """Validated parameter record for ``spec`` (raises ValueError)."""
        ...

    def build_environment(self, spec: Any) -> Any:
        """The enrolled/derived data the application runs against."""
        ...

    def build_graph(self, spec: Any, environment: Any) -> Any:
        """The level-1 application graph (:class:`~repro.platform.taskgraph.AppGraph`)."""
        ...

    def reference_model(self, spec: Any, environment: Any) -> Any:
        """The sequential golden model ("programs written in C")."""
        ...

    def shots(self, spec: Any) -> list:
        """Deterministic input descriptors for ``spec.frames`` stimuli."""
        ...

    def sample_inputs(self, spec: Any, shots: list) -> list:
        """The stimulus tokens fed to ``source_task``, one per shot."""
        ...

    def reference_trace(self, spec: Any, environment: Any, inputs: list) -> Any:
        """Golden :class:`~repro.facerec.tracing.Trace` over ``inputs``."""
        ...

    def partitions(self, graph: Any) -> dict:
        """Designer partitions: ``{"timed": ..., "reconfigurable": ...}``."""
        ...

    def verify_plan(self, spec: Any) -> VerifyPlan:
        """The level-4 synthesis/verification plan."""
        ...

    def score(self, shots: list, results: dict) -> float:
        """Application-level accuracy in [0, 1] from the level-1 results."""
        ...


_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Any) -> Any:
    """Register a workload instance (or class, instantiated with no args).

    Usable as a class decorator.  Raises on duplicate or anonymous names.
    """
    instance = workload() if isinstance(workload, type) else workload
    if not getattr(instance, "name", ""):
        raise ValueError(f"workload {instance!r} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"workload {instance.name!r} already registered")
    _REGISTRY[instance.name] = instance
    return workload


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def workload_names() -> list[str]:
    return sorted(_REGISTRY)


def registry_info() -> dict[str, dict]:
    """Per-workload registry metadata, keyed by name.

    The row each operator surface shows for a workload — the ``repro
    workloads`` listing and the service's ``GET /v1/stats`` per-workload
    counters both read it: description, pass threshold, and the store
    ``revision`` currently serving (so an operator can tell whether a
    store was populated by this implementation or an older one).
    """
    return {
        name: {
            "description": workload.description,
            "min_accuracy": workload.min_accuracy,
            "revision": int(getattr(workload, "revision", 1)),
        }
        for name, workload in sorted(_REGISTRY.items())
    }


def validated_params(name: str, params: Mapping[str, Any],
                     defaults: Mapping[str, Any]) -> dict:
    """Merge ``params`` over ``defaults``, rejecting unknown keys.

    Shared helper for workloads whose knobs live in ``spec.params``.
    """
    unknown = set(params) - set(defaults)
    if unknown:
        raise ValueError(
            f"workload {name!r}: unknown params {sorted(unknown)} "
            f"(known: {sorted(defaults)})"
        )
    merged = dict(defaults)
    merged.update(params)
    return merged
