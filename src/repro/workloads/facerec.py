"""The face-recognition case study as a registered workload.

This is the paper's original scenario (Section 4), unchanged in
behaviour: the Figure-2 pipeline, the enrolled face database, the
sequential C-style reference model, the DISTANCE/ROOT FPGA partition and
the level-4 ROOT + DISTANCE_STEP verification plan — now packaged behind
the :class:`~repro.workloads.base.Workload` protocol so the flow no
longer hard-codes it.
"""

from __future__ import annotations

from typing import Any

from repro.facerec.camera import CameraConfig, FaceSampler
from repro.facerec.database import enroll_database
from repro.facerec.pipeline import FacerecConfig, build_graph, case_study_partition
from repro.facerec.reference import ReferenceModel
from repro.facerec.stages import isqrt
from repro.facerec.swmodels import (
    distance_step_function,
    distance_step_reference,
    root_function,
)
from repro.facerec.tracing import Trace
from repro.flow.methodology import REFERENCE_CHANNELS as _REFERENCE_CHANNELS
from repro.workloads.base import VerifyPlan, register_workload

#: Channels the reference model traces (internal trigger excluded) —
#: the single definition lives in :mod:`repro.flow.methodology`.
REFERENCE_CHANNELS = tuple(_REFERENCE_CHANNELS)


@register_workload
class FacerecWorkload:
    """Low-resolution CMOS-camera face recognition (paper Section 4)."""

    name = "facerec"
    description = "face recognition against an enrolled multi-pose database"
    source_task = "CAMERA"
    reference_channels = REFERENCE_CHANNELS
    min_accuracy = 0.5
    conformance_overrides = {"identities": 2, "poses": 1, "size": 32,
                             "frames": 1}
    #: bump when results change (retires repro.store entries)
    revision = 1

    #: Datapath width of the synthesised accelerators.
    WIDTH = 16

    def config(self, spec: Any) -> FacerecConfig:
        if spec.params:
            raise ValueError(
                "workload 'facerec' takes no free-form params; use the "
                "identities/poses/size spec fields"
            )
        return FacerecConfig(identities=spec.identities, poses=spec.poses,
                             size=spec.size)

    def build_environment(self, spec: Any):
        return enroll_database(spec.identities, spec.poses, spec.size)

    def build_graph(self, spec: Any, environment: Any):
        return build_graph(self.config(spec), environment)

    def reference_model(self, spec: Any, environment: Any) -> ReferenceModel:
        return ReferenceModel(environment)

    def shots(self, spec: Any) -> list[tuple[int, int]]:
        return [(i % spec.identities, (i * 7) % spec.poses)
                for i in range(spec.frames)]

    def sample_inputs(self, spec: Any, shots: list) -> list:
        sampler = FaceSampler(CameraConfig(
            size=spec.size, noise_sigma=spec.noise_sigma, seed=spec.seed))
        return sampler.frames(shots)

    def reference_trace(self, spec: Any, environment: Any, inputs: list) -> Trace:
        model = self.reference_model(spec, environment)
        events: list = []
        for frame in inputs:
            model.recognize(frame, trace=events)
        return Trace.from_reference_events("reference", events)

    def partitions(self, graph: Any) -> dict:
        return {
            "timed": case_study_partition(graph),
            "reconfigurable": case_study_partition(graph, with_fpga=True),
        }

    def verify_plan(self, spec: Any) -> VerifyPlan:
        width = self.WIDTH
        max_value = (1 << (width - 1)) - 1
        return VerifyPlan(
            functions={
                "ROOT": root_function(width),
                "DISTANCE_STEP": distance_step_function(),
            },
            reference_impls={
                "ROOT": lambda n: isqrt(n),
                "DISTANCE_STEP": lambda acc, a, b: distance_step_reference(
                    acc, a, b, width
                ),
            },
            test_inputs={
                "ROOT": [{"n": v} for v in (0, 1, 2, 99, 1024, max_value)],
                "DISTANCE_STEP": [
                    {"acc": 0, "a": 200, "b": 55},
                    {"acc": 123, "a": 7, "b": 250},
                    {"acc": 500, "a": 0, "b": 0},
                ],
            },
            width=width,
        )

    def score(self, shots: list, results: dict) -> float:
        winners = results.get("WINNER", [])
        if not winners:
            return 0.0
        hits = sum(
            1 for (identity, __), result in zip(shots, winners)
            if result is not None and result[0] == identity
        )
        return hits / len(winners)
