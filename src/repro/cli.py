"""Command-line driver: ``python -m repro <command>``.

Exposes the flow as a tool a design team would actually run, built on
the composable :mod:`repro.api` (sessions, stages, campaign specs) and
the pluggable :mod:`repro.workloads` registry:

- ``topology``  — print the selected workload's system model;
- ``flow``      — run the complete four-level methodology and report;
- ``campaign``  — run a :class:`~repro.api.spec.CampaignSpec` file
  (single run or grid sweep, optionally parallel with ``--jobs``);
- ``workloads`` — list the registered workloads;
- ``engine``    — the SWIR engine registry (``engine ls`` lists the
  registered engines with their option schemas);
- ``store``     — inspect/maintain a content-addressed campaign store
  (``ls``/``show``/``pack``/``gc``, with ``gc --dry-run`` previewing
  deletions and ``gc --policy 'QUERY'`` deleting a ledger query's
  result set);
- ``ledger``    — the provenance ledger over a store (``query`` runs a
  relational query over extracted facts, ``export`` writes/verifies
  signed archival bundles); ``repro query`` and ``repro export`` are
  top-level aliases;
- ``service``   — the campaign service daemon and its HTTP client
  (``start``/``submit``/``status``/``watch``);
- ``trace``     — inspect recorded telemetry spans (``show`` lists,
  ``tree`` renders per-trace flamegraph-style trees, ``top``
  aggregates durations by span name); recording is enabled by
  ``--trace`` on ``flow``/``campaign``/``service start`` or the
  ``REPRO_TRACE`` environment variable;
- ``explore``   — the level-2 architecture exploration sweep;
- ``verify``    — the level-1 LPV deadlock proof;
- ``wave``      — synthesise the ROOT module, run it, dump a VCD trace.

Every simulating command takes ``--workload`` (any registered name),
``--param key=value`` for workload-specific knobs and ``--engine`` to
pick the SWIR execution engine — a registered name (``ast`` |
``compiled`` | ``batched``) or a spec like
``batched:batch_width=128,jit_cache=false`` — results are
byte-identical whichever engine runs.  ``flow`` and ``campaign`` take
``--store PATH`` to persist results in a :mod:`repro.store` directory;
``campaign --resume`` skips grid points already completed there and
retries recorded failures.  Commands that produce results accept
``--json`` to emit the schema-stable machine-readable document instead
of prose.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import Optional

from repro.api import Campaign, CampaignSpec, Session, get_workload, workload_names
from repro.swir import DEFAULT_ENGINE, EngineSpec, engine_names, get_engine_info

#: Valid ``--log-level`` / ``REPRO_LOG_LEVEL`` spellings.
_LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def _setup_logging(level_name: str) -> None:
    """Wire the stdlib root logger once per process.

    ``logging.basicConfig`` is a no-op when the root logger already has
    handlers, so an embedding application's configuration wins.
    """
    level = getattr(logging, str(level_name).upper(), None)
    if not isinstance(level, int):
        level = logging.WARNING
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s")


def _maybe_enable_tracing(args) -> None:
    """``--trace`` / ``REPRO_TRACE``: point the span sink at the store.

    Spans land under ``<store>/spans`` (:func:`repro.telemetry.spans_dir_for`)
    so the ledger's ``span`` relation finds them next to the results they
    describe.  ``REPRO_TRACE`` may name an explicit sink directory;
    any other truthy value behaves like ``--trace``.
    """
    env = os.environ.get("REPRO_TRACE", "")
    wanted = getattr(args, "trace", False) or \
        env.lower() not in ("", "0", "false", "no")
    if not wanted:
        return
    from repro import telemetry

    if env and env.lower() not in ("1", "true", "yes"):
        telemetry.configure(spans_dir=env, enable_metrics=True)
        return
    store_path = getattr(args, "store", None)
    if not store_path:
        raise SystemExit("--trace needs --store PATH (spans are written "
                         "under <store>/spans)")
    telemetry.configure(
        spans_dir=telemetry.spans_dir_for(store_path),
        enable_metrics=True)


def _parse_param(text: str) -> tuple[str, object]:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"expected key=value, got {text!r}")
    try:
        value = json.loads(raw)
    except json.JSONDecodeError:
        value = raw
    return key, value


def _parse_engine(text: str) -> EngineSpec:
    """The ``--engine`` selector: ``name`` or ``name:key=value,...``."""
    try:
        return EngineSpec.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{exc} (see 'repro engine ls')")


def _add_workload_args(parser: argparse.ArgumentParser,
                       frames: bool = True) -> None:
    """Workload options; ``frames`` only where the command simulates."""
    parser.add_argument("--workload", default="facerec",
                        choices=workload_names(),
                        help="registered workload to run (default: facerec)")
    parser.add_argument("--param", action="append", default=[],
                        type=_parse_param, metavar="KEY=VALUE",
                        help="workload-specific parameter (repeatable); "
                             "values parse as JSON, falling back to string")
    parser.add_argument("--engine", default=DEFAULT_ENGINE,
                        type=_parse_engine, metavar="NAME[:KEY=VALUE,...]",
                        help="SWIR execution engine (A/B-identical results; "
                             f"default: {DEFAULT_ENGINE}); a registered name "
                             "or a spec like batched:batch_width=128 — "
                             "'repro engine ls' lists engines and options")
    parser.add_argument("--identities", type=int, default=10,
                        help="[facerec] database identities (paper: 20)")
    parser.add_argument("--poses", type=int, default=2,
                        help="[facerec] poses per identity (paper: multiple)")
    parser.add_argument("--size", type=int, default=48,
                        help="[facerec] frame side in pixels (even, >= 16)")
    if frames:
        parser.add_argument("--frames", type=int, default=3,
                            help="stimuli (probe frames / blocks) to process")


def _add_json_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON document")


def _spec(args, **extra) -> CampaignSpec:
    fields = {
        "workload": args.workload,
        "identities": args.identities,
        "poses": args.poses,
        "size": args.size,
        "params": dict(args.param),
        "engine": args.engine,
    }
    if hasattr(args, "frames"):
        fields["frames"] = args.frames
    fields.update(extra)
    return CampaignSpec(**fields)


def _emit(args, document: dict, text: str) -> None:
    if getattr(args, "json", False):
        print(json.dumps(document, indent=2))
    else:
        print(text)


def cmd_topology(args) -> int:
    from repro.flow.reportgen import topology_figure

    session = Session(_spec(args))
    figure = topology_figure(session.graph)
    _emit(args, {"schema": "repro.topology/v1",
                 "workload": args.workload, "figure": figure}, figure)
    return 0


def _open_store(args):
    from repro.store import CampaignStore

    return CampaignStore(args.store) if getattr(args, "store", None) else None


def cmd_flow(args) -> int:
    _maybe_enable_tracing(args)
    spec = _spec(args, run_pcc=args.pcc, deadline_ms=args.deadline_ms)
    report = Session(spec, store=_open_store(args)).report()
    _emit(args, report.to_dict(), report.describe())
    return 0 if report.passed else 1


def cmd_campaign(args) -> int:
    _maybe_enable_tracing(args)
    payload, sweep_grid = _load_submission(args.spec_file)
    spec = CampaignSpec.from_dict(payload)
    store = _open_store(args)
    if args.resume and store is None:
        raise SystemExit("--resume requires --store PATH")
    if sweep_grid:
        result = Campaign.sweep(spec, sweep_grid, jobs=args.jobs,
                                store=store, resume=args.resume)
    elif args.jobs > 1:
        raise SystemExit("--jobs requires a sweep grid in the spec file")
    else:
        return _run_single_campaign(args, spec, store)
    _emit(args, result.to_dict(), result.describe())
    return 0 if result.passed else 1


def _run_single_campaign(args, spec: CampaignSpec, store) -> int:
    """One-spec campaign, with store persistence and resume skip."""
    from repro.api.campaign import run_recorded

    if store is not None and args.resume:
        entry = store.get_campaign(spec)
        if entry is not None and entry["status"] == "ok":
            payload = entry["payload"]
            verdict = "PASSED" if payload["passed"] else "FAILED"
            _emit(args, payload,
                  f"campaign {spec.name!r} merged from store "
                  f"{entry['key'][:12]}: {verdict}")
            return 0 if payload["passed"] else 1
    outcome, payload = run_recorded(spec, store)
    _emit(args, payload, outcome.describe())
    return 0 if outcome.passed else 1


def cmd_store(args) -> int:
    from repro.store import CampaignStore

    try:
        # Maintenance commands never create: a mistyped path should
        # error out, not leave an empty store behind.
        store = CampaignStore(args.store, create=False)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.store_command == "ls":
        from repro.serialize import VOLATILE_KEYS, canonical_document

        rows = store.ls()
        # --json emits the *canonical* listing: sorted keys, volatile
        # created_at stripped, and the entry-file byte size too (it
        # shifts with the stripped timestamp's digit count).  Listings
        # of equivalent stores then diff clean, modulo the queried
        # ``store`` path itself.
        _emit(args, canonical_document({"schema": "repro.store_listing/v1",
                                        "store": str(store.root),
                                        "entries": rows},
                                       volatile=VOLATILE_KEYS | {"bytes"}),
              store.describe(rows))
        return 0
    if args.store_command == "show":
        try:
            envelope = store.show(args.key)
        except (KeyError, ValueError) as exc:
            raise SystemExit(str(exc))
        text = json.dumps(envelope, indent=2, sort_keys=True)
        _emit(args, envelope, text)
        return 0
    if args.store_command == "pack":
        stats = store.pack(dry_run=args.dry_run)
        document = {"schema": "repro.store_pack_report/v1",
                    "store": str(store.root), **stats}
        verb = "would pack" if args.dry_run else "packed"
        text = (f"pack {store.root}: {verb} {stats['packed']} loose "
                f"entries ({stats['bytes']} bytes) into "
                f"{stats['packs']} pack(s)")
        if stats.get("pack"):
            text += f"\n  {stats['pack']}"
        _emit(args, document, text)
        return 0
    # gc
    queue = None
    if getattr(args, "queue", None):
        from repro.service.queue import JobQueue

        try:
            queue = JobQueue(args.queue, create=False)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc))
    protect = frozenset()
    if queue is not None:
        # Entries referenced by queued/running jobs are live even though
        # the jobs haven't produced (or re-verified) them yet — a gc
        # racing the queue must not delete the failure entries those
        # jobs are about to retry.
        from repro.service.queue import active_store_keys

        protect = active_store_keys(queue)
    drop = frozenset()
    if getattr(args, "policy", None):
        # Ledger-driven gc: the policy query's result set — and exactly
        # it — is deleted (minus the protected keys; dry-run lists it).
        from repro.ledger import Ledger, QueryError, parse_query

        try:
            ledger = Ledger.from_store(store, queue=queue)
            drop = frozenset(parse_query(ledger, args.policy).keys())
        except QueryError as exc:
            raise SystemExit(f"bad --policy query: {exc}")
    stats = store.gc(failed=args.failed, dry_run=args.dry_run,
                     protect=protect, drop=drop)
    document = {"schema": "repro.store_gc/v1", "store": str(store.root),
                **stats}
    verb = "would remove" if args.dry_run else "removed"
    text = (f"gc {store.root}: {verb} {stats['removed_tmp']} temp files, "
            f"{stats['removed_corrupt']} corrupt entries, "
            f"{stats['removed_failed']} failed entries; "
            f"{stats['kept']} entries kept")
    if getattr(args, "policy", None):
        text += (f"; policy matched {stats['removed_policy']} "
                 f"entr{'y' if stats['removed_policy'] == 1 else 'ies'}")
    if stats["protected"]:
        text += (f"; {stats['protected']} spared (referenced by active "
                 f"jobs)")
    if args.dry_run and stats["candidates"]:
        text += "\n" + "\n".join(f"  {path}" for path in stats["candidates"])
    if args.dry_run and stats["protected_keys"]:
        text += "\n" + "\n".join(f"  protected {key}"
                                 for key in stats["protected_keys"])
    _emit(args, document, text)
    return 0


def _rows_table(rows: list) -> str:
    """Query result rows as an aligned operator table."""
    if not rows:
        return "0 rows"
    columns: list[str] = []
    for row in rows:
        for name in row:
            if name not in columns:
                columns.append(name)

    def cell(value) -> str:
        return value if isinstance(value, str) else json.dumps(value)

    table = [[cell(row.get(name)) for name in columns] for row in rows]
    widths = [max(len(name), *(len(line[i]) for line in table))
              for i, name in enumerate(columns)]
    lines = ["  ".join(f"{name:<{width}}"
                       for name, width in zip(columns, widths)).rstrip()]
    for line in table:
        lines.append("  ".join(f"{value:<{width}}" for value, width
                               in zip(line, widths)).rstrip())
    lines.append(f"{len(rows)} row{'' if len(rows) == 1 else 's'}")
    return "\n".join(lines)


def _open_ledger(args):
    """Build a :class:`repro.ledger.Ledger` from ``--store``/``--queue``."""
    from repro.ledger import Ledger
    from repro.store import CampaignStore

    try:
        store = CampaignStore(args.store, create=False)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    queue = None
    if getattr(args, "queue", None):
        from repro.service.queue import JobQueue

        try:
            queue = JobQueue(args.queue, create=False)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(str(exc))
    return Ledger.from_store(store, queue=queue)


def cmd_ledger(args) -> int:
    """``repro ledger query|export`` (aliases: ``repro query|export``)."""
    from repro.ledger import (
        ExportError,
        QueryError,
        export_bundle,
        resolve_key,
        verify_bundle,
    )

    if args.ledger_command == "query":
        if args.url and args.store:
            raise SystemExit("pass --store or --url, not both")
        if args.url:
            from repro.service import ServiceClient, ServiceError

            try:
                document = ServiceClient(args.url).query(args.query)
            except ServiceError as exc:
                raise SystemExit(str(exc))
        else:
            if not args.store:
                raise SystemExit("query needs --store PATH (or --url URL "
                                 "for a running service)")
            ledger = _open_ledger(args)
            try:
                rows = ledger.run(args.query)
            except QueryError as exc:
                raise SystemExit(f"bad query: {exc}")
            document = {"schema": "repro.ledger_query/v1",
                        "query": args.query, "count": len(rows),
                        "rows": rows, "facts": ledger.counts()}
        _emit(args, document, _rows_table(document["rows"]))
        return 0
    # export
    try:
        key = resolve_key(args.key, args.key_file)
    except ExportError as exc:
        raise SystemExit(str(exc))
    if args.verify:
        try:
            report = verify_bundle(args.target, key=key)
        except ExportError as exc:
            raise SystemExit(str(exc))
        verdict = "OK" if report["ok"] else "FAILED"
        text = (f"verify {args.target}: {verdict} — {report['keys']} "
                f"entries, {report['files_checked']} files checked")
        if report["errors"]:
            text += "\n" + "\n".join(f"  {error}"
                                     for error in report["errors"])
        _emit(args, report, text)
        return 0 if report["ok"] else 1
    if not args.store or not args.out:
        raise SystemExit("export needs --store PATH and --out DIR "
                         "(or --verify BUNDLE)")
    from repro.store import CampaignStore

    try:
        store = CampaignStore(args.store, create=False)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    try:
        spec_doc, sweep = _load_submission(args.target)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read spec file {args.target}: {exc}")
    try:
        report = export_bundle(store, spec_doc, args.out, sweep=sweep,
                               key=key)
    except ExportError as exc:
        raise SystemExit(str(exc))
    _emit(args, report,
          f"exported {report['name']!r}: {report['keys']} entries, "
          f"{report['bytes']} bytes -> {report['bundle']}")
    return 0


def _job_text(job: dict) -> str:
    """One job record as operator-facing prose."""
    lines = [f"job {job['id'][:12]} {job['status'].upper()}  "
             f"{job['kind']} {job['name']!r} "
             f"(workload={job['workload']}, priority={job['priority']}, "
             f"attempts={job['attempts']})"]
    result = job.get("result")
    if result:
        resume = result.get("store_resume", {})
        verdict = "PASSED" if result.get("passed") else "FAILED"
        lines.append(
            f"  {verdict}: {result.get('points', 0)} points "
            f"({len(resume.get('hits', ()))} from store, "
            f"{len(resume.get('executed', ()))} executed, "
            f"{len(resume.get('retried', ()))} retried)")
    error = job.get("error")
    if error:
        lines.append(f"  error: {error['type']}: {error['message']}")
    return "\n".join(lines)


def _load_submission(spec_file: str) -> tuple[dict, Optional[dict]]:
    """A campaign file: bare spec document or ``{"spec", "sweep"}``.

    The one definition of the file format both ``repro campaign`` and
    ``repro service submit`` accept.
    """
    with open(spec_file) as stream:
        payload = json.load(stream)
    if isinstance(payload, dict) and "sweep" in payload:
        return payload.get("spec", {}), payload["sweep"]
    return payload, None


def cmd_service(args) -> int:
    from repro.service import ServiceClient, ServiceError

    if args.service_command == "start":
        from repro.service import CampaignService

        trace = args.trace or os.environ.get(
            "REPRO_TRACE", "").lower() not in ("", "0", "false", "no")
        try:
            service = CampaignService(args.root, host=args.host,
                                      port=args.port, workers=args.workers,
                                      job_timeout=args.job_timeout,
                                      max_depth=args.max_depth,
                                      tenant_quota=args.tenant_quota,
                                      trace=trace)
        except (RuntimeError, ValueError, OSError) as exc:
            # Root already served by another daemon, port in use, bad
            # --workers, or a queue/store version mismatch: one clean
            # line, not a traceback.
            raise SystemExit(str(exc))
        service.start()
        workers_note = (f"{service.pool.workers} workers"
                        if service.pool is not None
                        else "coordinator-only, 0 local workers")
        print(f"campaign service at {service.url} "
              f"({workers_note}, root {service.root})")
        if service.recovered:
            print(f"recovered {len(service.recovered)} interrupted jobs: "
                  + ", ".join(job_id[:12] for job_id in service.recovered))
        try:
            import threading

            threading.Event().wait()  # serve until interrupted
        except KeyboardInterrupt:
            print("shutting down (waiting for in-flight jobs)")
        finally:
            service.stop()
        return 0

    client = ServiceClient(args.url)
    try:
        if args.service_command == "submit":
            spec_doc, sweep = _load_submission(args.spec_file)
            job = client.submit(spec_doc, sweep=sweep,
                                priority=args.priority, jobs=args.jobs,
                                tenant=args.tenant)
            note = " (coalesced onto existing job)" if job.get("coalesced") \
                else ""
            if not args.watch:
                _emit(args, job, _job_text(job) + note)
                return 0
            # --json --watch emits exactly one document (the terminal
            # record), keeping the one-document-per-invocation contract;
            # prose mode narrates both the submission and the outcome.
            if not args.json:
                print(_job_text(job) + note)
            job = client.wait(job["id"], timeout=args.timeout,
                              interval=args.interval)
            _emit(args, job, _job_text(job))
            return 0 if job["status"] == "done" and \
                job["result"]["passed"] else 1
        if args.service_command == "stats":
            stats = client.stats()
            _emit(args, stats, _stats_table(stats))
            return 0
        if args.service_command == "status":
            if args.job:
                # The server resolves unique id prefixes.
                job = client.get(args.job)
                _emit(args, job, _job_text(job))
                return 0
            stats = client.stats()
            by_status = stats["queue"]["by_status"]
            workers = stats["workers"]
            counts = ", ".join(f"{n} {s}"
                               for s, n in sorted(by_status.items()) if n)
            text = f"queue: {counts or 'empty'}"
            text += (f"\nworkers: {workers['busy']}/{workers['total']} busy, "
                     f"{workers['jobs_done']} jobs done, "
                     f"{workers['jobs_failed']} failed"
                     f"\npoints: {workers['points_hit']} store hits, "
                     f"{workers['points_executed']} executed, "
                     f"{workers['points_retried']} retried")
            _emit(args, stats, text)
            return 0
        # watch
        job = client.wait(args.job, timeout=args.timeout,
                          interval=args.interval)
        _emit(args, job, _job_text(job))
        return 0 if job["status"] == "done" and job["result"]["passed"] \
            else 1
    except (ServiceError, TimeoutError) as exc:
        raise SystemExit(str(exc))


def _stats_table(stats: dict) -> str:
    """``repro service stats``: the /v1/stats document as an operator
    table — queue, workers, store, and the fleet's runner roster."""
    import time as _time

    queue = stats["queue"]
    workers = stats["workers"]
    store = stats["store"]
    fleet = stats.get("fleet", {})
    by_status = ", ".join(f"{count} {status}" for status, count
                          in sorted(queue["by_status"].items()) if count)
    rows = [
        ("queue", f"depth {queue['depth']}"
                  + (f"  ({by_status})" if by_status else "")),
        ("workers", f"{workers['busy']}/{workers['total']} busy | "
                    f"{workers['jobs_done']} done, "
                    f"{workers['jobs_failed']} failed"),
        ("points", f"{workers['points_hit']} store hits, "
                   f"{workers['points_executed']} executed, "
                   f"{workers['points_retried']} retried"),
        ("store", f"{store['entries']} entries, "
                  f"{store['payload_reads']} payload reads"),
        ("fleet", f"{fleet.get('runners_seen', 0)} runners seen, "
                  f"{fleet.get('live_leases', 0)} live leases | "
                  f"{fleet.get('expired_requeues', 0)} expired requeues, "
                  f"{fleet.get('warm_completed', 0)} warm completions, "
                  f"{fleet.get('zombie_drops', 0)} zombie drops"),
        ("uptime", f"{stats['uptime_seconds']:.0f}s"),
    ]
    width = max(len(name) for name, _ in rows)
    lines = [f"{name:<{width}}  {value}" for name, value in rows]
    now = _time.time()
    for name, info in sorted(fleet.get("runners", {}).items()):
        lines.append(f"  runner {name}: {info['claims']} claims, "
                     f"{info['uploads']} uploads, last seen "
                     f"{max(0.0, now - info['last_seen']):.1f}s ago")
    for lease in fleet.get("leases", []):
        lines.append(f"  lease {lease['job_id'][:12]} -> "
                     f"{lease['runner']} (gen {lease['generation']}, "
                     f"expires in {lease['expires_in']:.1f}s)")
    metrics = stats.get("metrics") or {}
    if metrics:
        lines.append("metrics")
        name_width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            value = metrics[name]
            text = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{name_width}}  {text}")
    return "\n".join(lines)


# -- trace inspection --------------------------------------------------------------


def _span_line(record: dict, indent: str = "") -> str:
    """One span record as an operator-facing line."""
    duration = record.get("duration_ms")
    timing = f"{duration:9.1f}ms" if isinstance(duration, (int, float)) \
        else "         ?"
    status = record.get("status", "?")
    marker = "" if status == "ok" else f"  [{status.upper()}]"
    attrs = record.get("attrs") or {}
    detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return (f"{timing}  {indent}{record.get('name', '?')}"
            f"{marker}{('  ' + detail) if detail else ''}")


def _render_trace_tree(spans: list[dict]) -> list[str]:
    """Flamegraph-style indented trees, one per trace id."""
    by_id = {record["span_id"]: record for record in spans
             if record.get("span_id")}
    children: dict[Optional[str], list[dict]] = {}
    for record in spans:
        parent = record.get("parent_id")
        # A parent outside the sink (e.g. a span still open when the
        # process died) makes its children roots of their trace.
        key = parent if parent in by_id else None
        children.setdefault(key, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: r.get("start_unix") or 0.0)
    lines: list[str] = []

    def walk(record: dict, depth: int) -> None:
        lines.append(_span_line(record, "  " * depth))
        for child in children.get(record.get("span_id"), []):
            walk(child, depth + 1)

    roots = children.get(None, [])
    for index, root in enumerate(roots):
        if index:
            lines.append("")
        trace_id = root.get("trace_id", "?")
        lines.append(f"trace {trace_id}")
        walk(root, 1)
    return lines


def cmd_trace(args) -> int:
    """``repro trace show|tree|top``: inspect a store's span sink."""
    from repro.telemetry import read_spans, spans_dir_for

    if not os.path.isdir(args.store):
        raise SystemExit(f"no store directory at {args.store}")
    spans = read_spans(spans_dir_for(args.store))
    if getattr(args, "name", None):
        spans = [record for record in spans
                 if record.get("name") == args.name]
    if getattr(args, "status", None):
        spans = [record for record in spans
                 if record.get("status") == args.status]
    spans.sort(key=lambda r: r.get("start_unix") or 0.0)
    if args.trace_command == "show":
        shown = spans[-args.limit:] if args.limit else spans
        document = {"schema": "repro.trace_show/v1",
                    "store": str(args.store), "count": len(spans),
                    "spans": shown}
        text = "\n".join(_span_line(record) for record in shown) \
            or "0 spans"
        _emit(args, document, text)
        return 0
    if args.trace_command == "tree":
        if getattr(args, "trace_id", None):
            spans = [record for record in spans
                     if record.get("trace_id") == args.trace_id]
        document = {"schema": "repro.trace_tree/v1",
                    "store": str(args.store), "count": len(spans),
                    "spans": spans}
        _emit(args, document,
              "\n".join(_render_trace_tree(spans)) or "0 spans")
        return 0
    # top: aggregate by span name, heaviest total first
    totals: dict[str, dict] = {}
    for record in spans:
        duration = record.get("duration_ms")
        if not isinstance(duration, (int, float)):
            continue
        row = totals.setdefault(record["name"], {
            "name": record["name"], "count": 0, "total_ms": 0.0,
            "max_ms": 0.0})
        row["count"] += 1
        row["total_ms"] += duration
        row["max_ms"] = max(row["max_ms"], duration)
    rows = sorted(totals.values(), key=lambda r: -r["total_ms"])
    if args.limit:
        rows = rows[:args.limit]
    for row in rows:
        row["mean_ms"] = row["total_ms"] / row["count"]
    document = {"schema": "repro.trace_top/v1", "store": str(args.store),
                "rows": rows}
    lines = [f"{'total ms':>10}  {'count':>6}  {'mean ms':>10}  "
             f"{'max ms':>10}  name"]
    for row in rows:
        lines.append(f"{row['total_ms']:10.1f}  {row['count']:6d}  "
                     f"{row['mean_ms']:10.1f}  {row['max_ms']:10.1f}  "
                     f"{row['name']}")
    _emit(args, document, "\n".join(lines) if rows else "0 spans")
    return 0


def cmd_runner(args) -> int:
    """``repro runner start``: one fleet runner draining a coordinator."""
    from repro.fleet import RunnerAgent
    from repro.service import ServiceError

    try:
        agent = RunnerAgent(args.server, args.root, name=args.name,
                            ttl=args.ttl, poll_interval=args.poll,
                            job_timeout=args.job_timeout)
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    print(f"runner {agent.name} -> {args.server} "
          f"(local store {agent.store.root}, lease ttl {agent.ttl:g}s)")
    try:
        processed = agent.run_forever(max_jobs=args.max_jobs)
    except KeyboardInterrupt:
        processed = agent.jobs_done + agent.jobs_failed
        print("runner interrupted")
    except ServiceError as exc:
        raise SystemExit(str(exc))
    print(f"runner {agent.name}: {processed} jobs processed "
          f"({agent.jobs_done} ok, {agent.jobs_failed} failed, "
          f"{agent.leases_lost} leases lost, "
          f"{agent.entries_uploaded} entries uploaded)")
    return 0


def cmd_workloads(args) -> int:
    rows = []
    for name in workload_names():
        workload = get_workload(name)
        rows.append({
            "name": name,
            "description": workload.description,
            "source_task": workload.source_task,
            "min_accuracy": workload.min_accuracy,
        })
    document = {"schema": "repro.workloads/v1", "workloads": rows}
    lines = [f"{len(rows)} registered workloads:"]
    for row in rows:
        lines.append(f"  {row['name']:<12} {row['description']} "
                     f"(accuracy threshold {row['min_accuracy']:.0%})")
    _emit(args, document, "\n".join(lines))
    return 0


def cmd_engine(args) -> int:
    # Mirrors ``workloads``: one row per registered engine, option
    # schemas included, ``--json`` canonical for tooling.
    rows = []
    for name in engine_names():
        info = get_engine_info(name)
        rows.append({
            "name": name,
            "description": info.description,
            "default": name == DEFAULT_ENGINE,
            "options": info.option_schema(),
        })
    document = {"schema": "repro.engines/v1", "engines": rows}
    lines = [f"{len(rows)} registered engines:"]
    for row in rows:
        marker = " (default)" if row["default"] else ""
        lines.append(f"  {row['name']:<10} {row['description']}{marker}")
        for opt_name, schema in row["options"].items():
            lines.append(f"    --engine {row['name']}:{opt_name}=... "
                         f"[{schema['type']}, default "
                         f"{json.dumps(schema['default'])}] "
                         f"{schema['description']}")
    _emit(args, document, "\n".join(lines))
    return 0


def cmd_explore(args) -> int:
    from repro.platform import Explorer

    session = Session(_spec(args))
    profile = session.value("profile")
    result = Explorer(session.graph, profile).explore(
        session.stimuli(), max_hw=args.max_hw)
    document = {
        "schema": "repro.explore/v1",
        "profile": profile.to_dict(),
        "exploration": result.to_dict(),
    }
    text = "\n\n".join([profile.describe(), result.describe()])
    _emit(args, document, text)
    return 0


def cmd_verify(args) -> int:
    from repro.verify.lpv import check_deadlock_freedom, graph_to_petri

    session = Session(_spec(args))
    report = check_deadlock_freedom(graph_to_petri(session.graph),
                                    confirm=False)
    _emit(args, report.to_dict(), report.describe())
    return 0 if report.deadlock_free else 1


def cmd_wave(args) -> int:
    from repro.facerec.swmodels import root_function
    from repro.rtl.synth import synthesize
    from repro.rtl.vcd import dump_fsmd_run

    netlist = synthesize(root_function(16), width=16)
    stimulus = [{"start": 1, "arg_n": args.value}]
    stimulus += [{"start": 0, "arg_n": 0}] * (args.cycles - 1)
    with open(args.out, "w") as stream:
        cycles = dump_fsmd_run(netlist, stimulus, stream)
    _emit(args, {"schema": "repro.wave/v1", "module": netlist.name,
                 "cycles": cycles, "out": args.out},
          f"wrote {cycles} cycles of {netlist.name} to {args.out}")
    return 0


def _add_ledger_query_args(parser: argparse.ArgumentParser) -> None:
    """``repro [ledger] query`` arguments (one definition, two spellings)."""
    parser.add_argument(
        "query",
        help="textual query, e.g. \"entry where engine_rev < 2 and "
             "status == 'ok'\" or \"journal_touched where fpga_ctx == "
             "'FE' join spec on spec_hash = hash select name, key\"")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="campaign store directory to extract facts "
                             "from")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="job queue directory: adds job/lease facts "
                             "and the entry.active_job flag")
    parser.add_argument("--url", metavar="URL", default=None,
                        help="query a running campaign service "
                             "(POST /v1/query) instead of a local store")
    _add_json_arg(parser)
    parser.set_defaults(func=cmd_ledger, ledger_command="query")


def _add_ledger_export_args(parser: argparse.ArgumentParser) -> None:
    """``repro [ledger] export`` arguments (one definition, two
    spellings)."""
    parser.add_argument(
        "target",
        help="campaign spec file to export (a spec document or "
             '{"spec", "sweep"}); with --verify, a bundle directory')
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="campaign store directory holding the "
                             "verified results to bundle")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="bundle directory to write")
    parser.add_argument("--verify", action="store_true",
                        help="treat TARGET as an existing bundle and "
                             "re-check its signature, file hashes and "
                             "entry content addresses")
    parser.add_argument("--key", default=None,
                        help="signing/verification key (utf-8 text); "
                             "default is a public integrity-seal key")
    parser.add_argument("--key-file", metavar="FILE", default=None,
                        help="read the key from FILE (raw bytes, "
                             "surrounding whitespace stripped)")
    _add_json_arg(parser)
    parser.set_defaults(func=cmd_ledger, ledger_command="export")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbad reconfigurable-SoC design & verification flow",
    )
    parser.add_argument(
        "--log-level", default=os.environ.get("REPRO_LOG_LEVEL", "warning"),
        choices=_LOG_LEVELS, metavar="LEVEL",
        help="stdlib logging threshold (debug|info|warning|error|critical; "
             "default: warning, REPRO_LOG_LEVEL env overrides)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_topology = sub.add_parser("topology", help="print the system model")
    _add_workload_args(p_topology, frames=False)
    _add_json_arg(p_topology)
    p_topology.set_defaults(func=cmd_topology)

    p_flow = sub.add_parser("flow", help="run the full four-level flow")
    _add_workload_args(p_flow)
    p_flow.add_argument("--pcc", action="store_true",
                        help="include the PCC property-coverage pass (slow)")
    p_flow.add_argument("--deadline-ms", type=float, default=500.0,
                        help="LPV frame deadline in milliseconds")
    p_flow.add_argument("--store", metavar="PATH",
                        help="campaign store directory: persist/reload the "
                             "expensive level-4 verification across runs")
    p_flow.add_argument("--trace", action="store_true",
                        help="record hierarchical spans under "
                             "<store>/spans (results stay byte-identical; "
                             "REPRO_TRACE env also enables)")
    _add_json_arg(p_flow)
    p_flow.set_defaults(func=cmd_flow)

    p_campaign = sub.add_parser(
        "campaign", help="run a campaign spec file (single run or sweep)")
    p_campaign.add_argument(
        "spec_file",
        help="JSON file: either a campaign spec document, or "
             '{"spec": {...}, "sweep": {field: [values, ...]}}')
    p_campaign.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan sweep grid points out over N worker processes")
    p_campaign.add_argument(
        "--store", metavar="PATH",
        help="campaign store directory: persist every completed point "
             "(and failures) under its content address")
    p_campaign.add_argument(
        "--resume", action="store_true",
        help="skip points already completed in --store; retry only "
             "recorded failures")
    p_campaign.add_argument(
        "--trace", action="store_true",
        help="record hierarchical spans under <store>/spans (results "
             "stay byte-identical; REPRO_TRACE env also enables)")
    _add_json_arg(p_campaign)
    p_campaign.set_defaults(func=cmd_campaign)

    p_store = sub.add_parser(
        "store", help="inspect/maintain a campaign store directory")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_ls = store_sub.add_parser("ls", help="list store entries")
    p_store_show = store_sub.add_parser(
        "show", help="print one entry envelope (unique key prefix ok)")
    p_store_show.add_argument("key", help="entry key or unique prefix")
    p_store_gc = store_sub.add_parser(
        "gc", help="reclaim temp litter and corrupt entries")
    p_store_gc.add_argument(
        "--failed", action="store_true",
        help="also remove failure entries (their points will re-run "
             "on the next resumed sweep)")
    p_store_gc.add_argument(
        "--dry-run", action="store_true",
        help="print what would be deleted, delete nothing")
    p_store_gc.add_argument(
        "--queue", metavar="DIR", default=None,
        help="job queue directory: never delete entries referenced by "
             "its queued/running jobs")
    p_store_gc.add_argument(
        "--policy", metavar="QUERY", default=None,
        help="ledger query selecting entries to delete, e.g. "
             "\"entry where engine_rev < 2 and active_job == false\"; "
             "the query's result set — and exactly it — is removed "
             "(combine with --dry-run to preview)")
    p_store_pack = store_sub.add_parser(
        "pack", help="pack loose entries into a pack + index pair")
    p_store_pack.add_argument(
        "--dry-run", action="store_true",
        help="report what would be packed, write nothing")
    for p_sub in (p_store_ls, p_store_show, p_store_gc, p_store_pack):
        p_sub.add_argument("--store", metavar="PATH", required=True,
                           help="campaign store directory")
        _add_json_arg(p_sub)
        p_sub.set_defaults(func=cmd_store)

    p_ledger = sub.add_parser(
        "ledger",
        help="query the provenance ledger / signed export bundles")
    ledger_sub = p_ledger.add_subparsers(dest="ledger_verb", required=True)
    _add_ledger_query_args(ledger_sub.add_parser(
        "query", help="run a relational query over extracted facts"))
    _add_ledger_export_args(ledger_sub.add_parser(
        "export", help="write (or --verify) a signed archival bundle"))
    # Top-level spellings from the ROADMAP: ``repro query '<expr>'``
    # and ``repro export <spec>`` are aliases of the noun-verb forms.
    _add_ledger_query_args(sub.add_parser(
        "query", help="alias for 'ledger query'"))
    _add_ledger_export_args(sub.add_parser(
        "export", help="alias for 'ledger export'"))

    p_service = sub.add_parser(
        "service", help="run or talk to the campaign service daemon")
    service_sub = p_service.add_subparsers(dest="service_command",
                                           required=True)
    p_svc_start = service_sub.add_parser(
        "start", help="run the daemon (queue + workers + HTTP API)")
    p_svc_start.add_argument("--root", required=True, metavar="DIR",
                             help="service root (holds store/ and queue/)")
    p_svc_start.add_argument("--host", default="127.0.0.1",
                             help="bind address (default: 127.0.0.1)")
    p_svc_start.add_argument("--port", type=int, default=8642,
                             help="bind port; 0 picks an ephemeral port")
    p_svc_start.add_argument("--workers", type=int, default=None, metavar="N",
                             help="worker threads (default: available CPUs; "
                                  "REPRO_JOBS env overrides detection; 0 "
                                  "runs a coordinator for fleet runners "
                                  "only)")
    p_svc_start.add_argument("--job-timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="kill any job still running after this "
                                  "long (default: unlimited)")
    p_svc_start.add_argument("--max-depth", type=int, default=None,
                             metavar="N",
                             help="back-pressure submissions (HTTP 429) "
                                  "once N jobs are queued or running "
                                  "(default: unbounded)")
    p_svc_start.add_argument("--tenant-quota", type=int, default=None,
                             metavar="N",
                             help="cap each submitting tenant at N active "
                                  "jobs (default: unbounded)")
    p_svc_start.add_argument("--trace", action="store_true",
                             help="record job/campaign spans under "
                                  "<root>/store/spans (REPRO_TRACE env "
                                  "also enables)")
    p_svc_start.set_defaults(func=cmd_service)
    p_svc_submit = service_sub.add_parser(
        "submit", help="submit a campaign spec file over HTTP")
    p_svc_submit.add_argument(
        "spec_file",
        help="JSON file: a campaign spec document, or "
             '{"spec": {...}, "sweep": {field: [values, ...]}}')
    p_svc_submit.add_argument("--priority", type=int, default=0,
                              help="queue priority (higher runs first)")
    p_svc_submit.add_argument("--jobs", type=int, default=1, metavar="N",
                              help="worker processes within the job's sweep")
    p_svc_submit.add_argument("--watch", action="store_true",
                              help="poll until the job finishes; exit 0 "
                                   "only if it passed")
    p_svc_submit.add_argument("--tenant", default=None,
                              help="submitter token the server keys its "
                                   "per-tenant quota on")
    p_svc_status = service_sub.add_parser(
        "status", help="one job's record, or service stats without a job")
    p_svc_status.add_argument("job", nargs="?", default=None,
                              help="job id (unique prefix ok); omit for "
                                   "service-wide stats")
    p_svc_stats = service_sub.add_parser(
        "stats", help="queue/worker/store/fleet counters as a table")
    p_svc_watch = service_sub.add_parser(
        "watch", help="poll one job to completion")
    p_svc_watch.add_argument("job", help="job id (unique prefix ok)")
    for p_sub in (p_svc_submit, p_svc_status, p_svc_stats, p_svc_watch):
        p_sub.add_argument("--url", default="http://127.0.0.1:8642",
                           help="service endpoint "
                                "(default: http://127.0.0.1:8642)")
        _add_json_arg(p_sub)
        p_sub.set_defaults(func=cmd_service)
    for p_sub in (p_svc_submit, p_svc_watch):
        p_sub.add_argument("--timeout", type=float, default=600.0,
                           help="seconds to wait before giving up")
        p_sub.add_argument("--interval", type=float, default=0.5,
                           help="poll interval in seconds")

    p_runner = sub.add_parser(
        "runner", help="run a fleet runner against a campaign service")
    runner_sub = p_runner.add_subparsers(dest="runner_command",
                                         required=True)
    p_runner_start = runner_sub.add_parser(
        "start", help="claim, execute and upload jobs until interrupted")
    p_runner_start.add_argument("--server", required=True, metavar="URL",
                                help="coordinator endpoint, e.g. "
                                     "http://127.0.0.1:8642")
    p_runner_start.add_argument("--root", required=True, metavar="DIR",
                                help="local campaign store directory "
                                     "(created if missing; re-claimed "
                                     "work resumes warm from it)")
    p_runner_start.add_argument("--name", default=None,
                                help="runner name shown in service stats "
                                     "(default: <hostname>-<pid>)")
    p_runner_start.add_argument("--ttl", type=float, default=30.0,
                                metavar="SECONDS",
                                help="lease TTL; heartbeats every ttl/3 "
                                     "(default: 30)")
    p_runner_start.add_argument("--poll", type=float, default=1.0,
                                metavar="SECONDS",
                                help="idle poll interval when the queue "
                                     "is dry (default: 1)")
    p_runner_start.add_argument("--max-jobs", type=int, default=None,
                                metavar="N",
                                help="exit after processing N jobs "
                                     "(default: run until interrupted)")
    p_runner_start.add_argument("--job-timeout", type=float, default=None,
                                metavar="SECONDS",
                                help="kill any job child still running "
                                     "after this long")
    p_runner_start.set_defaults(func=cmd_runner)

    p_trace = sub.add_parser(
        "trace", help="inspect recorded spans (show/tree/top)")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_trace_show = trace_sub.add_parser(
        "show", help="flat span listing, oldest first")
    p_trace_tree = trace_sub.add_parser(
        "tree", help="per-trace span trees (flamegraph-style indent)")
    p_trace_top = trace_sub.add_parser(
        "top", help="aggregate span durations by name, heaviest first")
    p_trace_tree.add_argument("--trace-id", default=None,
                              help="render only this trace")
    for p_sub in (p_trace_show, p_trace_tree, p_trace_top):
        p_sub.add_argument("--store", metavar="PATH", required=True,
                           help="campaign store directory whose spans/ "
                                "sink to read")
        p_sub.add_argument("--name", default=None,
                           help="only spans with this exact name")
        p_sub.add_argument("--status", default=None,
                           choices=("ok", "error", "aborted"),
                           help="only spans with this terminal status")
        p_sub.add_argument("--limit", type=int,
                           default=50 if p_sub is p_trace_show else 0,
                           metavar="N",
                           help="cap the rows shown (0 = unlimited)")
        _add_json_arg(p_sub)
        p_sub.set_defaults(func=cmd_trace)

    p_workloads = sub.add_parser("workloads",
                                 help="list the registered workloads")
    _add_json_arg(p_workloads)
    p_workloads.set_defaults(func=cmd_workloads)

    p_engine = sub.add_parser(
        "engine", help="the SWIR engine registry")
    engine_sub = p_engine.add_subparsers(dest="engine_command", required=True)
    p_engine_ls = engine_sub.add_parser(
        "ls", help="list registered engines and their option schemas")
    _add_json_arg(p_engine_ls)
    p_engine_ls.set_defaults(func=cmd_engine)

    p_explore = sub.add_parser("explore", help="level-2 architecture sweep")
    _add_workload_args(p_explore)
    p_explore.add_argument("--max-hw", type=int, default=6,
                           help="largest heaviest-k-to-HW candidate")
    _add_json_arg(p_explore)
    p_explore.set_defaults(func=cmd_explore)

    p_verify = sub.add_parser("verify",
                              help="LPV deadlock proof of the system model")
    _add_workload_args(p_verify, frames=False)
    _add_json_arg(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_wave = sub.add_parser("wave", help="dump a VCD trace of the ROOT FSMD")
    p_wave.add_argument("--value", type=int, default=30_000,
                        help="input to take the square root of")
    p_wave.add_argument("--cycles", type=int, default=64,
                        help="cycles to trace")
    p_wave.add_argument("--out", default="root.vcd", help="output VCD path")
    _add_json_arg(p_wave)
    p_wave.set_defaults(func=cmd_wave)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _setup_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
