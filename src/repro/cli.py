"""Command-line driver: ``python -m repro <command>``.

Exposes the flow as a tool a design team would actually run:

- ``topology``  — print the Figure-2 system model;
- ``flow``      — run the complete four-level methodology and report;
- ``explore``   — the level-2 architecture exploration sweep;
- ``verify``    — the level-1 LPV deadlock proof and ATPG smoke campaign;
- ``wave``      — synthesise the ROOT module, run it, dump a VCD trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.facerec import FacerecConfig
from repro.flow import SymbadFlow


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--identities", type=int, default=10,
                        help="database identities (paper: 20)")
    parser.add_argument("--poses", type=int, default=2,
                        help="poses per identity (paper: multiple)")
    parser.add_argument("--size", type=int, default=48,
                        help="frame side in pixels (even, >= 16)")
    parser.add_argument("--frames", type=int, default=3,
                        help="probe frames to process")


def _config(args) -> FacerecConfig:
    return FacerecConfig(identities=args.identities, poses=args.poses,
                         size=args.size)


def cmd_topology(args) -> int:
    flow = SymbadFlow(config=_config(args), frames=args.frames)
    print(flow.topology())
    return 0


def cmd_flow(args) -> int:
    flow = SymbadFlow(config=_config(args), frames=args.frames)
    report = flow.run(run_pcc=args.pcc)
    print(report.describe())
    ok = (report.level1.matches_reference
          and report.level2.consistent_with_level1
          and report.level3.consistent_with_level2
          and report.level3.symbc.consistent
          and report.level4.verified)
    return 0 if ok else 1


def cmd_explore(args) -> int:
    from repro.facerec import CameraConfig, FaceSampler, build_graph
    from repro.platform import Explorer, profile_graph

    config = _config(args)
    graph = build_graph(config)
    sampler = FaceSampler(CameraConfig(size=config.size))
    frames = sampler.frames([(i % config.identities, i % config.poses)
                             for i in range(args.frames)])
    profile = profile_graph(graph, {"CAMERA": frames})
    print(profile.describe())
    result = Explorer(graph, profile).explore({"CAMERA": frames},
                                              max_hw=args.max_hw)
    print()
    print(result.describe())
    return 0


def cmd_verify(args) -> int:
    from repro.facerec import build_graph
    from repro.verify.lpv import check_deadlock_freedom, graph_to_petri

    config = _config(args)
    graph = build_graph(config)
    report = check_deadlock_freedom(graph_to_petri(graph), confirm=False)
    print(report.describe())
    return 0 if report.deadlock_free else 1


def cmd_wave(args) -> int:
    from repro.facerec.swmodels import root_function
    from repro.rtl.synth import synthesize
    from repro.rtl.vcd import dump_fsmd_run

    netlist = synthesize(root_function(16), width=16)
    stimulus = [{"start": 1, "arg_n": args.value}]
    stimulus += [{"start": 0, "arg_n": 0}] * (args.cycles - 1)
    with open(args.out, "w") as stream:
        cycles = dump_fsmd_run(netlist, stimulus, stream)
    print(f"wrote {cycles} cycles of {netlist.name} to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbad reconfigurable-SoC design & verification flow",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_topology = sub.add_parser("topology", help="print the system model")
    _add_workload_args(p_topology)
    p_topology.set_defaults(func=cmd_topology)

    p_flow = sub.add_parser("flow", help="run the full four-level flow")
    _add_workload_args(p_flow)
    p_flow.add_argument("--pcc", action="store_true",
                        help="include the PCC property-coverage pass (slow)")
    p_flow.set_defaults(func=cmd_flow)

    p_explore = sub.add_parser("explore", help="level-2 architecture sweep")
    _add_workload_args(p_explore)
    p_explore.add_argument("--max-hw", type=int, default=6,
                           help="largest heaviest-k-to-HW candidate")
    p_explore.set_defaults(func=cmd_explore)

    p_verify = sub.add_parser("verify",
                              help="LPV deadlock proof of the system model")
    _add_workload_args(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_wave = sub.add_parser("wave", help="dump a VCD trace of the ROOT FSMD")
    p_wave.add_argument("--value", type=int, default=30_000,
                        help="input to take the square root of")
    p_wave.add_argument("--cycles", type=int, default=64,
                        help="cycles to trace")
    p_wave.add_argument("--out", default="root.vcd", help="output VCD path")
    p_wave.set_defaults(func=cmd_wave)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
